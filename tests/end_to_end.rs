//! Cross-crate integration tests: CSV → clean → discretize → index →
//! search → report, exercised through the umbrella crate's public API only.

use hdoutlier::baselines::{lof_scores, ramaswamy_top_n, Metric};
use hdoutlier::core::crossover::CrossoverKind;
use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::clean::{drop_constant_columns, encode_categoricals, impute_mean};
use hdoutlier::data::csv;
use hdoutlier::data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};
use hdoutlier::prelude::*;

fn planted_fixture() -> hdoutlier::data::generators::PlantedOutliers {
    planted_outliers(&PlantedConfig {
        n_rows: 1500,
        n_dims: 12,
        n_outliers: 6,
        strong_groups: Some(3),
        seed: 77,
        ..PlantedConfig::default()
    })
}

#[test]
fn csv_round_trip_preserves_detection_results() {
    let planted = planted_fixture();
    let detector = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(8)
        .search(SearchMethod::BruteForce)
        .build();
    let direct = detector.detect(&planted.dataset).unwrap();

    // Serialize to CSV, read back, detect again: identical outliers.
    let text = csv::write_string(&planted.dataset);
    let restored = csv::read_str(&text, &csv::CsvOptions::default()).unwrap();
    let via_csv = detector.detect(&restored).unwrap();
    assert_eq!(direct.outlier_rows, via_csv.outlier_rows);
}

#[test]
fn brute_and_evolutionary_agree_on_top_projections() {
    let planted = planted_fixture();
    let brute = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .detect(&planted.dataset)
        .unwrap();
    let evolutionary = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(5)
        .seed(13)
        .search(SearchMethod::Evolutionary)
        .build()
        .detect(&planted.dataset)
        .unwrap();
    // The GA is heuristic, but its best projection must reach the exact
    // optimum's sparsity on this small instance.
    let b = brute.projections[0].sparsity;
    let e = evolutionary.projections[0].sparsity;
    assert!((b - e).abs() < 1e-9, "brute {b} vs evolutionary {e}");
}

#[test]
fn subspace_beats_distance_baselines_on_planted_subspace_outliers() {
    let planted = planted_fixture();
    let report = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(10)
        .search(SearchMethod::BruteForce)
        .build()
        .detect(&planted.dataset)
        .unwrap();
    let subspace_recall = planted.recall(&report.outlier_rows).unwrap();

    let budget = report.outlier_rows.len().max(1);
    let knn: Vec<usize> = ramaswamy_top_n(&planted.dataset, 1, budget, Metric::Euclidean)
        .unwrap()
        .into_iter()
        .map(|o| o.row)
        .collect();
    let knn_recall = planted.recall(&knn).unwrap();

    let lof = lof_scores(&planted.dataset, 10, Metric::Euclidean).unwrap();
    let mut lof_ranked: Vec<usize> = (0..lof.len()).collect();
    lof_ranked.sort_by(|&a, &b| lof[b].partial_cmp(&lof[a]).unwrap());
    lof_ranked.truncate(budget);
    let lof_recall = planted.recall(&lof_ranked).unwrap();

    assert!(
        subspace_recall > knn_recall,
        "subspace {subspace_recall} vs kNN {knn_recall}"
    );
    assert!(
        subspace_recall >= lof_recall,
        "subspace {subspace_recall} vs LOF {lof_recall}"
    );
    assert!(subspace_recall >= 0.5, "subspace recall {subspace_recall}");
}

#[test]
fn full_cleaning_pipeline_on_categorical_csv() {
    // Raw CSV with a categorical column, missing markers and a constant
    // column — the paper's preprocessing path.
    let mut text = String::from("color,size,weight,shape\n");
    for i in 0..200 {
        let color = ["red", "green", "blue"][i % 3];
        let size = (i % 17) as f64 + 0.5;
        let weight = if i % 31 == 0 {
            "?".to_string()
        } else {
            format!("{:.1}", 10.0 + (i % 7) as f64)
        };
        text.push_str(&format!("{color},{size},{weight},round\n"));
    }
    let mut records = csv::parse_records(&text, ',').unwrap();
    let header = records.remove(0);
    let (mut ds, books) = encode_categoricals(&records, &["?"]).unwrap();
    ds.set_names(header).unwrap();
    assert_eq!(books[0].len(), 3); // color has 3 codes
    assert!(ds.missing_count() > 0);

    let cleaned = drop_constant_columns(&ds);
    assert_eq!(cleaned.n_dims(), 3); // shape was constant

    // Detector runs on the incomplete data directly.
    let report = OutlierDetector::builder()
        .phi(3)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .detect(&cleaned)
        .unwrap();
    assert!(report.projections.len() <= 5);
    for s in &report.projections {
        assert!(s.count > 0);
    }

    // Baselines need imputation first.
    let complete = impute_mean(&cleaned);
    assert_eq!(complete.missing_count(), 0);
    assert!(ramaswamy_top_n(&complete, 1, 5, Metric::Euclidean).is_ok());
}

#[test]
fn advisor_and_detector_compose() {
    let planted = planted_fixture();
    let n = planted.dataset.n_rows() as u64;
    // Manual advisor round-trip equals the auto-configured detector.
    let advice = hdoutlier::core::params::advise(n, -3.0);
    assert_eq!(Some(advice.k), recommended_k(n, advice.phi, -3.0));
    let auto = OutlierDetector::builder()
        .m(5)
        .seed(3)
        .max_generations(40)
        .build()
        .detect(&planted.dataset)
        .unwrap();
    let manual = OutlierDetector::builder()
        .phi(advice.phi)
        .k(advice.k as usize)
        .m(5)
        .seed(3)
        .max_generations(40)
        .build()
        .detect(&planted.dataset)
        .unwrap();
    assert_eq!(auto.outlier_rows, manual.outlier_rows);
}

#[test]
fn two_point_crossover_detector_is_functional_but_weaker() {
    let planted = planted_fixture();
    let run = |kind: CrossoverKind| {
        OutlierDetector::builder()
            .phi(5)
            .k(2)
            .m(10)
            .seed(23)
            .crossover(kind)
            .max_generations(60)
            .build()
            .detect(&planted.dataset)
            .unwrap()
    };
    let optimized = run(CrossoverKind::Optimized);
    let two_point = run(CrossoverKind::TwoPoint);
    // Both produce valid reports; optimized is at least as sparse at the top.
    assert!(!optimized.projections.is_empty());
    assert!(!two_point.projections.is_empty());
    assert!(optimized.projections[0].sparsity <= two_point.projections[0].sparsity + 1e-9);
}

#[test]
fn significance_and_sparsity_are_consistent_across_crates() {
    // prelude re-exports match the stats crate directly.
    let s = sparsity_coefficient(3, 1000, 5, 2);
    assert_eq!(s, hdoutlier::stats::sparsity_coefficient(3, 1000, 5, 2));
    assert_eq!(significance_of(s), hdoutlier::stats::significance_of(s));
    let params = SparsityParams::new(1000, 5, 2).unwrap();
    assert_eq!(params.sparsity(3), s);
    assert_eq!(
        empty_cube_coefficient(1000, 5, 2),
        params.empty_cube_sparsity()
    );
}

#[test]
fn equi_width_detector_is_selectable_and_differs() {
    // Skewed data: the two grid strategies disagree on outliers.
    let mut rows: Vec<Vec<f64>> = (0..500)
        .map(|i| {
            let base = (i as f64 / 500.0).powi(4) * 100.0;
            vec![base, base * 0.7 + (i % 13) as f64]
        })
        .collect();
    rows.push(vec![50.0, 0.1]); // contrarian
    let ds = hdoutlier::data::Dataset::from_rows(rows).unwrap();
    let run = |strategy| {
        OutlierDetector::builder()
            .phi(4)
            .k(2)
            .m(5)
            .strategy(strategy)
            .search(SearchMethod::BruteForce)
            .build()
            .detect(&ds)
            .unwrap()
    };
    let depth = run(DiscretizeStrategy::EquiDepth);
    let width = run(DiscretizeStrategy::EquiWidth);
    assert!(!depth.projections.is_empty());
    assert!(!width.projections.is_empty());
    // They may overlap but are not required to agree; the grids differ.
    let d1 = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
    let d2 = Discretized::new(&ds, 4, DiscretizeStrategy::EquiWidth).unwrap();
    let differing = (0..ds.n_rows()).filter(|&r| d1.row(r) != d2.row(r)).count();
    assert!(differing > 100, "grids should differ on skewed data");
}
