//! Failure-injection and degenerate-input tests across the public API:
//! the library must degrade gracefully, not panic, on pathological data.

use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::core::params::advise;
use hdoutlier::data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier::data::Dataset;

fn detector(phi: u32, k: usize, m: usize) -> OutlierDetector {
    OutlierDetector::builder()
        .phi(phi)
        .k(k)
        .m(m)
        .search(SearchMethod::BruteForce)
        .build()
}

#[test]
fn constant_dataset_detects_nothing_interesting() {
    // Every value identical: each 1-d range is an arbitrary rank split,
    // every cube holds ~N·f^k records, nothing is sparse.
    let ds = Dataset::from_rows(vec![vec![7.0, 7.0, 7.0]; 200]).unwrap();
    let report = detector(4, 2, 10).detect(&ds).unwrap();
    for s in &report.projections {
        assert!(
            s.sparsity > -3.0,
            "constant data produced a 'significant' cube: S = {}",
            s.sparsity
        );
    }
}

#[test]
fn single_row_dataset_is_handled() {
    let ds = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
    // phi = 2 on one row: the row occupies one range per dim; cubes hold
    // 0 or 1 records out of an expected 0.25. Nothing should panic.
    let report = detector(2, 2, 5).detect(&ds).unwrap();
    assert!(report.projections.len() <= 5);
    for s in &report.projections {
        assert_eq!(s.count, 1);
    }
}

#[test]
fn two_rows_evolutionary_survives() {
    let ds = Dataset::from_rows(vec![vec![0.0, 1.0, 2.0], vec![3.0, 4.0, 5.0]]).unwrap();
    let report = OutlierDetector::builder()
        .phi(2)
        .k(2)
        .m(3)
        .population(4)
        .max_generations(5)
        .search(SearchMethod::Evolutionary)
        .build()
        .detect(&ds)
        .unwrap();
    assert!(report.projections.len() <= 3);
}

#[test]
fn all_missing_column_never_appears_in_projections() {
    let mut rows: Vec<Vec<f64>> = (0..150)
        .map(|i| vec![i as f64, f64::NAN, (i * 3 % 150) as f64])
        .collect();
    rows[0][0] = 1e6; // one marginal oddball for flavor
    let ds = Dataset::from_rows(rows).unwrap();
    let report = detector(3, 2, 10).detect(&ds).unwrap();
    for s in &report.projections {
        assert_eq!(
            s.projection.gene(1),
            None,
            "projection {} constrains the all-missing column",
            s.projection
        );
    }
}

#[test]
fn mostly_missing_dataset_still_detects() {
    // 70 % missing entries: postings are thin but consistent.
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            (0..4)
                .map(|j| {
                    if (i * 7 + j * 13) % 10 < 7 {
                        f64::NAN
                    } else {
                        ((i * (j + 2)) % 97) as f64
                    }
                })
                .collect()
        })
        .collect();
    let ds = Dataset::from_rows(rows).unwrap();
    let report = detector(3, 2, 5).detect(&ds).unwrap();
    // Whatever is reported must genuinely cover its rows.
    let disc = Discretized::new(&ds, 3, DiscretizeStrategy::EquiDepth).unwrap();
    for (s, rows) in report.projections.iter().zip(&report.rows_by_projection) {
        assert_eq!(s.count, rows.len());
        for &r in rows {
            assert!(s.projection.covers(disc.row(r)));
        }
    }
}

#[test]
fn duplicated_dataset_rows_share_cubes() {
    // 50 copies of 4 distinct rows: every cube count is a multiple of ~50.
    let base = [
        vec![1.0, 10.0],
        vec![2.0, 20.0],
        vec![3.0, 30.0],
        vec![4.0, 40.0],
    ];
    let rows: Vec<Vec<f64>> = (0..200).map(|i| base[i % 4].clone()).collect();
    let ds = Dataset::from_rows(rows).unwrap();
    let report = detector(2, 2, 10).detect(&ds).unwrap();
    for s in &report.projections {
        // Equi-depth rank-splitting can cut a tie block in half, so counts
        // are multiples of 25 here; never tiny fragments.
        assert!(s.count >= 25, "fragmented tie block: count {}", s.count);
    }
}

#[test]
fn extreme_magnitudes_do_not_break_the_grid() {
    let rows: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i as f64) * 1e300 / 100.0, (i as f64) * 1e-300])
        .collect();
    let ds = Dataset::from_rows(rows).unwrap();
    let report = detector(4, 2, 5).detect(&ds).unwrap();
    for s in &report.projections {
        assert!(s.sparsity.is_finite());
    }
}

#[test]
fn advisor_is_total_over_weird_sizes() {
    for n in [1u64, 2, 3, 10, 24, 25, 26, 1_000_000_000] {
        let a = advise(n, -3.0);
        assert!(a.phi >= 3 && a.phi <= 10);
        assert!(a.k >= 1);
    }
}

#[test]
fn m_zero_report_is_empty_not_a_panic() {
    let ds = Dataset::from_rows(vec![vec![1.0, 2.0]; 100]).unwrap();
    let report = detector(2, 1, 0).detect(&ds).unwrap();
    assert!(report.projections.is_empty());
    assert!(report.outlier_rows.is_empty());
    assert!(report.ranked_outliers().is_empty());
    assert_eq!(report.mean_sparsity(), None);
}

#[test]
fn nan_free_guarantee_on_reports() {
    let ds = hdoutlier::data::generators::uniform(500, 6, 77);
    let report = detector(5, 2, 20).detect(&ds).unwrap();
    for s in &report.projections {
        assert!(s.sparsity.is_finite());
        assert!(s.significance().is_finite());
    }
    for (_, score) in report.ranked_outliers() {
        assert!(score.is_finite());
    }
}
