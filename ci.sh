#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --release --offline --workspace
cargo test -q --offline --workspace
