#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --release --offline --workspace
cargo build --offline --examples
cargo test -q --offline --workspace

# Observability: unit tests for the in-tree tracing/metrics crate, then an
# end-to-end smoke run of `detect --log-json --metrics-out` validated with
# the in-tree JSON parser (crates/cli/tests/smoke.rs).
cargo test -q --offline -p hdoutlier-obs
cargo test -q --offline -p hdoutlier-cli --test smoke

# Live telemetry: launch `stream --serve-metrics` on an ephemeral port,
# scrape /metrics over raw TCP (std-only client), assert the records
# counter and histogram buckets; validate `--trace-out` parses as Chrome
# trace-event JSON (crates/cli/tests/live.rs).
cargo test -q --offline -p hdoutlier-cli --test live

# Determinism: every pooled path (detect brute + seeded evolutionary,
# explain, baseline) must emit byte-identical --json reports at --threads
# 1/2/8 (crates/cli/tests/determinism.rs); the stream --batch equivalence
# lives in the stream command's unit tests, covered by the workspace run.
cargo test -q --offline -p hdoutlier-cli --test determinism

# Fault tolerance: checkpoint atomicity under simulated kills
# (crates/stream/tests/faults.rs) and the scripted-I/O harness driving the
# stream error policies, circuit breaker, and kill/resume equivalence
# (crates/cli/tests/fault_injection.rs).
cargo test -q --offline -p hdoutlier-stream --test faults
cargo test -q --offline -p hdoutlier-cli --test fault_injection

# The serving stack, bottom-up: HTTP wire edge cases against the std-only
# server (fragmented reads, 413/431 caps, keep-alive, the connection
# budget, drain races, X-Request-Id assignment — crates/net/tests/http.rs);
# session registry, byte-identity with a direct scorer, isolation, trip
# ladder, and checkpoint/resume at the ServeApp level
# (crates/serve/tests/serve.rs); then the compiled binary over real TCP:
# concurrent sessions byte-identical to `stream`, kill -9 → restart →
# resume continuation equivalence, graceful drain on SIGTERM and POST
# /shutdown, and the observability smoke — serve under --trace-out + SLO
# flags, request-id echo/propagation into the NDJSON access log and Chrome
# trace args, /status healthy, generated ids unique under concurrency
# (crates/cli/tests/serve_e2e.rs).
cargo test -q --offline -p hdoutlier-net --test http
cargo test -q --offline -p hdoutlier-serve --test serve
cargo test -q --offline -p hdoutlier-cli --test serve_e2e

# Overload & crash chaos harness: deterministic scripted fault clients
# against the HTTP server — stalled heads past the wall-clock deadline,
# torn mid-body writes, vanishing clients, burst floods past the
# connection budget, and a mixed storm that must never pin a worker
# (crates/net/tests/chaos.rs) — then the serve-level drills: duplicate
# X-Request-Id retries replay byte-identical without re-scoring, SLO- and
# concurrency-cap shedding with 503 + Retry-After and recovery, and
# checkpoint corruption / kill-during-save recovery via the .prev
# generation with .corrupt quarantine (crates/serve/tests/chaos.rs).
cargo test -q --offline -p hdoutlier-net --test chaos
cargo test -q --offline -p hdoutlier-serve --test chaos

# Continuous profiling: the span-stack sampling profiler end to end — the
# compiled binary under `detect --profile-out --profile-hz` must write
# non-empty folded stacks naming a hdoutlier.core.* frame, plus the
# allocation-weighted twin fed by the counting allocator
# (crates/cli/tests/profile_e2e.rs).
cargo test -q --offline -p hdoutlier-cli --test profile_e2e

# Scenario packs: seeded end-to-end runs of the real pipelines (detect
# brute + evolutionary, drill-down/explain, baselines + CFOF/DOD referees,
# stream with checkpoint/kill/resume, serve over loopback TCP) against
# planted ground truth, byte-compared to the golden reports in
# tests/goldens/ after normalization (crates/cli/tests/scenario.rs runs the
# same gate in-process). On a mismatch the gate prints a unified diff; if
# the change is intentional, regenerate deliberately with
#     ./target/release/hdoutlier scenario update-goldens
# (it refuses while a pack's ground-truth invariants fail, so a wrong
# golden can never be enshrined) and commit the tests/goldens/ diff.
./target/release/hdoutlier scenario check

# Perf gate: the streaming hot path must stay within noise of the recorded
# baseline (BENCH_stream.json). Tolerance is generous (50%) because absolute
# wall-clock varies across machines; it exists to catch accidental
# per-record I/O or timing syscalls creeping into the default path.
cargo run -q --offline --release -p hdoutlier-bench --bin stream_throughput -- \
    --assert-against BENCH_stream.json --tolerance 0.5

# Serving perf gate: the whole serve stack — HTTP framing, request-scoped
# context, labeled metrics, NDJSON scoring — must stay within tolerance of
# the recorded baseline (BENCH_serve.json), so the labeled-metrics hot path
# is provably not a throughput regression.
cargo run -q --offline --release -p hdoutlier-bench --bin serve_bench -- \
    --assert-against BENCH_serve.json --tolerance 0.5
