#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Observability: unit tests for the in-tree tracing/metrics crate, then an
# end-to-end smoke run of `detect --log-json --metrics-out` validated with
# the in-tree JSON parser (crates/cli/tests/smoke.rs).
cargo test -q --offline -p hdoutlier-obs
cargo test -q --offline -p hdoutlier-cli --test smoke
