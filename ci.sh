#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Observability: unit tests for the in-tree tracing/metrics crate, then an
# end-to-end smoke run of `detect --log-json --metrics-out` validated with
# the in-tree JSON parser (crates/cli/tests/smoke.rs).
cargo test -q --offline -p hdoutlier-obs
cargo test -q --offline -p hdoutlier-cli --test smoke

# Live telemetry: launch `stream --serve-metrics` on an ephemeral port,
# scrape /metrics over raw TCP (std-only client), assert the records
# counter and histogram buckets; validate `--trace-out` parses as Chrome
# trace-event JSON (crates/cli/tests/live.rs).
cargo test -q --offline -p hdoutlier-cli --test live
