//! Talking to `hdoutlier serve` from a client: create a session, stream
//! NDJSON records at it, read verdicts back, checkpoint, and drain.
//!
//! ```text
//! cargo run --example serve_client
//! ```
//!
//! The example is self-contained: it fits a small model, boots the serving
//! stack in-process on an ephemeral loopback port, and then speaks to it
//! the way any external client would — plain HTTP/1.1 over TCP, no client
//! library. Point the same code at a real `hdoutlier serve` process and it
//! works unchanged.

use hdoutlier::core::{OutlierDetector, SearchMethod};
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_json::Json;
use hdoutlier_serve::{ServeConfig, ServeHandle};
use std::io::{Read, Write};
use std::net::TcpStream;

fn main() {
    // --- Server side (normally: `hdoutlier serve --addr 127.0.0.1:8787`).
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 500,
        n_dims: 5,
        n_outliers: 3,
        strong_groups: Some(2),
        seed: 7,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&planted.dataset)
        .expect("fit");
    let handle = ServeHandle::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = handle.local_addr();
    println!("serving on http://{addr}");

    // --- Client side: create a session with the model inline.
    let model_json = hdoutlier::stream::model_io::to_json(&model)
        .expect("render model")
        .render();
    let (status, body) = http(
        &addr.to_string(),
        "POST",
        "/sessions",
        &format!("{{\"id\": \"demo\", \"batch\": 16, \"model\": {model_json}}}"),
    );
    assert_eq!(status, 201, "{body}");
    println!("created session: {body}");

    // Score fifty records: one JSON array per line, null = missing value.
    let mut records = String::new();
    for i in 0..50 {
        let row = Json::Array(
            planted
                .dataset
                .row(i)
                .iter()
                .map(|&v| Json::from(v))
                .collect(),
        );
        records.push_str(&row.render());
        records.push('\n');
    }
    let (status, verdicts) = http(&addr.to_string(), "POST", "/sessions/demo/score", &records);
    assert_eq!(status, 200, "{verdicts}");
    let outliers = verdicts
        .lines()
        .filter(|l| l.contains("\"outlier\":true"))
        .count();
    println!(
        "scored {} records, {outliers} flagged; first verdict: {}",
        verdicts.lines().count(),
        verdicts.lines().next().unwrap_or("")
    );

    // The status document shows the session's running totals.
    let (status, doc) = http(&addr.to_string(), "GET", "/sessions/demo", "");
    assert_eq!(status, 200);
    println!("status: {doc}");

    // --- Drain: in production, SIGTERM or `POST /shutdown` does this.
    let report = handle.drain();
    println!(
        "drained: {} session(s), {} checkpointed",
        report.sessions, report.checkpointed
    );
}

/// One close-delimited HTTP/1.1 request over a fresh connection.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("framed response");
    let status = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, payload.to_string())
}
