//! Talking to `hdoutlier serve` from a client: create a session, stream
//! NDJSON records at it with idempotent retries, read verdicts back,
//! checkpoint, and drain.
//!
//! ```text
//! cargo run --example serve_client
//! ```
//!
//! The example is self-contained: it fits a small model, boots the serving
//! stack in-process on an ephemeral loopback port, and then speaks to it
//! the way any external client would — plain HTTP/1.1 over TCP, no client
//! library. Point the same code at a real `hdoutlier serve` process and it
//! works unchanged.
//!
//! The score POSTs demonstrate the full client discipline for a server
//! that sheds load: each logical request gets one `X-Request-Id`, and on a
//! `503` the client backs off ([`Backoff`], decorrelated jitter floored by
//! the server's `Retry-After`) and resends under the *same* id — the
//! server's per-session replay cache guarantees a retry that raced a
//! delivered response replays the original verdicts instead of scoring
//! the records twice.

use hdoutlier::core::{OutlierDetector, SearchMethod};
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_json::Json;
use hdoutlier_net::retry::{parse_retry_after, Backoff, RetryPolicy};
use hdoutlier_serve::{ServeConfig, ServeHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn main() {
    // --- Server side (normally: `hdoutlier serve --addr 127.0.0.1:8787`).
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 500,
        n_dims: 5,
        n_outliers: 3,
        strong_groups: Some(2),
        seed: 7,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&planted.dataset)
        .expect("fit");
    let handle = ServeHandle::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = handle.local_addr().to_string();
    println!("serving on http://{addr}");

    // --- Client side: create a session with the model inline.
    let model_json = hdoutlier::stream::model_io::to_json(&model)
        .expect("render model")
        .render();
    let (status, _, body) = http(
        &addr,
        "POST",
        "/sessions",
        &format!("{{\"id\": \"demo\", \"batch\": 16, \"model\": {model_json}}}"),
        None,
    );
    assert_eq!(status, 201, "{body}");
    println!("created session: {body}");

    // Score fifty records: one JSON array per line, null = missing value.
    let mut records = String::new();
    for i in 0..50 {
        let row = Json::Array(
            planted
                .dataset
                .row(i)
                .iter()
                .map(|&v| Json::from(v))
                .collect(),
        );
        records.push_str(&row.render());
        records.push('\n');
    }
    let (status, verdicts) =
        score_with_retry(&addr, "/sessions/demo/score", &records, "demo-req-1");
    assert_eq!(status, 200, "{verdicts}");
    let outliers = verdicts
        .lines()
        .filter(|l| l.contains("\"outlier\":true"))
        .count();
    println!(
        "scored {} records, {outliers} flagged; first verdict: {}",
        verdicts.lines().count(),
        verdicts.lines().next().unwrap_or("")
    );

    // The status document shows the session's running totals.
    let (status, _, doc) = http(&addr, "GET", "/sessions/demo", "", None);
    assert_eq!(status, 200);
    println!("status: {doc}");

    // --- Drain: in production, SIGTERM or `POST /shutdown` does this.
    let report = handle.drain();
    println!(
        "drained: {} session(s), {} checkpointed",
        report.sessions, report.checkpointed
    );
}

/// A score POST with the full retry discipline: one `X-Request-Id` per
/// logical request, reused verbatim across retries, with decorrelated
/// backoff floored by the server's `Retry-After` on every `503`.
fn score_with_retry(addr: &str, path: &str, records: &str, request_id: &str) -> (u16, String) {
    let mut backoff = Backoff::new(RetryPolicy::default(), fingerprint(request_id));
    loop {
        let (status, retry_after, body) = http(addr, "POST", path, records, Some(request_id));
        if status != 503 {
            return (status, body);
        }
        match backoff.next_delay(retry_after) {
            Some(delay) => {
                println!("server shedding ({body:?}); retrying {request_id} in {delay:?}");
                std::thread::sleep(delay);
            }
            None => return (status, body),
        }
    }
}

/// A stable per-request seed so concurrent clients decorrelate.
fn fingerprint(id: &str) -> u64 {
    id.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// One close-delimited HTTP/1.1 request over a fresh connection. Returns
/// the status, the parsed `Retry-After` hint (if any), and the body.
fn http(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    request_id: Option<&str>,
) -> (u16, Option<Duration>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let id_header = request_id
        .map(|id| format!("X-Request-Id: {id}\r\n"))
        .unwrap_or_default();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n{id_header}\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("framed response");
    let status = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let retry_after = head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| parse_retry_after(value))
            .flatten()
    });
    (status, retry_after, payload.to_string())
}
