//! Network-intrusion flavor of the paper's motivation: connection summaries
//! where an attack "may provide guidance in discovering the causalities of
//! the abnormal behavior" — the *projection* is the diagnosis.
//!
//! This example is a thin wrapper over the **network-intrusion scenario
//! pack** (`hdoutlier scenario run network-intrusion`): planted intrusions
//! in wide telemetry, recovered by brute-force subspace search, then
//! drilled into per record (which 2-dim views are abnormal, and how
//! significant each is) with an intensional explanation an analyst can
//! read directly. A DOD distance-profile referee shows the full-space
//! alternative doing no better. The pack is pinned by a golden report in
//! CI, so this output is regression-guaranteed.
//!
//! ```text
//! cargo run --release --example network_intrusion
//! ```

use hdoutlier::scenario::{find, RunConfig};

fn main() {
    let pack = find("network-intrusion").expect("network-intrusion pack is registered");
    println!("scenario: {} (seed 0x{:x})", pack.name, pack.seed);
    println!("  {}\n", pack.summary);

    let outcome = pack.run(&RunConfig::default()).expect("pipelines run");

    // The interpretability payoff: the report carries the drilled-down
    // views of one detected intrusion and its intensional description.
    let pipelines = outcome.report.get("pipelines").expect("pipelines section");
    if let Some(drill) = pipelines.get("drill_down") {
        println!("drill-down of one detected intrusion:");
        println!("{}", drill.pretty());
    }

    println!("\nground-truth invariants:");
    for inv in &outcome.invariants {
        println!(
            "  [{}] {}: {}",
            if inv.holds { "PASS" } else { "FAIL" },
            inv.name,
            inv.detail
        );
    }

    assert!(
        outcome.failed_invariants().is_empty(),
        "the network-intrusion pack's ground truth must hold"
    );
    println!("\nall invariants hold — the projection is the diagnosis.");
}
