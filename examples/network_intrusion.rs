//! Network-intrusion flavor of the paper's motivation: connection summaries
//! where an attack "may provide guidance in discovering the causalities of
//! the abnormal behavior" — the *projection* is the diagnosis.
//!
//! Planted behaviors:
//! - **data exfiltration**: huge outbound/inbound byte ratio at a *normal*
//!   connection duration (bulk correlates bytes with duration);
//! - **port scan**: many distinct destination ports with *tiny* total bytes.
//!
//! The point of this example is interpretability: the report names the
//! attribute ranges, so an analyst reads "dst_ports high AND total_bytes
//! low" directly off the output — the intensional knowledge distance-based
//! methods cannot give.
//!
//! ```text
//! cargo run --release --example network_intrusion
//! ```

use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::dataset::Dataset;
use hdoutlier::data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};

const NAMES: [&str; 8] = [
    "duration_s",
    "bytes_out",
    "bytes_in",
    "dst_ports",
    "total_bytes",
    "pkt_rate",
    "syn_ratio",
    "dns_queries",
];

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 4000usize;

    // Bulk: (duration, bytes_out) correlated; (dst_ports, total_bytes)
    // correlated; rest noise.
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let session = standard_normal(&mut rng);
            let fanout = standard_normal(&mut rng);
            let nz = |rng: &mut StdRng| 0.31 * standard_normal(rng);
            vec![
                0.95 * session + nz(&mut rng), // duration
                0.95 * session + nz(&mut rng), // bytes_out
                standard_normal(&mut rng),     // bytes_in
                0.95 * fanout + nz(&mut rng),  // dst_ports
                0.95 * fanout + nz(&mut rng),  // total_bytes
                standard_normal(&mut rng),     // pkt_rate
                standard_normal(&mut rng),     // syn_ratio
                standard_normal(&mut rng),     // dns_queries
            ]
        })
        .collect();

    let z = 1.28;
    let mut attacks = Vec::new();
    for i in 0..4 {
        let r = 321 + i * 731;
        rows[r][0] = -z; // short session...
        rows[r][1] = z; // ...with heavy outbound traffic: exfiltration
        attacks.push((r, "exfiltration"));
    }
    for i in 0..4 {
        let r = 87 + i * 911;
        rows[r][3] = z; // many destination ports...
        rows[r][4] = -z; // ...almost no payload: port scan
        attacks.push((r, "port scan"));
    }

    let mut dataset = Dataset::from_rows(rows).unwrap();
    dataset.set_names(NAMES.to_vec()).unwrap();

    // Brute force is exact and cheap at d = 8.
    let report = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(12)
        .search(SearchMethod::BruteForce)
        .build()
        .detect(&dataset)
        .unwrap();

    let disc = Discretized::new(&dataset, 5, DiscretizeStrategy::EquiDepth).unwrap();
    println!("abnormally sparse projections (the diagnosis an analyst reads):");
    for i in 0..report.projections.len().min(6) {
        println!("  {}", report.explain(i, &disc));
    }
    println!();
    for (row, kind) in &attacks {
        let caught = report.outlier_rows.binary_search(row).is_ok();
        println!(
            "flow {row:>4} ({kind}): {}",
            if caught { "FLAGGED" } else { "missed" }
        );
    }
    let caught = attacks
        .iter()
        .filter(|(r, _)| report.outlier_rows.binary_search(r).is_ok())
        .count();
    println!("\ncaught {caught}/{} planted attacks", attacks.len());
    assert!(caught >= attacks.len() / 2);
}
