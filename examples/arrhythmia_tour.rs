//! A guided tour of the paper's flagship experiment (§3.1, arrhythmia)
//! through the public API: build the simulacrum, hunt *all* sparse
//! projections with the tabu multi-restart search, rank the covered
//! patients, and read the diagnoses.
//!
//! ```text
//! cargo run --release --example arrhythmia_tour
//! ```

use hdoutlier::core::crossover::CrossoverKind;
use hdoutlier::core::evolutionary::{multi_restart_search, EvolutionaryConfig, MultiRestartConfig};
use hdoutlier::core::fitness::SparsityFitness;
use hdoutlier::core::report::{OutlierReport, SearchStats};
use hdoutlier::data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier::data::generators::uci_like::{
    arrhythmia, ArrhythmiaConfig, ARRHYTHMIA_RARE_CLASSES,
};
use hdoutlier::index::{BitmapCounter, CachedCounter};

fn main() {
    // 452 patients x 279 ECG measurements, 13 diagnosis classes, one
    // deliberately corrupted record (height 780 cm, weight 6 kg).
    let data = arrhythmia(&ArrhythmiaConfig::default());
    let labels = data.dataset.labels().expect("labeled").to_vec();
    println!(
        "arrhythmia simulacrum: {} patients x {} measurements, {} rare-class",
        data.dataset.n_rows(),
        data.dataset.n_dims(),
        data.rare_rows.len()
    );

    // Grid + index + fitness at the paper's regime (phi = 5, k = 2).
    let disc =
        Discretized::new(&data.dataset, 5, DiscretizeStrategy::EquiDepth).expect("non-empty data");
    let counter = CachedCounter::new(BitmapCounter::new(&disc));
    let fitness = SparsityFitness::new(&counter, 2);

    // Hunt all projections with S <= -3: restarted GA, banning each
    // restart's finds so the next one explores elsewhere.
    let multi = multi_restart_search(
        &fitness,
        &MultiRestartConfig {
            base: EvolutionaryConfig {
                m: 400,
                population: 150,
                crossover: CrossoverKind::Optimized,
                p1: 0.3,
                p2: 0.3,
                max_generations: 150,
                seed: 7,
                ..EvolutionaryConfig::default()
            },
            restarts: 24,
            ban_found: true,
            threshold: Some(-3.0),
        },
    );
    println!(
        "\nfound {} sparse projections (S <= -3) in {} fitness evaluations",
        multi.found.len(),
        multi.evaluations
    );

    // Post-process into a report and rank the covered patients by their
    // most abnormal covering projection.
    let report = OutlierReport::from_scored(multi.found, &fitness, SearchStats::default());
    let ranked = report.ranked_outliers();
    println!("\ntop flagged patients:");
    for &(row, score) in ranked.iter().take(10) {
        let class = labels[row];
        let rare = ARRHYTHMIA_RARE_CLASSES.contains(&class);
        let note = if row == data.error_row {
            " <- the 780 cm / 6 kg recording error"
        } else if rare {
            " (rare diagnosis class)"
        } else {
            ""
        };
        println!("  patient {row:>3}: S = {score:.2}, class {class:02}{note}");
    }

    // The paper's headline: rare classes are heavily over-represented.
    let rare_hits = ranked.iter().filter(|&&(row, _)| data.is_rare(row)).count();
    println!(
        "\n{} of {} flagged patients are rare-class ({:.0}%, base rate 14.6%)",
        rare_hits,
        ranked.len(),
        100.0 * rare_hits as f64 / ranked.len().max(1) as f64
    );

    // Interpretability: print the three most abnormal projections with
    // their measurement ranges.
    println!("\nmost abnormal patterns:");
    for i in 0..report.projections.len().min(3) {
        println!("  {}", report.explain(i, &disc));
    }
    assert!(rare_hits as f64 / ranked.len().max(1) as f64 > 0.3);
}
