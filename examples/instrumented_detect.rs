//! Instrumented detection: install an observability sink, run the detector,
//! then read the metrics registry — the library-level equivalent of the
//! CLI's `--log-level`, `--log-json`, and `--metrics-out` flags.
//!
//! ```text
//! cargo run --release --example instrumented_detect
//! ```

use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};
use hdoutlier::obs;
use std::sync::Arc;

fn main() {
    // 1. Install a sink. Events from every instrumented crate (targets
    //    `hdoutlier.core`, `hdoutlier.evolve`, `hdoutlier.stream`) now
    //    render to stderr; swap in `obs::NdjsonSink::stderr()` for NDJSON,
    //    or `obs::CaptureSink` to collect lines in memory. Debug level also
    //    emits the evolutionary engine's per-generation telemetry.
    obs::install(Arc::new(obs::StderrSink), obs::Level::Debug);

    // 2. Turn on the timing gate so hot paths (GA stage timers, per-record
    //    stream latency) measure themselves into histograms.
    obs::set_timing(true);

    // 3. Run a detection exactly as usual — instrumentation is ambient.
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 1500,
        n_dims: 12,
        n_outliers: 5,
        strong_groups: Some(3),
        seed: 11,
        ..PlantedConfig::default()
    });
    let report = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(8)
        .seed(7)
        .max_generations(60)
        .search(SearchMethod::Evolutionary)
        .build()
        .detect(&planted.dataset)
        .expect("valid configuration");
    println!(
        "found {} outlier row(s) via {} evaluations",
        report.outlier_rows.len(),
        report.stats.work
    );

    // 4. Read the registry. Counters/gauges are plain numbers; histograms
    //    carry count/sum/min/max and fixed-bucket quantile estimates.
    println!("\nmetrics after the run:");
    for metric in obs::registry().snapshot() {
        match metric.value {
            obs::SnapshotValue::Counter(v) => println!("  {} = {v}", metric.name),
            obs::SnapshotValue::Gauge(v) => println!("  {} = {v}", metric.name),
            obs::SnapshotValue::Histogram(h) => println!(
                "  {} : n={} mean={:.1}us p50={:.0} p99={:.0} max={:.0}",
                metric.name,
                h.count,
                h.mean(),
                h.p50,
                h.p99,
                h.max
            ),
        }
    }

    // 5. Or export everything as NDJSON (what `--metrics-out` writes).
    let ndjson = obs::registry().snapshot_ndjson();
    println!("\nNDJSON snapshot: {} lines", ndjson.lines().count());

    obs::uninstall();
}
