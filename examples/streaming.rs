//! The full streaming loop: train a model on history, then serve a live
//! stream — scoring each record as it arrives, keeping a sliding window
//! queryable for ad-hoc investigation, maintaining online equi-depth
//! sketches, and re-fitting when the drift monitor says the grid went stale.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};
use hdoutlier::index::{Cube, CubeCounter};
use hdoutlier::stream::{OnlineScorer, StreamingDiscretizer, WindowCounter};

fn main() {
    // --- Offline: fit on historical data, as in `model_deployment`. ---
    let history = planted_outliers(&PlantedConfig {
        n_rows: 4000,
        n_dims: 8,
        n_outliers: 6,
        strong_groups: Some(2),
        seed: 2026,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(10)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&history.dataset)
        .expect("valid parameters");
    let n_dims = model.grid().n_dims();
    let phi = model.grid().phi();
    println!(
        "trained: {} projections, {n_dims} dims, phi={phi}",
        model.projections().len()
    );

    // --- Online: the three streaming pieces. ---
    let mut scorer = OnlineScorer::new(model).expect("phi >= 2");
    scorer.set_check_every(1000).expect("positive cadence");
    let mut window = WindowCounter::new(500, n_dims, phi).expect("valid window");
    let mut sketches = StreamingDiscretizer::new(n_dims, phi, 0.01).expect("valid sketch");

    // Fresh traffic from the same process (different seed), so the model's
    // sparse cubes stay rare; after t=2000 the first attribute shifts — the
    // drift monitor should notice.
    let live = planted_outliers(&PlantedConfig {
        n_rows: 3000,
        n_dims: 8,
        n_outliers: 5,
        strong_groups: Some(2),
        seed: 7,
        ..PlantedConfig::default()
    });
    let mut flagged = 0usize;
    for (t, fresh) in live.dataset.rows().enumerate() {
        let mut record = fresh.to_vec();
        if t >= 2000 {
            record[0] += 4.0;
        }

        sketches.observe(&record).expect("shape");
        let verdict = scorer.score_record(&record).expect("shape");
        window.push(&verdict.cells).expect("cells fit the grid");

        if verdict.outlier {
            flagged += 1;
            if flagged <= 3 {
                println!(
                    "t={t}: outlier, S = {:.2} ({} projection(s))",
                    verdict.score.expect("matched"),
                    verdict.matched.len()
                );
            }
        }
        if let Some(report) = &verdict.drift {
            println!(
                "t={t}: drift check — drifted dims {:?} (alpha {})",
                report.drifted_dims, report.alpha
            );
        }
    }
    println!("{flagged} of 3000 streamed records flagged");

    // The window answers the same cube queries the batch engines use, over
    // just the most recent records.
    let cube = Cube::new([(0, 0), (1, 0)]).expect("distinct dims");
    println!(
        "window: {} of the last {} records in cube {cube}",
        window.count(&cube),
        window.n_rows()
    );

    // The sketches can snapshot a fresh grid whenever a re-fit is wanted.
    let fresh = sketches.grid_spec().expect("observed data");
    println!(
        "fresh grid boundaries, dim 0: {:?}",
        fresh
            .boundaries(0)
            .iter()
            .map(|b| format!("{b:.2}"))
            .collect::<Vec<_>>()
    );
}
