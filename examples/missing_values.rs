//! §1.2's observation in action: "lower dimensional projections can be
//! mined even in data sets which have missing attribute values."
//!
//! We take a planted-outlier dataset, knock out 20 % of all entries, and
//! show that (a) the subspace detector runs on the incomplete data directly
//! and still finds the planted records, while (b) the distance baselines
//! refuse incomplete input and, after mean-imputation, do worse.
//!
//! ```text
//! cargo run --release --example missing_values
//! ```

use hdoutlier::baselines::{ramaswamy_top_n, BaselineError, Metric};
use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::clean::impute_mean;
use hdoutlier::data::dataset::Dataset;
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};

fn main() {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 3000,
        n_dims: 12,
        n_outliers: 8,
        seed: 5,
        ..PlantedConfig::default()
    });

    // Knock out 20 % of entries — but never a planted signature cell, since
    // a missing value genuinely erases information (a record with a missing
    // signature attribute cannot be detected by anyone).
    let mut rng = StdRng::seed_from_u64(17);
    let protected: std::collections::HashSet<(usize, usize)> = planted
        .outlier_rows
        .iter()
        .zip(&planted.signatures)
        .flat_map(|(&r, &(lo, hi))| [(r, lo), (r, hi)])
        .collect();
    let mut rows: Vec<Vec<f64>> = planted.dataset.rows().map(<[f64]>::to_vec).collect();
    for (r, row) in rows.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            if !protected.contains(&(r, c)) && rng.gen::<f64>() < 0.20 {
                *v = f64::NAN;
            }
        }
    }
    let incomplete = Dataset::from_rows(rows).unwrap();
    println!(
        "dataset: {} x {}, {} missing entries ({:.0}%)",
        incomplete.n_rows(),
        incomplete.n_dims(),
        incomplete.missing_count(),
        100.0 * incomplete.missing_count() as f64
            / (incomplete.n_rows() * incomplete.n_dims()) as f64
    );

    // The subspace detector consumes the incomplete data natively: a record
    // with a missing attribute simply never covers cubes constraining it.
    let report = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(12)
        .seed(11)
        .search(SearchMethod::Evolutionary)
        .build()
        .detect(&incomplete)
        .unwrap();
    let recall = planted.recall(&report.outlier_rows).unwrap();
    println!(
        "subspace detector on incomplete data: {} outliers, recall {recall:.2}",
        report.outlier_rows.len()
    );

    // The distance baseline refuses incomplete input...
    match ramaswamy_top_n(&incomplete, 1, 10, Metric::Euclidean) {
        Err(BaselineError::MissingValues) => {
            println!("kNN baseline on incomplete data: refused (needs complete vectors)")
        }
        other => panic!("expected MissingValues, got {other:?}"),
    }

    // ...and after mean-imputation it hunts ghosts: imputed cells drag
    // records toward the center, and the planted outliers stay invisible.
    let imputed = impute_mean(&incomplete);
    let top = ramaswamy_top_n(&imputed, 1, report.outlier_rows.len(), Metric::Euclidean).unwrap();
    let baseline_rows: Vec<usize> = top.iter().map(|o| o.row).collect();
    let baseline_recall = planted.recall(&baseline_rows).unwrap();
    println!("kNN baseline on imputed data: same budget, recall {baseline_recall:.2}");
    assert!(
        recall > baseline_recall,
        "subspace should win under missingness"
    );
}
