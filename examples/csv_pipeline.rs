//! End-to-end pipeline from a CSV file: parse → clean (categoricals,
//! constant columns, missing markers) → detect → explain. This mirrors the
//! paper's own preprocessing of the UCI files ("the data sets were cleaned
//! in order to take care of categorical and missing attributes").
//!
//! ```text
//! cargo run --release --example csv_pipeline [path/to/file.csv]
//! ```
//!
//! Without an argument the example writes and consumes a small demo file.

use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::clean::{drop_constant_columns, encode_categoricals};
use hdoutlier::data::csv::parse_records;
use hdoutlier::data::discretize::{DiscretizeStrategy, Discretized};

const DEMO: &str = "\
region,sensor,temp,pressure,vibration,status
north,a,21.3,101.2,0.12,ok
north,a,21.8,101.5,0.14,ok
south,b,22.1,101.1,0.11,ok
south,b,35.9,88.0,0.13,ok
north,a,21.1,101.0,0.13,ok
south,?,21.9,101.4,0.12,ok
north,b,22.4,101.6,0.15,ok
south,a,21.6,101.3,0.10,ok
north,b,21.2,101.1,0.12,ok
south,a,22.0,101.2,0.14,ok
north,a,21.5,101.4,0.11,ok
south,b,21.7,101.5,0.13,ok
";

fn main() {
    let arg = std::env::args().nth(1);
    let text = match &arg {
        Some(path) => std::fs::read_to_string(path).expect("readable CSV file"),
        None => DEMO.to_string(),
    };

    // Parse raw records, then encode categoricals as dense codes (region,
    // sensor, status in the demo) with `?` treated as missing.
    let mut records = parse_records(&text, ',').expect("well-formed CSV");
    let header: Vec<String> = records.remove(0);
    let (mut dataset, code_books) =
        encode_categoricals(&records, &["?", "", "NA"]).expect("non-empty data");
    dataset
        .set_names(header.clone())
        .expect("header matches width");
    for (name, codes) in header.iter().zip(&code_books) {
        if !codes.is_empty() {
            println!("encoded categorical {name:?}: {codes:?}");
        }
    }

    // Constant columns ("status" in the demo) carry no outlier information.
    let dataset = drop_constant_columns(&dataset);
    println!(
        "after cleaning: {} records x {} attributes, {} missing entries",
        dataset.n_rows(),
        dataset.n_dims(),
        dataset.missing_count()
    );

    // Detect with advisor-chosen parameters (tiny demo => phi=3, k=1).
    let report = OutlierDetector::builder()
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .detect(&dataset)
        .expect("valid data");

    let phi = hdoutlier::core::params::advise(dataset.n_rows() as u64, -3.0).phi;
    let disc = Discretized::new(&dataset, phi, DiscretizeStrategy::EquiDepth).unwrap();
    println!("\nmost abnormal projections:");
    for i in 0..report.projections.len().min(3) {
        println!("  {}", report.explain(i, &disc));
    }
    println!("outlier rows: {:?}", report.outlier_rows);
}
