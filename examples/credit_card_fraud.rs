//! The paper's motivating scenario (§1): credit-card fraud, where "only the
//! subset of the attributes which are actually affected by the abnormality
//! of the activity are likely to be useful in detecting the behavior."
//!
//! We synthesize a transaction-profile dataset: customer aggregates over
//! correlated behavioral attributes (amounts, frequencies, merchant mix,
//! geography). Two fraud patterns are planted:
//!
//! - **account takeover**: high transaction frequency with *low* average
//!   amount — individually normal, jointly contrarian (card testing);
//! - **merchant collusion**: high online-spend share with *low* distinct
//!   merchant count.
//!
//! Full-dimensional distance sees neither, because the other attributes of
//! the fraudulent accounts are perfectly typical.
//!
//! ```text
//! cargo run --release --example credit_card_fraud
//! ```

use hdoutlier::baselines::{ramaswamy_top_n, Metric};
use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::dataset::Dataset;
use hdoutlier::data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};

const NAMES: [&str; 10] = [
    "txn_count",
    "avg_amount",
    "online_share",
    "distinct_merchants",
    "night_share",
    "intl_share",
    "atm_count",
    "atm_amount",
    "decline_rate",
    "new_merchant_rate",
];

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 5000usize;

    // Correlated pairs: (txn_count, avg_amount) both driven by "activity";
    // (online_share, distinct_merchants) by "online-savviness";
    // (atm_count, atm_amount) by "cash habit". The rest are noise-ish.
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let activity = standard_normal(&mut rng);
            let online = standard_normal(&mut rng);
            let cash = standard_normal(&mut rng);
            let noise = |rng: &mut StdRng| 0.31 * standard_normal(rng);
            vec![
                0.95 * activity + noise(&mut rng), // txn_count
                0.95 * activity + noise(&mut rng), // avg_amount
                0.95 * online + noise(&mut rng),   // online_share
                0.95 * online + noise(&mut rng),   // distinct_merchants
                standard_normal(&mut rng),         // night_share
                standard_normal(&mut rng),         // intl_share
                0.95 * cash + noise(&mut rng),     // atm_count
                0.95 * cash + noise(&mut rng),     // atm_amount
                standard_normal(&mut rng),         // decline_rate
                standard_normal(&mut rng),         // new_merchant_rate
            ]
        })
        .collect();

    // Plant fraud: 5 account takeovers, 5 collusion rings. Each value is at
    // a mild quantile (~10 % / ~90 %) — nothing a single-attribute rule
    // would flag.
    let z = 1.28;
    let mut fraud_rows = Vec::new();
    for i in 0..5 {
        let r = 137 + i * 401;
        rows[r][0] = z; // many transactions...
        rows[r][1] = -z; // ...of tiny amounts
        fraud_rows.push(r);
    }
    for i in 0..5 {
        let r = 211 + i * 377;
        rows[r][2] = z; // heavy online spend...
        rows[r][3] = -z; // ...at almost no distinct merchants
        fraud_rows.push(r);
    }
    fraud_rows.sort_unstable();

    let mut dataset = Dataset::from_rows(rows).unwrap();
    dataset.set_names(NAMES.to_vec()).unwrap();

    // Subspace detector.
    let report = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(10)
        .seed(3)
        .search(SearchMethod::Evolutionary)
        .build()
        .detect(&dataset)
        .unwrap();

    let disc = Discretized::new(&dataset, 5, DiscretizeStrategy::EquiDepth).unwrap();
    println!("subspace projections flagged:");
    for i in 0..report.projections.len().min(6) {
        println!("  {}", report.explain(i, &disc));
    }
    let hits = report
        .outlier_rows
        .iter()
        .filter(|r| fraud_rows.binary_search(r).is_ok())
        .count();
    println!(
        "\nsubspace method: flagged {} accounts, {hits}/{} planted fraudsters among them",
        report.outlier_rows.len(),
        fraud_rows.len()
    );

    // Full-dimensional kNN-distance baseline with the same budget.
    let top = ramaswamy_top_n(&dataset, 1, report.outlier_rows.len(), Metric::Euclidean).unwrap();
    let knn_hits = top
        .iter()
        .filter(|o| fraud_rows.binary_search(&o.row).is_ok())
        .count();
    println!(
        "kNN-distance baseline: same budget, {knn_hits}/{} planted fraudsters found",
        fraud_rows.len()
    );
    assert!(
        hits > knn_hits,
        "subspace should beat full-dimensional distance on this workload"
    );
}
