//! The paper's motivating scenario (§1): credit-card fraud, where "only the
//! subset of the attributes which are actually affected by the abnormality
//! of the activity are likely to be useful in detecting the behavior."
//!
//! This example is a thin wrapper over the **fraud-burst scenario pack**
//! (`hdoutlier scenario run fraud-burst`): a seeded dataset with planted
//! contrarian transactions that brute-force and evolutionary subspace
//! search must recover, a kNN baseline expected to do no better, and a
//! CFOF rank-based referee. The pack is the same code path CI pins with a
//! golden report, so what this example demonstrates is exactly what the
//! regression suite guarantees.
//!
//! ```text
//! cargo run --release --example credit_card_fraud
//! ```

use hdoutlier::scenario::{find, RunConfig};

fn main() {
    let pack = find("fraud-burst").expect("fraud-burst pack is registered");
    println!("scenario: {} (seed 0x{:x})", pack.name, pack.seed);
    println!("  {}\n", pack.summary);

    let outcome = pack.run(&RunConfig::default()).expect("pipelines run");

    let dataset = outcome.report.get("dataset").expect("dataset section");
    println!(
        "dataset: {} rows x {} dims, planted fraudulent rows: {}",
        dataset
            .get("rows")
            .and_then(|j| j.as_number())
            .unwrap_or(0.0),
        dataset
            .get("dims")
            .and_then(|j| j.as_number())
            .unwrap_or(0.0),
        dataset
            .get("planted")
            .map(|j| j.render())
            .unwrap_or_default(),
    );

    println!("\nground-truth invariants:");
    for inv in &outcome.invariants {
        println!(
            "  [{}] {}: {}",
            if inv.holds { "PASS" } else { "FAIL" },
            inv.name,
            inv.detail
        );
    }

    assert!(
        outcome.failed_invariants().is_empty(),
        "the fraud-burst pack's ground truth must hold"
    );
    println!("\nall invariants hold — the subspace method finds what full-space distance cannot.");
}
