//! §2.4 in practice: choosing φ and k with the paper's rules, and seeing
//! why the choice matters.
//!
//! For a dataset of N records, `k* = ⌊log_φ(N/s² + 1)⌋` is the *largest*
//! projection dimensionality at which an empty cube is still `|s|` standard
//! deviations below its expectation — past it, "the effects of high
//! dimensionality result in sparse projections by default".
//!
//! ```text
//! cargo run --release --example parameter_selection
//! ```

use hdoutlier::core::params::{advise, suggest_phi};
use hdoutlier::prelude::*;

fn main() {
    println!("advisor output (target sparsity -3):\n");
    println!(
        "{:>9}  {:>3}  {:>2}  {:>14}",
        "N", "phi", "k*", "S(empty cube)"
    );
    for n in [100u64, 452, 1_000, 5_000, 10_000, 100_000, 1_000_000] {
        let a = advise(n, -3.0);
        println!(
            "{n:>9}  {:>3}  {:>2}  {:>14.2}",
            a.phi, a.k, a.empty_cube_sparsity
        );
    }

    // What goes wrong past k*: the paper's own example — fewer than 10,000
    // points with phi = 10 cannot support 4-dimensional projections, because
    // even a cube holding a single point is no longer significantly sparse.
    println!("\nthe k > k* failure mode (N = 10,000, phi = 10):");
    for k in 1..=5u32 {
        let expected = 10_000.0 / 10f64.powi(k as i32);
        let s_one = sparsity_coefficient(1, 10_000, 10, k);
        let s_empty = empty_cube_coefficient(10_000, 10, k);
        println!(
            "  k = {k}: E[occupancy] = {expected:>8.2}, S(1 point) = {s_one:>6.2}, \
             S(empty) = {s_empty:>6.2}{}",
            if Some(k) == recommended_k(10_000, 10, -3.0) {
                "   <- k*"
            } else {
                ""
            }
        );
    }

    // Significance: translating a coefficient into the normal-table reading
    // of §1.3 / §2.4 ("a choice of sparsity coefficient of -3 would result
    // in 99.9% level of significance").
    println!("\nsignificance of sparsity coefficients:");
    for s in [-1.0f64, -2.0, -3.0, -4.0, -5.0] {
        println!(
            "  S = {s:>4.1}  ->  P[at least this sparse | uniform data] = {:.2e}",
            significance_of(s)
        );
    }

    // The phi heuristic trades locality resolution against range mass.
    println!(
        "\nphi heuristic: N=50 -> {}, N=250 -> {}, N=10^6 -> {}",
        suggest_phi(50),
        suggest_phi(250),
        suggest_phi(1_000_000)
    );
}
