//! Quickstart: detect subspace outliers in a synthetic dataset with planted
//! ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};

fn main() {
    // 1. Get data. Here: 2000 records in 15 dimensions whose attribute
    //    pairs are correlated, with 6 planted records that are contrarian
    //    in one pair — marginally unremarkable, jointly almost impossible.
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 2000,
        n_dims: 15,
        n_outliers: 6,
        // Three attribute pairs are near-deterministically related (the
        // "structured views" of the paper's Figure 1); the planted records
        // violate one of them. The rest of the data is mildly correlated.
        strong_groups: Some(3),
        seed: 42,
        ..PlantedConfig::default()
    });
    let dataset = &planted.dataset;
    println!(
        "dataset: {} records x {} dimensions, {} planted outliers",
        dataset.n_rows(),
        dataset.n_dims(),
        planted.outlier_rows.len()
    );

    // 2. Configure the detector. phi = grid ranges per dimension, k =
    //    projection dimensionality, m = number of sparse projections to
    //    report. Omit phi/k to let the paper's §2.4 rule choose them.
    let detector = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(10)
        .seed(7)
        .search(SearchMethod::Evolutionary)
        .build();

    // 3. Detect.
    let report = detector.detect(dataset).expect("valid configuration");

    // 4. Inspect. Each reported projection is a grid cube whose occupancy is
    //    far below what independence predicts (Eq. 1 of the paper); the
    //    outliers are the records inside those cubes.
    let disc = Discretized::new(dataset, 5, DiscretizeStrategy::EquiDepth).unwrap();
    println!("\nmost abnormal projections:");
    for i in 0..report.projections.len().min(5) {
        println!("  {}", report.explain(i, &disc));
    }
    println!(
        "\noutlier rows: {:?} (search: {} evaluations in {:?})",
        report.outlier_rows, report.stats.work, report.stats.elapsed
    );

    // 5. Score against the planted ground truth.
    let recall = planted.recall(&report.outlier_rows).unwrap_or(0.0);
    let precision = planted.precision(&report.outlier_rows).unwrap_or(0.0);
    println!("precision = {precision:.2}, recall = {recall:.2} against planted outliers");
}
