//! The train/apply deployment loop: fit a detector offline, keep only the
//! fitted model (grid boundaries + mined projections — no training data),
//! then score a stream of incoming records online.
//!
//! ```text
//! cargo run --release --example model_deployment
//! ```

use hdoutlier::core::detector::{OutlierDetector, SearchMethod};
use hdoutlier::data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn main() {
    // --- Offline: fit on historical data. ---
    let history = planted_outliers(&PlantedConfig {
        n_rows: 4000,
        n_dims: 12,
        n_outliers: 6,
        strong_groups: Some(3),
        seed: 2026,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(12)
        .threads(2)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&history.dataset)
        .expect("valid parameters");
    println!(
        "fitted model: {} projections over a {}-dim phi={} grid",
        model.projections().len(),
        model.grid().n_dims(),
        model.grid().phi()
    );
    // The model is all a scoring service needs; the 4000 training rows can
    // be discarded (or the model shipped over the wire — the CLI's
    // `detect --save-model` / `score --model` do exactly this with JSON).

    // --- Online: score a stream of new records. ---
    let mut rng = StdRng::seed_from_u64(9);
    let mut flagged = 0usize;
    let mut contrarians_caught = 0usize;
    const STREAM: usize = 2000;
    const PLANT_EVERY: usize = 200;
    for i in 0..STREAM {
        // Bulk traffic: same factor structure as the history.
        let mut record: Vec<f64> = Vec::with_capacity(12);
        for g in 0..6 {
            let f = standard_normal(&mut rng);
            let strength = if g < 3 { 0.95 } else { 0.5 };
            let noise = (1.0f64 - strength * strength).sqrt();
            record.push(strength * f + noise * standard_normal(&mut rng));
            record.push(strength * f + noise * standard_normal(&mut rng));
        }
        // Every PLANT_EVERY-th record violates the first strong pair.
        let planted = i % PLANT_EVERY == PLANT_EVERY - 1;
        if planted {
            record[0] = -1.3;
            record[1] = 1.3;
        }
        match model.score(&record).expect("matching width") {
            Some(score) => {
                flagged += 1;
                if planted {
                    contrarians_caught += 1;
                    println!("record {i:>4}: FLAGGED (S = {score:.2}) — planted contrarian");
                }
            }
            None => {
                // Planted contrarians may rarely slip past (the final tally
                // below asserts the overall catch rate).
            }
        }
    }
    let planted_total = STREAM / PLANT_EVERY;
    println!(
        "\nstream of {STREAM}: flagged {flagged}, caught {contrarians_caught}/{planted_total} planted contrarians"
    );
    assert!(contrarians_caught >= planted_total * 2 / 3);
}
