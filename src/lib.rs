#![warn(missing_docs)]

//! Umbrella crate for the hdoutlier workspace.
//!
//! Re-exports the full public API of the Aggarwal–Yu subspace outlier
//! detector and its substrates, so downstream users can depend on a single
//! crate:
//!
//! ```
//! use hdoutlier::prelude::*;
//! ```
//!
//! See the workspace README for a tour and `examples/` for runnable
//! programs.

pub use hdoutlier_baselines as baselines;
pub use hdoutlier_core as core;
pub use hdoutlier_data as data;
pub use hdoutlier_evolve as evolve;
pub use hdoutlier_index as index;
pub use hdoutlier_obs as obs;
pub use hdoutlier_scenario as scenario;
pub use hdoutlier_stats as stats;
pub use hdoutlier_stream as stream;

/// The most common imports, bundled.
pub mod prelude {
    pub use hdoutlier_core::crossover::CrossoverKind;
    pub use hdoutlier_core::detector::{OutlierDetector, SearchMethod};
    pub use hdoutlier_core::{FittedModel, MultiKReport, OutlierReport, Projection};
    pub use hdoutlier_data::{Dataset, DiscretizeStrategy, Discretized, GridSpec};
    pub use hdoutlier_stats::{
        empty_cube_coefficient, recommended_k, significance_of, sparsity_coefficient,
        SparsityParams,
    };
    pub use hdoutlier_stream::{
        DriftMonitor, DriftReport, GkSketch, OnlineScorer, StreamingDiscretizer, Verdict,
        WindowCounter,
    };
}
