//! Property-based tests for the distance baselines.

use hdoutlier_baselines::distance::Metric;
use hdoutlier_baselines::knorr_ng::knorr_ng_outliers;
use hdoutlier_baselines::lof::lof_scores;
use hdoutlier_baselines::nn::{knn_brute, VpTree};
use hdoutlier_baselines::ramaswamy_top_n;
use hdoutlier_data::Dataset;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (4usize..40, 1usize..5).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-100f64..100.0, n * d)
            .prop_map(move |values| Dataset::new(values, n, d).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_are_metrics(
        a in proptest::collection::vec(-50f64..50.0, 3),
        b in proptest::collection::vec(-50f64..50.0, 3),
        c in proptest::collection::vec(-50f64..50.0, 3),
    ) {
        for m in [Metric::Manhattan, Metric::Euclidean, Metric::Chebyshev, Metric::Minkowski(3.0)] {
            let ab = m.distance(&a, &b);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - m.distance(&b, &a)).abs() < 1e-9);
            prop_assert!(m.distance(&a, &a) < 1e-12);
            // Triangle inequality.
            prop_assert!(m.distance(&a, &c) <= ab + m.distance(&b, &c) + 1e-9);
        }
    }

    #[test]
    fn vp_tree_always_matches_brute_force(ds in dataset_strategy(), k in 1usize..5) {
        let k = k.min(ds.n_rows() - 1);
        let tree = VpTree::build(&ds, Metric::Euclidean).unwrap();
        for query in 0..ds.n_rows().min(8) {
            let brute = knn_brute(&ds, query, k, Metric::Euclidean);
            let vp = tree.knn_of_row(query, k);
            prop_assert_eq!(brute.len(), vp.len());
            for (b, v) in brute.iter().zip(&vp) {
                prop_assert!((b.distance - v.distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ramaswamy_scores_descend_and_rows_unique(ds in dataset_strategy(), k in 1usize..4, n in 1usize..20) {
        let k = k.min(ds.n_rows() - 1);
        let top = ramaswamy_top_n(&ds, k, n, Metric::Euclidean).unwrap();
        prop_assert!(top.len() <= n.min(ds.n_rows()));
        for w in top.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        let rows: std::collections::HashSet<usize> = top.iter().map(|o| o.row).collect();
        prop_assert_eq!(rows.len(), top.len());
    }

    #[test]
    fn knorr_ng_is_monotone_in_lambda_and_k(ds in dataset_strategy()) {
        let small = knorr_ng_outliers(&ds, 1, 1.0, Metric::Euclidean).unwrap();
        let large = knorr_ng_outliers(&ds, 1, 100.0, Metric::Euclidean).unwrap();
        // Larger λ can only remove outliers.
        prop_assert!(large.len() <= small.len());
        for r in &large {
            prop_assert!(small.contains(r), "λ-monotonicity violated at row {}", r);
        }
        // Larger k can only add outliers.
        let k1 = knorr_ng_outliers(&ds, 1, 10.0, Metric::Euclidean).unwrap();
        let k3 = knorr_ng_outliers(&ds, 3, 10.0, Metric::Euclidean).unwrap();
        for r in &k1 {
            prop_assert!(k3.contains(r), "k-monotonicity violated at row {}", r);
        }
    }

    #[test]
    fn lof_scores_are_positive_and_finite_or_inf(ds in dataset_strategy(), min_pts in 1usize..5) {
        let min_pts = min_pts.min(ds.n_rows() - 1);
        let scores = lof_scores(&ds, min_pts, Metric::Euclidean).unwrap();
        prop_assert_eq!(scores.len(), ds.n_rows());
        for &s in &scores {
            prop_assert!(s >= 0.0);
            prop_assert!(!s.is_nan());
        }
    }

    #[test]
    fn far_point_tops_every_ranking(base in proptest::collection::vec(-1f64..1.0, 20)) {
        // 10 points in [-1,1]² plus one at (100, 100).
        let mut rows: Vec<Vec<f64>> = base.chunks(2).map(<[f64]>::to_vec).collect();
        rows.push(vec![100.0, 100.0]);
        let n = rows.len();
        let ds = Dataset::from_rows(rows).unwrap();
        let top = ramaswamy_top_n(&ds, 1, 1, Metric::Euclidean).unwrap();
        prop_assert_eq!(top[0].row, n - 1);
        let lof = lof_scores(&ds, 3, Metric::Euclidean).unwrap();
        let best = (0..n).max_by(|&a, &b| lof[a].partial_cmp(&lof[b]).unwrap()).unwrap();
        prop_assert_eq!(best, n - 1);
    }
}
