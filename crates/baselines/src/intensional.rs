//! Intensional knowledge of distance-based outliers — a simplified
//! implementation of Knorr & Ng (VLDB 1999), the paper's reference \[23\].
//!
//! The idea: a DB(k, λ)-outlier is more *useful* if you also know the
//! minimal subspaces in which it is outlying ("intensional knowledge" —
//! the projection is the explanation, an ancestor of Aggarwal & Yu's own
//! interpretability claim). The algorithm explores the lattice of attribute
//! subsets bottom-up and, for each subspace, finds the distance-based
//! outliers of the projected data; a subspace is reported for a point if
//! none of its proper subsets already flags the point (minimality).
//!
//! Aggarwal & Yu's §1 critique is the cost: the lattice has `Σ_j C(d, j)`
//! subspaces up to depth `j`, and each one requires a pass over the
//! projected data. `repro intensional` measures exactly that explosion
//! against the evolutionary search's flat budget.

use crate::distance::Metric;
use crate::knorr_ng::{knorr_ng_outliers, suggest_lambda};
use crate::BaselineError;
use hdoutlier_data::Dataset;

/// One piece of intensional knowledge: a point with a minimal outlying
/// subspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntensionalOutlier {
    /// Row index of the outlying point.
    pub row: usize,
    /// A minimal attribute subset (ascending) in which the point is a
    /// DB(k, λ)-outlier.
    pub subspace: Vec<usize>,
}

/// Result of the lattice exploration.
#[derive(Debug, Clone)]
pub struct IntensionalResult {
    /// All `(point, minimal subspace)` pairs found, ordered by subspace size
    /// then lexicographically.
    pub outliers: Vec<IntensionalOutlier>,
    /// Number of subspaces whose projected data was scanned — the cost the
    /// Aggarwal–Yu paper calls out.
    pub subspaces_examined: u64,
}

/// Configuration for [`intensional_outliers`].
#[derive(Debug, Clone)]
pub struct IntensionalConfig {
    /// Neighbor budget `k` of the DB(k, λ) definition.
    pub k: usize,
    /// Pairwise-distance quantile from which each subspace's λ is derived
    /// (per-subspace, since distances are not comparable across
    /// dimensionalities — the measure-comparability problem §1.1 of
    /// Aggarwal & Yu raises).
    pub lambda_quantile: f64,
    /// Deepest subspace size to drill down to.
    pub max_depth: usize,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for IntensionalConfig {
    fn default() -> Self {
        Self {
            k: 2,
            lambda_quantile: 0.03,
            max_depth: 2,
            metric: Metric::Euclidean,
        }
    }
}

/// Bottom-up lattice exploration for minimal outlying subspaces.
///
/// Cost is `Σ_{j=1..max_depth} C(d, j)` projected outlier scans — fine in a
/// handful of dimensions, combinatorially explosive beyond (the point of
/// the comparison).
pub fn intensional_outliers(
    dataset: &Dataset,
    config: &IntensionalConfig,
) -> Result<IntensionalResult, BaselineError> {
    crate::ensure_complete(dataset)?;
    if config.max_depth == 0 || config.max_depth > dataset.n_dims() {
        return Err(BaselineError::BadParams(format!(
            "max_depth must be in 1..={}, got {}",
            dataset.n_dims(),
            config.max_depth
        )));
    }
    let d = dataset.n_dims();
    let mut outliers: Vec<IntensionalOutlier> = Vec::new();
    // flagged[row] = minimal subspaces that already flag the row.
    let mut flagged: Vec<Vec<Vec<usize>>> = vec![Vec::new(); dataset.n_rows()];
    let mut subspaces_examined = 0u64;

    let mut subspace = Vec::with_capacity(config.max_depth);
    enumerate_by_size(d, config.max_depth, &mut subspace, &mut |subspace| {
        subspaces_examined += 1;
        let projected = dataset
            .select_columns(subspace)
            .expect("subset indices in bounds");
        let lambda = match suggest_lambda(&projected, config.lambda_quantile, config.metric) {
            Ok(l) if l > 0.0 => l,
            // Degenerate projection (e.g. all-equal values): skip.
            _ => return Ok(()),
        };
        let rows = knorr_ng_outliers(&projected, config.k, lambda, config.metric)?;
        for row in rows {
            // Minimality: skip if some recorded subset of this subspace
            // already flags the row.
            let redundant = flagged[row]
                .iter()
                .any(|prior| prior.iter().all(|dim| subspace.contains(dim)));
            if !redundant {
                flagged[row].push(subspace.to_vec());
                outliers.push(IntensionalOutlier {
                    row,
                    subspace: subspace.to_vec(),
                });
            }
        }
        Ok(())
    })?;

    outliers.sort_by(|a, b| {
        a.subspace
            .len()
            .cmp(&b.subspace.len())
            .then_with(|| a.subspace.cmp(&b.subspace))
            .then_with(|| a.row.cmp(&b.row))
    });
    Ok(IntensionalResult {
        outliers,
        subspaces_examined,
    })
}

/// Visits every non-empty subset of `0..d` of size ≤ `max_depth` in
/// **ascending size order** (all singletons, then all pairs, …) —
/// minimality checking requires every subset of a subspace to be visited
/// before the subspace itself.
fn enumerate_by_size<F>(
    d: usize,
    max_depth: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
) -> Result<(), BaselineError>
where
    F: FnMut(&[usize]) -> Result<(), BaselineError>,
{
    for size in 1..=max_depth.min(d) {
        enumerate_exact(d, size, current, visit)?;
    }
    Ok(())
}

/// Visits every subset of `0..d` of size exactly `size`, lexicographically.
fn enumerate_exact<F>(
    d: usize,
    size: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
) -> Result<(), BaselineError>
where
    F: FnMut(&[usize]) -> Result<(), BaselineError>,
{
    if current.len() == size {
        return visit(current);
    }
    let start = current.last().map_or(0, |&l| l + 1);
    let remaining = size - current.len();
    for dim in start..=(d - remaining) {
        current.push(dim);
        enumerate_exact(d, size, current, visit)?;
        current.pop();
    }
    Ok(())
}

/// Number of subspaces the lattice exploration visits:
/// `Σ_{j=1..max_depth} C(d, j)`.
pub fn lattice_size(d: usize, max_depth: usize) -> u64 {
    let mut total = 0u64;
    let mut c = 1u64; // C(d, 0)
    for j in 1..=max_depth.min(d) {
        c = c.saturating_mul((d - j + 1) as u64) / j as u64;
        total = total.saturating_add(c);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::Dataset;

    fn cluster_with_subspace_outlier() -> (Dataset, usize) {
        // Tight 2-d cluster in dims (0, 1); dim 2 is spread-out noise. The
        // last point is contrarian only in dims (0, 1).
        let mut rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                vec![
                    (i % 6) as f64 * 0.05,
                    (i % 6) as f64 * 0.05 + 0.01 * (i / 6) as f64,
                    i as f64, // noisy spread
                ]
            })
            .collect();
        let outlier = rows.len();
        rows.push(vec![0.02, 5.0, 15.5]); // dim1 wildly off, dim2 typical
        (Dataset::from_rows(rows).unwrap(), outlier)
    }

    #[test]
    fn finds_the_minimal_outlying_subspace() {
        let (ds, outlier) = cluster_with_subspace_outlier();
        let result = intensional_outliers(
            &ds,
            &IntensionalConfig {
                k: 1,
                lambda_quantile: 0.30,
                max_depth: 2,
                metric: Metric::Euclidean,
            },
        )
        .unwrap();
        // The planted point must be flagged with a subspace containing dim 1.
        let mine: Vec<&IntensionalOutlier> = result
            .outliers
            .iter()
            .filter(|o| o.row == outlier)
            .collect();
        assert!(!mine.is_empty(), "outlier not flagged: {result:?}");
        assert!(
            mine.iter().any(|o| o.subspace.contains(&1)),
            "flagging subspaces {mine:?} should involve dim 1"
        );
        // Minimality: no reported subspace is a superset of another reported
        // subspace for the same row.
        for a in &mine {
            for b in &mine {
                if a.subspace != b.subspace {
                    assert!(
                        !b.subspace.iter().all(|d| a.subspace.contains(d)),
                        "{:?} is a superset of {:?}",
                        a.subspace,
                        b.subspace
                    );
                }
            }
        }
    }

    #[test]
    fn examined_count_matches_lattice_size() {
        let (ds, _) = cluster_with_subspace_outlier();
        let result = intensional_outliers(
            &ds,
            &IntensionalConfig {
                max_depth: 2,
                ..IntensionalConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.subspaces_examined, lattice_size(3, 2)); // 3 + 3
        assert_eq!(lattice_size(3, 2), 6);
        assert_eq!(lattice_size(16, 3), 16 + 120 + 560);
        assert_eq!(lattice_size(279, 2), 279 + 38781);
        assert_eq!(lattice_size(2, 5), 3); // depth clamped by d
    }

    #[test]
    fn parameter_validation() {
        let (ds, _) = cluster_with_subspace_outlier();
        assert!(intensional_outliers(
            &ds,
            &IntensionalConfig {
                max_depth: 0,
                ..IntensionalConfig::default()
            }
        )
        .is_err());
        assert!(intensional_outliers(
            &ds,
            &IntensionalConfig {
                max_depth: 9,
                ..IntensionalConfig::default()
            }
        )
        .is_err());
        let missing = Dataset::from_rows(vec![vec![f64::NAN, 1.0], vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            intensional_outliers(&missing, &IntensionalConfig::default()),
            Err(BaselineError::MissingValues)
        ));
    }

    #[test]
    fn subset_enumeration_is_complete_and_ordered() {
        let mut seen = Vec::new();
        enumerate_by_size(4, 2, &mut Vec::new(), &mut |s| {
            seen.push(s.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len() as u64, lattice_size(4, 2));
        // Every subset distinct, ascending, and visited in size order.
        for s in &seen {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
        for w in seen.windows(2) {
            assert!(w[0].len() <= w[1].len(), "size order violated: {seen:?}");
        }
        let set: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(set.len(), seen.len());
    }
}
