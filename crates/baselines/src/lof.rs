//! Local Outlier Factor (Breunig, Kriegel, Ng & Sander, SIGMOD 2000 — the
//! paper's reference \[10\]).
//!
//! LOF scores each point by how much lower its local reachability density is
//! than that of its neighbors; ≈ 1 means "as dense as the neighborhood",
//! larger means more outlying. This implementation uses the common
//! exactly-k-neighbors simplification (no k-distance tie expansion), which
//! matches scikit-learn's and most reimplementations' behavior.

use crate::distance::Metric;
use crate::nn::knn_brute;
use crate::BaselineError;
use hdoutlier_data::Dataset;

/// LOF scores for every row, with neighborhood size `min_pts`.
pub fn lof_scores(
    dataset: &Dataset,
    min_pts: usize,
    metric: Metric,
) -> Result<Vec<f64>, BaselineError> {
    lof_scores_threaded(dataset, min_pts, metric, 1)
}

/// [`lof_scores`] with the `O(n²·d)` neighbor scans fanned out over pool
/// workers. The lrd and LOF passes stay serial (they are `O(n·k)`); the
/// neighbor sets come back in row order, so the scores are bit-identical at
/// any thread count.
pub fn lof_scores_threaded(
    dataset: &Dataset,
    min_pts: usize,
    metric: Metric,
    threads: usize,
) -> Result<Vec<f64>, BaselineError> {
    crate::ensure_complete(dataset)?;
    let n = dataset.n_rows();
    if min_pts == 0 {
        return Err(BaselineError::BadParams("min_pts must be >= 1".into()));
    }
    if min_pts >= n {
        return Err(BaselineError::BadParams(format!(
            "min_pts = {min_pts} must be < n = {n}"
        )));
    }

    // k-NN sets and k-distances.
    let neighbors: Vec<Vec<crate::nn::Neighbor>> = if threads > 1 {
        let rows: Vec<usize> = (0..n).collect();
        hdoutlier_pool::map(threads, &rows, |_, &row| {
            knn_brute(dataset, row, min_pts, metric)
        })
    } else {
        (0..n)
            .map(|row| knn_brute(dataset, row, min_pts, metric))
            .collect()
    };
    let k_distance: Vec<f64> = neighbors
        .iter()
        .map(|nn| nn.last().expect("min_pts >= 1, n > min_pts").distance)
        .collect();

    // Local reachability density:
    // lrd(p) = 1 / mean_{o ∈ N_k(p)} max(k_distance(o), d(p, o)).
    let lrd: Vec<f64> = (0..n)
        .map(|p| {
            let sum: f64 = neighbors[p]
                .iter()
                .map(|nb| nb.distance.max(k_distance[nb.row]))
                .sum();
            let mean = sum / neighbors[p].len() as f64;
            if mean == 0.0 {
                // Duplicate-heavy neighborhoods: infinite density.
                f64::INFINITY
            } else {
                1.0 / mean
            }
        })
        .collect();

    // LOF(p) = mean_{o ∈ N_k(p)} lrd(o) / lrd(p).
    Ok((0..n)
        .map(|p| {
            let ratio_sum: f64 = neighbors[p]
                .iter()
                .map(|nb| {
                    match (lrd[nb.row].is_infinite(), lrd[p].is_infinite()) {
                        (true, true) => 1.0, // both infinitely dense
                        (false, true) => 0.0,
                        (true, false) => f64::INFINITY,
                        (false, false) => lrd[nb.row] / lrd[p],
                    }
                })
                .sum();
            ratio_sum / neighbors[p].len() as f64
        })
        .collect())
}

/// The `n` rows with the largest LOF scores, descending.
pub fn lof_top_n(
    dataset: &Dataset,
    min_pts: usize,
    n: usize,
    metric: Metric,
) -> Result<Vec<(usize, f64)>, BaselineError> {
    lof_top_n_threaded(dataset, min_pts, n, metric, 1)
}

/// [`lof_top_n`] over [`lof_scores_threaded`]; same ranking at any thread
/// count.
pub fn lof_top_n_threaded(
    dataset: &Dataset,
    min_pts: usize,
    n: usize,
    metric: Metric,
    threads: usize,
) -> Result<Vec<(usize, f64)>, BaselineError> {
    let scores = lof_scores_threaded(dataset, min_pts, metric, threads)?;
    let mut ranked: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("LOF scores are comparable")
            .then(a.0.cmp(&b.0))
    });
    ranked.truncate(n);
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::generators::uniform;
    use hdoutlier_data::Dataset;

    fn two_clusters_and_outlier() -> Dataset {
        // Dense cluster, loose cluster, and one isolated point.
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01]);
        }
        for i in 0..10 {
            rows.push(vec![5.0 + (i % 5) as f64 * 0.5, 5.0 + (i / 5) as f64 * 0.5]);
        }
        rows.push(vec![2.5, 2.5]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn isolated_point_has_the_highest_lof() {
        let ds = two_clusters_and_outlier();
        let top = lof_top_n(&ds, 3, 1, Metric::Euclidean).unwrap();
        assert_eq!(top[0].0, 20, "top LOF should be the isolated point");
        assert!(top[0].1 > 2.0, "LOF {}", top[0].1);
    }

    #[test]
    fn cluster_members_score_near_one() {
        let ds = two_clusters_and_outlier();
        let scores = lof_scores(&ds, 3, Metric::Euclidean).unwrap();
        // Interior points of the dense cluster.
        for &p in &[0usize, 1, 2, 6, 7] {
            assert!(
                (0.8..1.6).contains(&scores[p]),
                "cluster point {p} scored {}",
                scores[p]
            );
        }
    }

    #[test]
    fn lof_is_locality_aware_where_global_distance_is_not() {
        // A point on the edge of the loose cluster is farther from its
        // neighbors (globally) than the planted point is from the dense
        // cluster — yet LOF correctly ranks the planted point higher
        // because it is judged against its *local* density.
        let ds = two_clusters_and_outlier();
        let scores = lof_scores(&ds, 3, Metric::Euclidean).unwrap();
        let loose_member = 15usize;
        assert!(scores[20] > scores[loose_member]);
    }

    #[test]
    fn duplicates_do_not_blow_up() {
        let rows = vec![vec![1.0, 1.0]; 5]
            .into_iter()
            .chain(std::iter::once(vec![9.0, 9.0]))
            .collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = lof_scores(&ds, 2, Metric::Euclidean).unwrap();
        // Duplicate points: all finite-or-1 semantics; the far point sticks out.
        for (i, &s) in scores.iter().enumerate().take(5) {
            assert!(s == 1.0 || s.is_finite(), "dup {i} scored {s}");
        }
        assert!(scores[5] > 1.0 || scores[5].is_infinite());
    }

    #[test]
    fn parameter_validation() {
        let ds = uniform(10, 2, 1);
        assert!(lof_scores(&ds, 0, Metric::Euclidean).is_err());
        assert!(lof_scores(&ds, 10, Metric::Euclidean).is_err());
        let missing = Dataset::from_rows(vec![vec![f64::NAN], vec![1.0]]).unwrap();
        assert!(matches!(
            lof_scores(&missing, 1, Metric::Euclidean),
            Err(BaselineError::MissingValues)
        ));
    }

    #[test]
    fn uniform_data_scores_hover_around_one() {
        let ds = uniform(300, 2, 9);
        let scores = lof_scores(&ds, 10, Metric::Euclidean).unwrap();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!((0.9..1.3).contains(&mean), "mean LOF {mean}");
    }

    #[test]
    fn threaded_scores_are_bit_identical_to_serial() {
        let ds = uniform(200, 3, 5);
        let serial: Vec<u64> = lof_scores(&ds, 5, Metric::Euclidean)
            .unwrap()
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [2, 4, 8] {
            let got: Vec<u64> = lof_scores_threaded(&ds, 5, Metric::Euclidean, threads)
                .unwrap()
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(got, serial, "threads = {threads}");
        }
        assert_eq!(
            lof_top_n_threaded(&ds, 5, 7, Metric::Euclidean, 4).unwrap(),
            lof_top_n(&ds, 5, 7, Metric::Euclidean).unwrap()
        );
    }

    #[test]
    fn top_n_is_sorted_and_truncated() {
        let ds = two_clusters_and_outlier();
        let top = lof_top_n(&ds, 3, 4, Metric::Euclidean).unwrap();
        assert_eq!(top.len(), 4);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
