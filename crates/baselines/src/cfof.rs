//! Concentration-Free Outlier Factor (Angiulli, arXiv:1901.04992) — a
//! reverse-nearest-neighbor score used by the scenario packs as a
//! cross-method referee.
//!
//! CFOF of a point `p` is the smallest fraction `k/n` such that at least
//! `ρ·n` points of the dataset include `p` among their `k` nearest
//! neighbors. Equivalently: collect, for every other point `j`, the rank of
//! `p` in `j`'s distance order (its *reverse rank*); the score is the
//! `⌈ρ·n⌉`-th smallest reverse rank divided by `n`. A point everyone agrees
//! is nobody's close neighbor needs a huge `k` to be "seen" by `ρ·n`
//! observers and scores near 1; a core inlier scores near 0.
//!
//! The draw as a referee: the score is a *rank* statistic, so it does not
//! concentrate as dimensionality grows the way raw distances do — exactly
//! the failure mode of kNN/LOF that the paper's §1 argues motivates subspace
//! search. Where CFOF and the sparsity coefficient disagree, one of them is
//! wrong in an interesting way, and the scenario invariants say which.

use crate::distance::Metric;
use crate::BaselineError;
use hdoutlier_data::Dataset;

/// CFOF scores for every row, in row order. `rho` is the fraction of the
/// dataset that must "see" the point (the paper's ϱ, typically 0.01–0.1;
/// clamped here to at least one observer). `O(n²·d + n²·log n)` brute force.
///
/// ```
/// use hdoutlier_baselines::{cfof_scores, Metric};
/// use hdoutlier_data::Dataset;
/// let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 5) as f64, (i / 5) as f64]).collect();
/// rows.push(vec![100.0, 100.0]);
/// let scores = cfof_scores(&ds_from(rows), 0.1, Metric::Euclidean).unwrap();
/// let top = (0..scores.len()).max_by(|&a, &b| scores[a].total_cmp(&scores[b])).unwrap();
/// assert_eq!(top, 20);
/// # fn ds_from(rows: Vec<Vec<f64>>) -> Dataset { Dataset::from_rows(rows).unwrap() }
/// ```
pub fn cfof_scores(dataset: &Dataset, rho: f64, metric: Metric) -> Result<Vec<f64>, BaselineError> {
    cfof_scores_threaded(dataset, rho, metric, 1)
}

/// [`cfof_scores`] with the per-observer rank scans fanned out over pool
/// workers. Each observer's distance order is computed independently and the
/// reverse-rank gather is in row order, so the output is bit-identical at
/// any thread count.
pub fn cfof_scores_threaded(
    dataset: &Dataset,
    rho: f64,
    metric: Metric,
    threads: usize,
) -> Result<Vec<f64>, BaselineError> {
    crate::ensure_complete(dataset)?;
    if !(rho > 0.0 && rho <= 1.0) {
        return Err(BaselineError::BadParams(format!(
            "rho = {rho} must be in (0, 1]"
        )));
    }
    let n = dataset.n_rows();
    if n < 2 {
        return Err(BaselineError::BadParams(format!(
            "need at least 2 rows, got {n}"
        )));
    }
    // How many observers must include the point among their neighbors.
    let observers = ((rho * n as f64).ceil() as usize).clamp(1, n - 1);

    // reverse_ranks[j] maps each point i to its 1-based rank in observer
    // j's distance order (j itself excluded). Ties break by row index, the
    // same total order used everywhere in this crate.
    let observer = |j: usize| -> Vec<usize> {
        let q = dataset.row(j);
        let mut order: Vec<(f64, usize)> = (0..n)
            .filter(|&i| i != j)
            .map(|i| (metric.distance(q, dataset.row(i)), i))
            .collect();
        order.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        let mut ranks = vec![0usize; n];
        for (pos, &(_, i)) in order.iter().enumerate() {
            ranks[i] = pos + 1;
        }
        ranks
    };
    let reverse_ranks: Vec<Vec<usize>> = if threads > 1 {
        let rows: Vec<usize> = (0..n).collect();
        hdoutlier_pool::map(threads, &rows, |_, &j| observer(j))
    } else {
        (0..n).map(observer).collect()
    };

    // Score of i: the `observers`-th smallest reverse rank of i, over n.
    Ok((0..n)
        .map(|i| {
            let mut ranks: Vec<usize> = (0..n)
                .filter(|&j| j != i)
                .map(|j| reverse_ranks[j][i])
                .collect();
            ranks.sort_unstable();
            ranks[observers - 1] as f64 / n as f64
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::Dataset;

    fn cluster_with_far_point() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        rows.push(vec![100.0, 100.0]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn far_point_scores_highest() {
        let ds = cluster_with_far_point();
        let scores = cfof_scores(&ds, 0.1, Metric::Euclidean).unwrap();
        let top = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(top, 20);
        // An isolated point is everyone's last neighbor: score ≈ (n−1)/n.
        assert!(scores[20] >= 20.0 / 21.0 - 1e-12);
        // Cluster members are someone's early neighbor.
        assert!(scores.iter().take(20).all(|&s| s < scores[20]));
    }

    #[test]
    fn scores_are_fractions_of_n() {
        let ds = cluster_with_far_point();
        let scores = cfof_scores(&ds, 0.25, Metric::Euclidean).unwrap();
        for &s in &scores {
            assert!(s > 0.0 && s <= 1.0, "score {s} out of (0, 1]");
        }
    }

    #[test]
    fn larger_rho_needs_larger_neighborhoods() {
        let ds = cluster_with_far_point();
        let lo = cfof_scores(&ds, 0.05, Metric::Euclidean).unwrap();
        let hi = cfof_scores(&ds, 0.5, Metric::Euclidean).unwrap();
        // More observers required ⟹ the deciding reverse rank cannot shrink.
        for (a, b) in lo.iter().zip(&hi) {
            assert!(b >= a);
        }
    }

    #[test]
    fn parameter_errors_propagate() {
        let ds = cluster_with_far_point();
        assert!(cfof_scores(&ds, 0.0, Metric::Euclidean).is_err());
        assert!(cfof_scores(&ds, 1.5, Metric::Euclidean).is_err());
        let one = Dataset::from_rows(vec![vec![1.0]]).unwrap();
        assert!(cfof_scores(&one, 0.1, Metric::Euclidean).is_err());
    }

    #[test]
    fn threaded_scores_are_identical_to_serial() {
        let ds = cluster_with_far_point();
        let serial = cfof_scores(&ds, 0.1, Metric::Euclidean).unwrap();
        for threads in [2, 4, 8] {
            let got = cfof_scores_threaded(&ds, 0.1, Metric::Euclidean, threads).unwrap();
            assert_eq!(got, serial, "threads = {threads}");
        }
    }
}
