#![warn(missing_docs)]

//! Distance-based outlier baselines.
//!
//! The paper's §3.1 evaluates the subspace detector against the
//! full-dimensional distance definitions it critiques; all three are
//! implemented here from their original papers:
//!
//! - [`knorr_ng`]: Knorr & Ng's DB(k, λ) outliers (VLDB 1998) — a point is
//!   an outlier if no more than `k` points lie within distance `λ`.
//! - [`knn_outlier`]: Ramaswamy, Rastogi & Shim's top-n outliers by
//!   k-th-nearest-neighbor distance (SIGMOD 2000) — the comparator in the
//!   paper's arrhythmia experiment.
//! - [`lof`]: Breunig et al.'s Local Outlier Factor (SIGMOD 2000).
//! - [`intensional`]: Knorr & Ng's intensional knowledge of distance-based
//!   outliers (VLDB 1999) — the roll-up/drill-down lattice method whose
//!   combinatorial cost §1 of the paper critiques.
//!
//! Two further scorers serve as *referees* for the scenario packs rather
//! than paper-era comparators:
//!
//! - [`cfof`]: Angiulli's Concentration-Free Outlier Factor — a
//!   reverse-kNN rank statistic that resists distance concentration.
//! - [`dod`]: Lee & Jeon's Distance-of-Distances — deviation of a point's
//!   sorted distance profile from the dataset's median profile.
//!
//! Substrate: [`distance`] (Minkowski norms) and [`nn`] (brute-force and
//! vantage-point-tree k-nearest-neighbor search).
//!
//! All baselines require complete vectors — impute missing values first
//! (e.g. [`hdoutlier_data::clean::impute_mean`]); they return
//! [`BaselineError::MissingValues`] otherwise. This asymmetry with the
//! subspace detector (which consumes missing data natively) is itself one of
//! the paper's points (§1.2).

pub mod cfof;
pub mod distance;
pub mod dod;
pub mod intensional;
pub mod knn_outlier;
pub mod knorr_ng;
pub mod lof;
pub mod nn;

pub use cfof::{cfof_scores, cfof_scores_threaded};
pub use distance::Metric;
pub use dod::{dod_scores, dod_scores_threaded};
pub use intensional::{intensional_outliers, IntensionalConfig};
pub use knn_outlier::{ramaswamy_top_n, ramaswamy_top_n_threaded};
pub use knorr_ng::{knorr_ng_outliers, suggest_lambda};
pub use lof::{lof_scores, lof_scores_threaded};

use std::fmt;

/// Errors from the baseline detectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The dataset contains missing values; impute first.
    MissingValues,
    /// A parameter is out of range; the string carries context.
    BadParams(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::MissingValues => {
                write!(f, "dataset contains missing values; impute before running distance-based baselines")
            }
            BaselineError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

pub(crate) fn ensure_complete(dataset: &hdoutlier_data::Dataset) -> Result<(), BaselineError> {
    if dataset.missing_count() > 0 {
        Err(BaselineError::MissingValues)
    } else {
        Ok(())
    }
}
