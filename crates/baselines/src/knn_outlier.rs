//! Ramaswamy–Rastogi–Shim top-n outliers by k-th-NN distance (SIGMOD 2000,
//! the paper's reference \[25\]).
//!
//! *"Given a k and n, a point p is an outlier if the distance to its kth
//! nearest neighbor is smaller than the corresponding value for no more than
//! n − 1 other points"* — i.e. the n points with the largest k-th-NN
//! distances. This is the comparator in the arrhythmia experiment (§3.1),
//! run there with the 1-nearest neighbor (and checked with larger k, which
//! the paper notes "worsened slightly").

use crate::distance::Metric;
use crate::BaselineError;
use hdoutlier_data::Dataset;

/// A scored distance outlier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceOutlier {
    /// Row index.
    pub row: usize,
    /// Distance to its k-th nearest neighbor (the outlier score).
    pub score: f64,
}

/// The top `n` rows by k-th-NN distance, descending (strongest outlier
/// first). Ties are broken by row index for determinism.
///
/// ```
/// use hdoutlier_baselines::{ramaswamy_top_n, Metric};
/// use hdoutlier_data::Dataset;
/// let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 5) as f64, (i / 5) as f64]).collect();
/// rows.push(vec![100.0, 100.0]); // the obvious outlier
/// let ds = Dataset::from_rows(rows).unwrap();
/// let top = ramaswamy_top_n(&ds, 1, 1, Metric::Euclidean).unwrap();
/// assert_eq!(top[0].row, 20);
/// ```
pub fn ramaswamy_top_n(
    dataset: &Dataset,
    k: usize,
    n: usize,
    metric: Metric,
) -> Result<Vec<DistanceOutlier>, BaselineError> {
    ramaswamy_top_n_threaded(dataset, k, n, metric, 1)
}

/// [`ramaswamy_top_n`] with the per-row k-th-NN scans fanned out over pool
/// workers. Identical output at any thread count: scores come back in row
/// order and the final sort is total (score, then row).
pub fn ramaswamy_top_n_threaded(
    dataset: &Dataset,
    k: usize,
    n: usize,
    metric: Metric,
    threads: usize,
) -> Result<Vec<DistanceOutlier>, BaselineError> {
    let scores = crate::nn::kth_nn_distances_threaded(dataset, k, metric, threads)?;
    let mut ranked: Vec<DistanceOutlier> = scores
        .into_iter()
        .enumerate()
        .map(|(row, score)| DistanceOutlier { row, score })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite distances")
            .then(a.row.cmp(&b.row))
    });
    ranked.truncate(n);
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::Dataset;

    fn cluster_with_far_point() -> Dataset {
        // Tight cluster near the origin plus one far point.
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        rows.push(vec![100.0, 100.0]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn far_point_is_the_top_outlier() {
        let ds = cluster_with_far_point();
        let top = ramaswamy_top_n(&ds, 1, 3, Metric::Euclidean).unwrap();
        assert_eq!(top[0].row, 20);
        assert!(top[0].score > 100.0);
        assert!(top[1].score < 1.0);
    }

    #[test]
    fn scores_are_descending_and_truncated() {
        let ds = cluster_with_far_point();
        let top = ramaswamy_top_n(&ds, 2, 5, Metric::Euclidean).unwrap();
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn n_larger_than_dataset_returns_all() {
        let ds = cluster_with_far_point();
        let top = ramaswamy_top_n(&ds, 1, 1000, Metric::Euclidean).unwrap();
        assert_eq!(top.len(), 21);
    }

    #[test]
    fn parameter_errors_propagate() {
        let ds = cluster_with_far_point();
        assert!(ramaswamy_top_n(&ds, 0, 3, Metric::Euclidean).is_err());
        assert!(ramaswamy_top_n(&ds, 21, 3, Metric::Euclidean).is_err());
    }

    #[test]
    fn threaded_ranking_is_identical_to_serial() {
        let ds = cluster_with_far_point();
        let serial = ramaswamy_top_n(&ds, 2, 10, Metric::Euclidean).unwrap();
        for threads in [2, 4, 8] {
            let got = ramaswamy_top_n_threaded(&ds, 2, 10, Metric::Euclidean, threads).unwrap();
            assert_eq!(got, serial, "threads = {threads}");
        }
        // Errors propagate through the threaded path too.
        assert!(ramaswamy_top_n_threaded(&ds, 0, 3, Metric::Euclidean, 4).is_err());
    }

    #[test]
    fn larger_k_is_more_robust_to_pairs() {
        // Two far points close to each other: with k = 1 they shield each
        // other (tiny 1-NN distance); with k = 2 they are exposed.
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        rows.push(vec![100.0, 100.0]);
        rows.push(vec![100.1, 100.0]);
        let ds = Dataset::from_rows(rows).unwrap();
        let with_k1 = ramaswamy_top_n(&ds, 1, 2, Metric::Euclidean).unwrap();
        // k = 1: the pair's scores are 0.1 — they are NOT both on top.
        assert!(with_k1.iter().all(|o| o.score < 1.0));
        let with_k2 = ramaswamy_top_n(&ds, 2, 2, Metric::Euclidean).unwrap();
        let rows2: Vec<usize> = with_k2.iter().map(|o| o.row).collect();
        assert!(rows2.contains(&20) && rows2.contains(&21));
    }
}
