//! Knorr–Ng distance-based outliers (VLDB 1998, the paper's reference \[22\]).
//!
//! *"A point p in a data set is an outlier with respect to the parameters k
//! and λ, if no more than k points in the data set are at a distance λ or
//! less from p."*
//!
//! The paper's §1 critique of this definition — that λ is nearly impossible
//! to pick in high dimension because all pairwise distances crowd into a
//! thin shell — is demonstrated quantitatively by `repro figure1` using
//! [`lambda_sensitivity`].

use crate::distance::Metric;
use crate::BaselineError;
use hdoutlier_data::Dataset;

/// Rows that are DB(k, λ) outliers: at most `k` *other* points within
/// distance `λ`.
///
/// Naive `O(n²·d)` with early exit once a point has `k + 1` λ-neighbors.
pub fn knorr_ng_outliers(
    dataset: &Dataset,
    k: usize,
    lambda: f64,
    metric: Metric,
) -> Result<Vec<usize>, BaselineError> {
    crate::ensure_complete(dataset)?;
    if lambda.is_nan() || lambda <= 0.0 {
        return Err(BaselineError::BadParams(format!(
            "lambda must be positive, got {lambda}"
        )));
    }
    let n = dataset.n_rows();
    let mut outliers = Vec::new();
    for p in 0..n {
        let mut within = 0usize;
        let mut is_outlier = true;
        for q in 0..n {
            if q == p {
                continue;
            }
            if metric.distance(dataset.row(p), dataset.row(q)) <= lambda {
                within += 1;
                if within > k {
                    is_outlier = false;
                    break;
                }
            }
        }
        if is_outlier {
            outliers.push(p);
        }
    }
    Ok(outliers)
}

/// Suggests λ as a quantile of a sample of pairwise distances — the kind of
/// tuning a practitioner must resort to, since the definition gives no
/// guidance. Deterministic: samples pairs on a fixed stride.
pub fn suggest_lambda(
    dataset: &Dataset,
    quantile: f64,
    metric: Metric,
) -> Result<f64, BaselineError> {
    crate::ensure_complete(dataset)?;
    if !(0.0..=1.0).contains(&quantile) {
        return Err(BaselineError::BadParams(format!(
            "quantile must be in [0, 1], got {quantile}"
        )));
    }
    let n = dataset.n_rows();
    if n < 2 {
        return Err(BaselineError::BadParams(
            "need at least two rows to measure distances".into(),
        ));
    }
    // Up to ~10k sampled pairs on a deterministic stride.
    let total_pairs = n * (n - 1) / 2;
    let stride = (total_pairs / 10_000).max(1);
    let mut distances = Vec::new();
    let mut counter = 0usize;
    for p in 0..n {
        for q in (p + 1)..n {
            if counter.is_multiple_of(stride) {
                distances.push(metric.distance(dataset.row(p), dataset.row(q)));
            }
            counter += 1;
        }
    }
    hdoutlier_stats::summary::quantile(&distances, quantile)
        .ok_or_else(|| BaselineError::BadParams("no distances sampled".into()))
}

/// How the DB(k, λ) outlier count responds to λ — the λ-sensitivity curve
/// behind the paper's "all points are outliers / no point is an outlier"
/// observation (§1). Returns `(λ, outlier_count)` pairs for λ swept across
/// the given quantiles of the pairwise-distance distribution.
pub fn lambda_sensitivity(
    dataset: &Dataset,
    k: usize,
    quantiles: &[f64],
    metric: Metric,
) -> Result<Vec<(f64, usize)>, BaselineError> {
    quantiles
        .iter()
        .map(|&q| {
            let lambda = suggest_lambda(dataset, q, metric)?;
            let outliers = knorr_ng_outliers(dataset, k, lambda, metric)?;
            Ok((lambda, outliers.len()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::generators::uniform;
    use hdoutlier_data::Dataset;

    fn cluster_with_far_point() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1])
            .collect();
        rows.push(vec![50.0, 50.0]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn isolates_the_far_point() {
        let ds = cluster_with_far_point();
        // λ = 5 covers the whole cluster; only the far point has ≤ 2
        // λ-neighbors.
        let out = knorr_ng_outliers(&ds, 2, 5.0, Metric::Euclidean).unwrap();
        assert_eq!(out, vec![20]);
    }

    #[test]
    fn lambda_extremes() {
        let ds = cluster_with_far_point();
        // Tiny λ: everyone is an outlier.
        let out = knorr_ng_outliers(&ds, 0, 1e-9, Metric::Euclidean).unwrap();
        assert_eq!(out.len(), 21);
        // Huge λ: no one is (with k = 2, everyone has > 2 neighbors).
        let out = knorr_ng_outliers(&ds, 2, 1e9, Metric::Euclidean).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn k_equals_n_makes_everyone_an_outlier() {
        let ds = cluster_with_far_point();
        let out = knorr_ng_outliers(&ds, 21, 1e9, Metric::Euclidean).unwrap();
        assert_eq!(out.len(), 21);
    }

    #[test]
    fn parameter_validation() {
        let ds = cluster_with_far_point();
        assert!(knorr_ng_outliers(&ds, 1, 0.0, Metric::Euclidean).is_err());
        assert!(knorr_ng_outliers(&ds, 1, -1.0, Metric::Euclidean).is_err());
        assert!(suggest_lambda(&ds, 1.5, Metric::Euclidean).is_err());
        let missing = Dataset::from_rows(vec![vec![f64::NAN], vec![1.0]]).unwrap();
        assert_eq!(
            knorr_ng_outliers(&missing, 1, 1.0, Metric::Euclidean),
            Err(BaselineError::MissingValues)
        );
        let single = Dataset::from_rows(vec![vec![1.0]]).unwrap();
        assert!(suggest_lambda(&single, 0.5, Metric::Euclidean).is_err());
    }

    #[test]
    fn suggested_lambda_is_a_plausible_distance() {
        let ds = uniform(200, 3, 5);
        let lo = suggest_lambda(&ds, 0.05, Metric::Euclidean).unwrap();
        let hi = suggest_lambda(&ds, 0.95, Metric::Euclidean).unwrap();
        assert!(lo > 0.0);
        assert!(lo < hi);
        assert!(hi < 3f64.sqrt() + 1e-9); // diameter of the unit cube
    }

    #[test]
    fn sensitivity_curve_is_monotone_decreasing() {
        let ds = uniform(150, 2, 6);
        let curve =
            lambda_sensitivity(&ds, 3, &[0.01, 0.1, 0.3, 0.6, 0.9], Metric::Euclidean).unwrap();
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0, "lambdas ascend");
            assert!(w[0].1 >= w[1].1, "outlier count must not grow with λ");
        }
    }

    #[test]
    fn high_dimensional_lambda_window_is_narrow() {
        // The paper's §1 point: in high dimension the λ window between
        // "all outliers" and "no outliers" collapses. Measure the ratio of
        // the 5th to the 95th percentile distance: it approaches 1 as d
        // grows.
        let narrow = |d: usize| {
            let ds = uniform(200, d, 7);
            let lo = suggest_lambda(&ds, 0.05, Metric::Euclidean).unwrap();
            let hi = suggest_lambda(&ds, 0.95, Metric::Euclidean).unwrap();
            lo / hi
        };
        let low_d = narrow(2);
        let high_d = narrow(100);
        assert!(
            high_d > low_d + 0.2,
            "distance concentration: d=2 ratio {low_d}, d=100 ratio {high_d}"
        );
        assert!(high_d > 0.8, "at d=100 the shell is thin: {high_d}");
    }
}
