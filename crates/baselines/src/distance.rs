//! Minkowski distance metrics.
//!
//! The paper's critique of full-dimensional L_p norms (§1) is exactly about
//! these functions: in high dimension their values concentrate and stop
//! discriminating. They are implemented here because the baselines need
//! them — and the benchmark harness uses them to *demonstrate* the
//! concentration.

/// Which L_p norm the baselines use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Metric {
    /// L1 (Manhattan).
    Manhattan,
    /// L2 (Euclidean) — the default everywhere in the paper's comparators.
    #[default]
    Euclidean,
    /// L_p for arbitrary `p >= 1`.
    Minkowski(f64),
    /// L_∞ (Chebyshev).
    Chebyshev,
}

impl Metric {
    /// Distance between two equal-length vectors.
    ///
    /// # Panics
    /// Panics (debug) on length mismatch; NaNs propagate.
    #[inline]
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "vector length mismatch");
        match self {
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Euclidean => self.squared(a, b).sqrt(),
            Metric::Minkowski(p) => {
                debug_assert!(*p >= 1.0, "Minkowski order must be >= 1");
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y).abs().powf(*p))
                    .sum::<f64>()
                    .powf(1.0 / p)
            }
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    /// Squared Euclidean distance (cheaper for comparisons); for other
    /// metrics this is `distance²`.
    #[inline]
    pub fn squared(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum(),
            other => {
                let d = other.distance(a, b);
                d * d
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean() {
        // sqrt(9 + 16 + 0) = 5.
        assert!((Metric::Euclidean.distance(&A, &B) - 5.0).abs() < 1e-12);
        assert!((Metric::Euclidean.squared(&A, &B) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan() {
        assert!((Metric::Manhattan.distance(&A, &B) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev() {
        assert!((Metric::Chebyshev.distance(&A, &B) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_interpolates() {
        // p = 1 matches Manhattan, p = 2 matches Euclidean.
        assert!(
            (Metric::Minkowski(1.0).distance(&A, &B) - Metric::Manhattan.distance(&A, &B)).abs()
                < 1e-12
        );
        assert!(
            (Metric::Minkowski(2.0).distance(&A, &B) - Metric::Euclidean.distance(&A, &B)).abs()
                < 1e-12
        );
        // Large p approaches Chebyshev.
        let p100 = Metric::Minkowski(100.0).distance(&A, &B);
        assert!((p100 - 4.0).abs() < 0.1, "{p100}");
    }

    #[test]
    fn identity_and_symmetry() {
        for m in [
            Metric::Manhattan,
            Metric::Euclidean,
            Metric::Minkowski(3.0),
            Metric::Chebyshev,
        ] {
            assert_eq!(m.distance(&A, &A), 0.0);
            assert!((m.distance(&A, &B) - m.distance(&B, &A)).abs() < 1e-12);
            assert!(m.distance(&A, &B) > 0.0);
        }
    }

    #[test]
    fn triangle_inequality_euclidean() {
        let c = [0.0, -1.0, 7.0];
        let ab = Metric::Euclidean.distance(&A, &B);
        let bc = Metric::Euclidean.distance(&B, &c);
        let ac = Metric::Euclidean.distance(&A, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
