//! k-nearest-neighbor search: a brute-force scanner and a vantage-point
//! tree.
//!
//! The VP-tree (Yianilos 1993) gives `O(log n)`-ish queries in low
//! dimension; in high dimension it degrades toward a full scan — the very
//! dimensionality-curse the paper is about, and the index ablation bench
//! measures exactly that degradation.

use crate::distance::Metric;
use crate::BaselineError;
use hdoutlier_data::Dataset;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A neighbor: `(distance, row)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Distance from the query point.
    pub distance: f64,
    /// Row index of the neighbor.
    pub row: usize,
}

impl Eq for Neighbor {}
impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on distance; ties by row for determinism.
        self.distance
            .partial_cmp(&other.distance)
            .expect("distances are finite")
            .then(self.row.cmp(&other.row))
    }
}

/// Brute-force k-nearest neighbors of row `query` (excluding itself).
///
/// Returns ascending by distance; `k` is clamped to `n − 1`.
pub fn knn_brute(dataset: &Dataset, query: usize, k: usize, metric: Metric) -> Vec<Neighbor> {
    let q = dataset.row(query);
    let k = k.min(dataset.n_rows().saturating_sub(1));
    let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
    for row in 0..dataset.n_rows() {
        if row == query {
            continue;
        }
        let distance = metric.distance(q, dataset.row(row));
        if heap.len() < k {
            heap.push(Neighbor { distance, row });
        } else if let Some(top) = heap.peek() {
            if distance < top.distance {
                heap.pop();
                heap.push(Neighbor { distance, row });
            }
        }
    }
    let mut out: Vec<Neighbor> = heap.into_vec();
    out.sort();
    out
}

/// Distance from each row to its k-th nearest neighbor — the Ramaswamy
/// outlier score. `O(n²·d)`.
pub fn kth_nn_distances(
    dataset: &Dataset,
    k: usize,
    metric: Metric,
) -> Result<Vec<f64>, BaselineError> {
    kth_nn_distances_threaded(dataset, k, metric, 1)
}

/// [`kth_nn_distances`] fanned out over pool workers. Each row's score is an
/// independent scan, and the pool's ordered reduction keeps the output in
/// row order, so the result is bit-identical at any thread count.
pub fn kth_nn_distances_threaded(
    dataset: &Dataset,
    k: usize,
    metric: Metric,
    threads: usize,
) -> Result<Vec<f64>, BaselineError> {
    crate::ensure_complete(dataset)?;
    if k == 0 {
        return Err(BaselineError::BadParams("k must be >= 1".into()));
    }
    if k >= dataset.n_rows() {
        return Err(BaselineError::BadParams(format!(
            "k = {k} must be < n = {}",
            dataset.n_rows()
        )));
    }
    let kth = |row: usize| {
        knn_brute(dataset, row, k, metric)
            .last()
            .expect("k >= 1 and n > k")
            .distance
    };
    if threads > 1 {
        let rows: Vec<usize> = (0..dataset.n_rows()).collect();
        Ok(hdoutlier_pool::map(threads, &rows, |_, &row| kth(row)))
    } else {
        Ok((0..dataset.n_rows()).map(kth).collect())
    }
}

/// A vantage-point tree over the rows of a dataset.
pub struct VpTree<'a> {
    dataset: &'a Dataset,
    metric: Metric,
    nodes: Vec<Node>,
    root: Option<usize>,
}

struct Node {
    row: usize,
    /// Median distance: the inside child holds points with `d <= radius`.
    radius: f64,
    inside: Option<usize>,
    outside: Option<usize>,
}

impl<'a> VpTree<'a> {
    /// Builds the tree. Deterministic: the vantage point of each subtree is
    /// its first element (the dataset order is the tiebreak everywhere).
    ///
    /// # Errors
    /// [`BaselineError::MissingValues`] if the dataset is incomplete.
    pub fn build(dataset: &'a Dataset, metric: Metric) -> Result<Self, BaselineError> {
        crate::ensure_complete(dataset)?;
        let mut tree = Self {
            dataset,
            metric,
            nodes: Vec::with_capacity(dataset.n_rows()),
            root: None,
        };
        let mut rows: Vec<usize> = (0..dataset.n_rows()).collect();
        tree.root = tree.build_node(&mut rows);
        Ok(tree)
    }

    fn build_node(&mut self, rows: &mut [usize]) -> Option<usize> {
        let (&vantage, rest) = rows.split_first()?;
        if rest.is_empty() {
            let id = self.nodes.len();
            self.nodes.push(Node {
                row: vantage,
                radius: 0.0,
                inside: None,
                outside: None,
            });
            return Some(id);
        }
        let v = self.dataset.row(vantage);
        let mut with_d: Vec<(f64, usize)> = rest
            .iter()
            .map(|&r| (self.metric.distance(v, self.dataset.row(r)), r))
            .collect();
        with_d.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let mid = with_d.len() / 2;
        let radius = with_d[mid].0;
        // inside: d <= radius (first mid+1 after sort includes ties at the
        // median); outside: the rest.
        let split = with_d.partition_point(|&(d, _)| d <= radius);
        let mut inside_rows: Vec<usize> = with_d[..split].iter().map(|&(_, r)| r).collect();
        let mut outside_rows: Vec<usize> = with_d[split..].iter().map(|&(_, r)| r).collect();
        let id = self.nodes.len();
        self.nodes.push(Node {
            row: vantage,
            radius,
            inside: None,
            outside: None,
        });
        let inside = self.build_node(&mut inside_rows);
        let outside = self.build_node(&mut outside_rows);
        self.nodes[id].inside = inside;
        self.nodes[id].outside = outside;
        Some(id)
    }

    /// k nearest neighbors of an arbitrary query vector (rows equal to the
    /// query are *not* excluded — exclude by row with
    /// [`VpTree::knn_of_row`]).
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        self.search(query, k, None)
    }

    /// k nearest neighbors of dataset row `row`, excluding itself.
    pub fn knn_of_row(&self, row: usize, k: usize) -> Vec<Neighbor> {
        self.search(self.dataset.row(row), k, Some(row))
    }

    fn search(&self, query: &[f64], k: usize, exclude: Option<usize>) -> Vec<Neighbor> {
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
        if k > 0 {
            self.search_node(self.root, query, k, exclude, &mut heap);
        }
        let mut out: Vec<Neighbor> = heap.into_vec();
        out.sort();
        out
    }

    fn search_node(
        &self,
        node: Option<usize>,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
        heap: &mut BinaryHeap<Neighbor>,
    ) {
        let Some(id) = node else { return };
        let n = &self.nodes[id];
        let d = self.metric.distance(query, self.dataset.row(n.row));
        if exclude != Some(n.row) {
            if heap.len() < k {
                heap.push(Neighbor {
                    distance: d,
                    row: n.row,
                });
            } else if let Some(top) = heap.peek() {
                if d < top.distance || (d == top.distance && n.row < top.row) {
                    heap.pop();
                    heap.push(Neighbor {
                        distance: d,
                        row: n.row,
                    });
                }
            }
        }
        let (first, second) = if d <= n.radius {
            (n.inside, n.outside)
        } else {
            (n.outside, n.inside)
        };
        self.search_node(first, query, k, exclude, heap);
        // Pruning bound after the nearer subtree tightened the heap: the
        // k-th best distance so far (∞ until the heap fills). The farther
        // side can hold closer points only if the query ball of radius tau
        // crosses the splitting shell.
        let tau = if heap.len() < k {
            f64::INFINITY
        } else {
            heap.peek().expect("heap full").distance
        };
        if (d - n.radius).abs() <= tau {
            self.search_node(second, query, k, exclude, heap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::generators::uniform;
    use hdoutlier_data::Dataset;

    #[test]
    fn brute_knn_simple_geometry() {
        let ds = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![5.0, 5.0],
        ])
        .unwrap();
        let nn = knn_brute(&ds, 0, 2, Metric::Euclidean);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].row, 1);
        assert!((nn[0].distance - 1.0).abs() < 1e-12);
        assert_eq!(nn[1].row, 2);
        assert!((nn[1].distance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn brute_knn_clamps_k() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let nn = knn_brute(&ds, 0, 10, Metric::Euclidean);
        assert_eq!(nn.len(), 1);
    }

    #[test]
    fn kth_nn_distances_validation() {
        let ds = uniform(10, 2, 1);
        assert!(kth_nn_distances(&ds, 0, Metric::Euclidean).is_err());
        assert!(kth_nn_distances(&ds, 10, Metric::Euclidean).is_err());
        assert_eq!(
            kth_nn_distances(&ds, 3, Metric::Euclidean).unwrap().len(),
            10
        );
        let missing = Dataset::from_rows(vec![vec![1.0], vec![f64::NAN]]).unwrap();
        assert_eq!(
            kth_nn_distances(&missing, 1, Metric::Euclidean),
            Err(BaselineError::MissingValues)
        );
    }

    #[test]
    fn vp_tree_matches_brute_force() {
        let ds = uniform(300, 4, 17);
        let tree = VpTree::build(&ds, Metric::Euclidean).unwrap();
        for query in [0usize, 17, 123, 299] {
            for k in [1usize, 3, 10] {
                let brute = knn_brute(&ds, query, k, Metric::Euclidean);
                let vp = tree.knn_of_row(query, k);
                assert_eq!(brute.len(), vp.len());
                for (b, v) in brute.iter().zip(&vp) {
                    assert!(
                        (b.distance - v.distance).abs() < 1e-12,
                        "query {query} k {k}: {b:?} vs {v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn vp_tree_arbitrary_query_vector() {
        let ds =
            Dataset::from_rows(vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]).unwrap();
        let tree = VpTree::build(&ds, Metric::Euclidean).unwrap();
        let nn = tree.knn(&[1.0, 1.0], 1);
        assert_eq!(nn[0].row, 0);
        // k = 0 returns nothing.
        assert!(tree.knn(&[1.0, 1.0], 0).is_empty());
    }

    #[test]
    fn vp_tree_rejects_missing() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![f64::NAN]]).unwrap();
        assert!(matches!(
            VpTree::build(&ds, Metric::Euclidean),
            Err(BaselineError::MissingValues)
        ));
    }

    #[test]
    fn vp_tree_single_point() {
        let ds = Dataset::from_rows(vec![vec![3.0, 4.0]]).unwrap();
        let tree = VpTree::build(&ds, Metric::Euclidean).unwrap();
        assert_eq!(tree.knn(&[0.0, 0.0], 1)[0].row, 0);
        assert!(tree.knn_of_row(0, 1).is_empty());
    }

    #[test]
    fn neighbor_ordering_is_total() {
        let a = Neighbor {
            distance: 1.0,
            row: 2,
        };
        let b = Neighbor {
            distance: 1.0,
            row: 3,
        };
        assert!(a < b);
        let c = Neighbor {
            distance: 0.5,
            row: 9,
        };
        assert!(c < a);
    }
}
