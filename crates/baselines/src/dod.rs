//! Distance-of-Distances (Lee & Jeon, arXiv:2511.02199) — a
//! distance-profile score used by the scenario packs as a cross-method
//! referee.
//!
//! Each point's *distance profile* is its sorted vector of distances to
//! every other point. Inliers of a common-generating-process dataset share
//! nearly the same profile — however high the dimension — while any point
//! whose relationship to the bulk differs (an isolated point, but also a
//! *systemically shifted* one that stays locally dense) drags its whole
//! profile away from the consensus. The DOD score is the root-mean-square
//! deviation of a point's profile from the pointwise median profile.
//!
//! The draw as a referee: DOD looks at the *shape of all distances*, not a
//! local neighborhood, so it catches global structural drift that both kNN
//! and the paper's subspace sparsity coefficient can miss — and misses the
//! locally-contrarian planted outliers that the subspace detector exists to
//! find. The scenario packs use it exactly for that complementary verdict.

use crate::distance::Metric;
use crate::BaselineError;
use hdoutlier_data::Dataset;

/// DOD scores for every row, in row order: RMS deviation of each row's
/// sorted distance profile from the pointwise median profile. `O(n²·d +
/// n²·log n)` brute force.
///
/// ```
/// use hdoutlier_baselines::{dod_scores, Metric};
/// use hdoutlier_data::Dataset;
/// let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 5) as f64, (i / 5) as f64]).collect();
/// rows.push(vec![100.0, 100.0]);
/// let ds = Dataset::from_rows(rows).unwrap();
/// let scores = dod_scores(&ds, Metric::Euclidean).unwrap();
/// let top = (0..scores.len()).max_by(|&a, &b| scores[a].total_cmp(&scores[b])).unwrap();
/// assert_eq!(top, 20);
/// ```
pub fn dod_scores(dataset: &Dataset, metric: Metric) -> Result<Vec<f64>, BaselineError> {
    dod_scores_threaded(dataset, metric, 1)
}

/// [`dod_scores`] with the per-row profile scans fanned out over pool
/// workers. Profiles come back in row order and the median/deviation passes
/// are sequential, so the output is bit-identical at any thread count.
pub fn dod_scores_threaded(
    dataset: &Dataset,
    metric: Metric,
    threads: usize,
) -> Result<Vec<f64>, BaselineError> {
    crate::ensure_complete(dataset)?;
    let n = dataset.n_rows();
    if n < 3 {
        return Err(BaselineError::BadParams(format!(
            "need at least 3 rows for a median profile, got {n}"
        )));
    }
    let profile = |i: usize| -> Vec<f64> {
        let q = dataset.row(i);
        let mut d: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| metric.distance(q, dataset.row(j)))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        d
    };
    let profiles: Vec<Vec<f64>> = if threads > 1 {
        let rows: Vec<usize> = (0..n).collect();
        hdoutlier_pool::map(threads, &rows, |_, &i| profile(i))
    } else {
        (0..n).map(profile).collect()
    };

    // Pointwise median profile: the consensus "how far is my k-th closest
    // point" curve. Lower median of the sorted column for even n keeps the
    // value an actual observed distance (and the pass deterministic).
    let len = n - 1;
    let mut median = vec![0.0f64; len];
    let mut column = vec![0.0f64; n];
    for (pos, m) in median.iter_mut().enumerate() {
        for (i, p) in profiles.iter().enumerate() {
            column[i] = p[pos];
        }
        column.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        *m = column[(n - 1) / 2];
    }

    Ok(profiles
        .iter()
        .map(|p| {
            let sq: f64 = p.iter().zip(&median).map(|(a, m)| (a - m) * (a - m)).sum();
            (sq / len as f64).sqrt()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::Dataset;

    fn cluster_with_far_point() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        rows.push(vec![100.0, 100.0]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn far_point_scores_highest() {
        let ds = cluster_with_far_point();
        let scores = dod_scores(&ds, Metric::Euclidean).unwrap();
        let top = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(top, 20);
        assert!(scores[20] > 50.0);
        assert!(scores.iter().take(20).all(|&s| s < 15.0));
    }

    #[test]
    fn shielded_pair_is_still_exposed() {
        // Two far points next to each other fool 1-NN distance (they shield
        // each other) but not the full distance profile: all their *other*
        // distances are huge.
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        rows.push(vec![100.0, 100.0]);
        rows.push(vec![100.1, 100.0]);
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = dod_scores(&ds, Metric::Euclidean).unwrap();
        let mut ranked: Vec<usize> = (0..scores.len()).collect();
        ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        assert!(ranked[..2].contains(&20) && ranked[..2].contains(&21));
    }

    #[test]
    fn uniform_grid_scores_are_small_and_nonnegative() {
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = dod_scores(&ds, Metric::Euclidean).unwrap();
        for &s in &scores {
            assert!((0.0..3.0).contains(&s), "score {s} unexpectedly large");
        }
    }

    #[test]
    fn parameter_errors_propagate() {
        let two = Dataset::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        assert!(dod_scores(&two, Metric::Euclidean).is_err());
    }

    #[test]
    fn threaded_scores_are_identical_to_serial() {
        let ds = cluster_with_far_point();
        let serial = dod_scores(&ds, Metric::Euclidean).unwrap();
        for threads in [2, 4, 8] {
            let got = dod_scores_threaded(&ds, Metric::Euclidean, threads).unwrap();
            assert_eq!(got, serial, "threads = {threads}");
        }
    }
}
