//! Uniform sampling: full-domain samples ([`Standard`]) and range samples
//! ([`SampleRange`], backing `Rng::gen_range`).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types with a canonical "uniform over the whole domain" sample.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // The top bit: xoshiro's upper bits are the best mixed.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, n)` via Lemire's widening-multiply method;
/// unbiased, with rare rejection only when `2^64 % n != 0` bites.
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = (rng.next_u64() as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges `Rng::gen_range` accepts: `lo..hi` and `lo..=hi` over the
/// workspace's numeric types.
pub trait SampleRange<T> {
    /// Draws one sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng, SeedableRng, Xoshiro256PlusPlus};

    #[test]
    fn signed_ranges_straddle_zero_correctly() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..1_000 {
            let v: i32 = rng.gen_range(-3..3);
            assert!((-3..3).contains(&v));
            saw_neg |= v < 0;
            saw_pos |= v > 0;
        }
        assert!(saw_neg && saw_pos);
    }

    #[test]
    fn singleton_inclusive_range_is_constant() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(7..=7u32), 7);
        }
    }

    #[test]
    fn full_u64_domain_does_not_overflow() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn uniform_below_is_unbiased_at_small_n() {
        // n = 3 exercises the rejection path (2^64 mod 3 != 0).
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(14);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
