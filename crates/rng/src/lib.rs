#![warn(missing_docs)]

//! Deterministic pseudo-randomness for the workspace, with no external
//! dependencies.
//!
//! The build environment is hermetic (no crates.io), so the workspace cannot
//! depend on `rand`. This crate provides the small slice of the `rand 0.8`
//! API the codebase actually uses — [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`] — over two classic std-only generators:
//!
//! - [`SplitMix64`]: a 64-bit state mixer, used to expand seeds;
//! - [`Xoshiro256PlusPlus`]: the general-purpose generator behind
//!   [`rngs::StdRng`].
//!
//! Streams are stable across platforms and releases of this crate: tests
//! and experiments that fix a seed are reproducible. They are *not* the
//! same streams `rand`'s `StdRng` (ChaCha12) produced, so seed-pinned
//! expectations from before the switch do not carry over.

pub mod seq;

mod uniform;
mod xoshiro;

pub use uniform::{SampleRange, Standard};
pub use xoshiro::{SplitMix64, Xoshiro256PlusPlus};

/// The raw generator interface: a source of uniform `u64` words.
///
/// Object-safe; everything else is provided on top of it by [`Rng`].
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits (upper half of [`RngCore::next_u64`], which
    /// are the better-mixed bits of xoshiro-family outputs).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, mirroring the `rand::Rng` surface the
/// workspace uses.
pub trait Rng: RngCore {
    /// A uniform sample of `T`: floats in `[0, 1)`, `bool` as a fair coin,
    /// integers over their full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator (xoshiro256++ behind SplitMix64
    /// seed expansion). Alias rather than newtype so the generator's own
    /// API stays reachable.
    pub type StdRng = super::Xoshiro256PlusPlus;

    /// Small-footprint generator; the same algorithm suffices here.
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "{same} collisions in 64 draws");
    }

    #[test]
    fn unit_floats_are_in_range_and_vary() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor spread: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        let expect = draws / 8;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = rngs::StdRng::seed_from_u64(6);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = rngs::StdRng::seed_from_u64(8);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
        let rare = (0..10_000).filter(|_| rng.gen_bool(0.01)).count();
        assert!(rare < 300, "{rare}");
    }

    #[test]
    fn works_through_mut_references() {
        // Generic helpers take `&mut R: Rng`; make sure reborrowing works.
        fn draw<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
