//! Sequence helpers, mirroring `rand::seq`.

use crate::uniform::uniform_below;
use crate::RngCore;

/// Randomized slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "100! odds say shuffled");
    }

    #[test]
    fn shuffle_mixes_all_positions() {
        // Every element should land away from its start at least once over
        // a few shuffles.
        let mut rng = StdRng::seed_from_u64(22);
        let mut moved = [false; 20];
        for _ in 0..10 {
            let mut v: Vec<usize> = (0..20).collect();
            v.shuffle(&mut rng);
            for (i, &x) in v.iter().enumerate() {
                if i != x {
                    moved[x] = true;
                }
            }
        }
        assert!(moved.iter().all(|&m| m));
    }

    #[test]
    fn choose_handles_empty_and_covers() {
        let mut rng = StdRng::seed_from_u64(23);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
