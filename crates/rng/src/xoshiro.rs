//! The generators: SplitMix64 (seed expansion) and xoshiro256++ (general
//! purpose). Both are public-domain algorithms by Blackman & Vigna; the
//! implementations here follow the reference C code.

use crate::{RngCore, SeedableRng};

/// SplitMix64: a 64-bit mixer with a simple additive state.
///
/// Equidistributed over its full 2^64 period, and the recommended way to
/// expand one 64-bit seed into larger generator states — adjacent seeds
/// produce uncorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a mixer starting at `state`.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

/// xoshiro256++ 1.0: 256 bits of state, period 2^256 − 1, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from raw state words.
    ///
    /// # Panics
    /// Panics if all words are zero (the one inadmissible state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state");
        Self { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion per the xoshiro authors' guidance; it can
        // never produce the all-zero state.
        let mut mix = SplitMix64::new(seed);
        Self {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the published C code.
        let mut mix = SplitMix64::new(1234567);
        assert_eq!(mix.next_u64(), 6457827717110365317);
        assert_eq!(mix.next_u64(), 3203168211198807973);
        assert_eq!(mix.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_matches_reference_vector() {
        // First outputs of xoshiro256++ with state [1, 2, 3, 4], from the
        // reference implementation.
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_rejected() {
        Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn seeding_avoids_degenerate_state() {
        // Even seed 0 must yield a working generator.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}
