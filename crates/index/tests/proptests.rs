//! Property-based tests: the bitmap counter must agree with the naive scan
//! on arbitrary data, including missing values, and bitmap algebra must
//! match a reference set implementation.

use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::Dataset;
use hdoutlier_index::{Bitmap, BitmapCounter, CachedCounter, Cube, CubeCounter, NaiveCounter};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn dataset_with_missing() -> impl Strategy<Value = Dataset> {
    (2usize..60, 2usize..6).prop_flat_map(|(n, d)| {
        proptest::collection::vec(
            prop_oneof![
                8 => (-100f64..100.0).prop_map(Some),
                1 => Just(None),
            ],
            n * d,
        )
        .prop_map(move |vals| {
            let values: Vec<f64> = vals.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect();
            Dataset::new(values, n, d).unwrap()
        })
    })
}

fn arbitrary_cube(n_dims: usize, phi: u32) -> impl Strategy<Value = Cube> {
    proptest::sample::subsequence((0..n_dims as u32).collect::<Vec<_>>(), 1..=n_dims.min(4))
        .prop_flat_map(move |dims| {
            let k = dims.len();
            proptest::collection::vec(0..phi as u16, k).prop_map(move |ranges| {
                Cube::new(dims.iter().copied().zip(ranges.iter().copied())).unwrap()
            })
        })
}

proptest! {
    #[test]
    fn bitmap_counter_matches_naive(
        ds in dataset_with_missing(),
        phi in 1u32..8,
        seed_cube in any::<u64>(),
    ) {
        let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiDepth).unwrap();
        let bitmap = BitmapCounter::new(&disc);
        let naive = NaiveCounter::new(&disc);
        // Derive a handful of cubes deterministically from seed_cube.
        let mut s = seed_cube;
        for _ in 0..10 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let d0 = (s >> 8) as usize % ds.n_dims();
            let r0 = ((s >> 24) as u32 % phi) as u16;
            let d1 = (s >> 40) as usize % ds.n_dims();
            let r1 = ((s >> 52) as u32 % phi) as u16;
            let pairs = if d0 == d1 {
                vec![(d0 as u32, r0)]
            } else {
                vec![(d0 as u32, r0), (d1 as u32, r1)]
            };
            let cube = Cube::new(pairs).unwrap();
            prop_assert_eq!(bitmap.count(&cube), naive.count(&cube));
            prop_assert_eq!(bitmap.rows(&cube), naive.rows(&cube));
        }
    }

    #[test]
    fn cached_counter_is_transparent(
        ds in dataset_with_missing(),
        phi in 1u32..6,
    ) {
        let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiDepth).unwrap();
        let naive = NaiveCounter::new(&disc);
        let cached = CachedCounter::new(BitmapCounter::new(&disc));
        let cube = Cube::new([(0, 0)]).unwrap();
        for _ in 0..3 {
            prop_assert_eq!(cached.count(&cube), naive.count(&cube));
        }
    }

    #[test]
    fn cube_strategy_products_are_valid(
        cube in arbitrary_cube(5, 4),
    ) {
        prop_assert!(cube.k() >= 1);
        let dims = cube.dims();
        for w in dims.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for (_, r) in cube.pairs() {
            prop_assert!(r < 4);
        }
    }

    #[test]
    fn bitmap_matches_btreeset(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0usize..128, 0..40),
            1..4,
        ),
    ) {
        let maps: Vec<Bitmap> = sets
            .iter()
            .map(|s| {
                let mut b = Bitmap::new(128);
                for &i in s {
                    b.set(i);
                }
                b
            })
            .collect();
        let refs: Vec<&Bitmap> = maps.iter().collect();
        let want: BTreeSet<usize> = sets
            .iter()
            .skip(1)
            .fold(sets[0].clone(), |acc, s| acc.intersection(s).copied().collect());
        prop_assert_eq!(Bitmap::intersection_count(&refs), want.len());
        prop_assert_eq!(
            Bitmap::intersection_members(&refs),
            want.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bitmap_iter_ones_round_trip(bits in proptest::collection::btree_set(0usize..200, 0..50)) {
        let mut b = Bitmap::new(200);
        for &i in &bits {
            b.set(i);
        }
        prop_assert_eq!(b.iter_ones().collect::<Vec<_>>(), bits.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(b.count(), bits.len());
    }

    #[test]
    fn projection_string_round_trip_shape(cube in arbitrary_cube(6, 9)) {
        let s = cube.to_projection_string(6);
        prop_assert_eq!(s.chars().count(), 6);
        let stars = s.chars().filter(|&c| c == '*').count();
        prop_assert_eq!(stars, 6 - cube.k());
    }
}
