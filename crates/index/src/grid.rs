//! Posting-list index over a discretized dataset.
//!
//! One bitmap per `(dimension, range)` pair, each marking the rows whose
//! value on that dimension falls in that range. Cube occupancy is then a
//! k-way bitmap intersection — `O(k · N / 64)` per cube and cache-friendly,
//! which is what makes brute-force enumeration feasible at all for the
//! low-dimensional Table-1 datasets and keeps GA fitness evaluations cheap.
//!
//! Missing values never appear in any posting, so a record with a missing
//! attribute simply cannot cover cubes constraining that attribute — the
//! semantics §1.2 of the paper requires.

use crate::bitmap::Bitmap;
use crate::cube::Cube;
use hdoutlier_data::discretize::{Discretized, MISSING_CELL};

/// An inverted index from `(dimension, range)` to the set of matching rows.
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// `postings[dim * phi + range]`.
    postings: Vec<Bitmap>,
    n_rows: usize,
    n_dims: usize,
    phi: u32,
}

impl GridIndex {
    /// Builds the index from a discretized dataset in one pass.
    pub fn new(disc: &Discretized) -> Self {
        let n_rows = disc.n_rows();
        let n_dims = disc.n_dims();
        let phi = disc.phi();
        let mut postings = vec![Bitmap::new(n_rows); n_dims * phi as usize];
        for row in 0..n_rows {
            for dim in 0..n_dims {
                let cell = disc.cell(row, dim);
                if cell != MISSING_CELL {
                    postings[dim * phi as usize + cell as usize].set(row);
                }
            }
        }
        Self {
            postings,
            n_rows,
            n_dims,
            phi,
        }
    }

    /// Number of records indexed.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of dimensions indexed.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Grid ranges per dimension.
    pub fn phi(&self) -> u32 {
        self.phi
    }

    /// The posting bitmap of `(dim, range)`.
    ///
    /// # Panics
    /// Panics if `dim` or `range` is out of bounds.
    pub fn posting(&self, dim: u32, range: u16) -> &Bitmap {
        assert!(
            (dim as usize) < self.n_dims,
            "dimension {dim} out of bounds"
        );
        assert!((range as u32) < self.phi, "range {range} out of bounds");
        &self.postings[dim as usize * self.phi as usize + range as usize]
    }

    /// Number of records in `cube` (bitmap intersection + popcount).
    pub fn count(&self, cube: &Cube) -> usize {
        let maps: Vec<&Bitmap> = cube.pairs().map(|(d, r)| self.posting(d, r)).collect();
        Bitmap::intersection_count(&maps)
    }

    /// Row indices of the records in `cube`, ascending.
    pub fn rows(&self, cube: &Cube) -> Vec<usize> {
        let maps: Vec<&Bitmap> = cube.pairs().map(|(d, r)| self.posting(d, r)).collect();
        Bitmap::intersection_members(&maps)
    }

    /// Memory footprint of the postings in bytes (diagnostics/benches).
    pub fn memory_bytes(&self) -> usize {
        self.postings.len() * self.n_rows.div_ceil(64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::discretize::DiscretizeStrategy;
    use hdoutlier_data::Dataset;

    fn small_grid() -> (Discretized, GridIndex) {
        // 8 rows, 2 dims; values 0..8 so equi-depth with φ=4 puts rows
        // 2i, 2i+1 in range i on dim 0. Dim 1 reversed.
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (7 - i) as f64]).collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        let index = GridIndex::new(&disc);
        (disc, index)
    }

    #[test]
    fn postings_partition_rows() {
        let (_, index) = small_grid();
        for dim in 0..2u32 {
            let mut seen = [false; 8];
            for range in 0..4u16 {
                for row in index.posting(dim, range).iter_ones() {
                    assert!(!seen[row], "row {row} in two ranges");
                    seen[row] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn cube_counts() {
        let (_, index) = small_grid();
        // Dim0 range 0 = rows {0,1}; dim1 range 3 = rows with value >= 6 on
        // dim1 = rows {0,1}. Intersection = {0,1}.
        let cube = Cube::new([(0, 0), (1, 3)]).unwrap();
        assert_eq!(index.count(&cube), 2);
        assert_eq!(index.rows(&cube), vec![0, 1]);
        // Contradictory cube: dim0 range 0 ∧ dim1 range 0 = {0,1} ∧ {6,7} = ∅.
        let cube = Cube::new([(0, 0), (1, 0)]).unwrap();
        assert_eq!(index.count(&cube), 0);
        assert!(index.rows(&cube).is_empty());
    }

    #[test]
    fn single_dimension_cube() {
        let (_, index) = small_grid();
        let cube = Cube::new([(1, 2)]).unwrap();
        assert_eq!(index.count(&cube), 2);
    }

    #[test]
    fn missing_rows_are_absent_from_postings() {
        let ds = Dataset::from_rows(vec![
            vec![1.0, 1.0],
            vec![f64::NAN, 2.0],
            vec![3.0, f64::NAN],
            vec![4.0, 4.0],
        ])
        .unwrap();
        let disc = Discretized::new(&ds, 2, DiscretizeStrategy::EquiDepth).unwrap();
        let index = GridIndex::new(&disc);
        // Row 1 is missing on dim 0: it appears in no dim-0 posting.
        let in_dim0: usize = (0..2u16).map(|r| index.posting(0, r).count()).sum();
        assert_eq!(in_dim0, 3);
        // And any cube constraining dim 0 cannot contain row 1.
        for r in 0..2u16 {
            let cube = Cube::new([(0, r)]).unwrap();
            assert!(!index.rows(&cube).contains(&1));
        }
    }

    #[test]
    fn accessors_and_validation() {
        let (disc, index) = small_grid();
        assert_eq!(index.n_rows(), disc.n_rows());
        assert_eq!(index.n_dims(), 2);
        assert_eq!(index.phi(), 4);
        assert!(index.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn bad_dim_panics() {
        let (_, index) = small_grid();
        index.posting(9, 0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn bad_range_panics() {
        let (_, index) = small_grid();
        index.posting(0, 9);
    }
}
