//! The cube-counting abstraction and its implementations.
//!
//! Search algorithms only ever ask "how many records are in this cube?", so
//! they are written against [`CubeCounter`] and the backend is chosen at
//! construction:
//!
//! - [`BitmapCounter`]: the production backend over [`GridIndex`].
//! - [`NaiveCounter`]: a direct row scan over the discretized cells, kept as
//!   the independent oracle for tests and for the index ablation bench.
//! - [`CachedCounter`]: memoizes any inner counter; evolutionary search
//!   revisits the same strings constantly (especially near convergence) and
//!   the optimized crossover re-scores many sibling cubes.

use crate::cube::Cube;
use crate::grid::GridIndex;
use hdoutlier_data::discretize::{Discretized, MISSING_CELL};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Anything that can report cube occupancy for a fixed dataset.
pub trait CubeCounter {
    /// Number of records covering `cube`.
    fn count(&self, cube: &Cube) -> usize;

    /// Row indices of the records covering `cube`, ascending.
    fn rows(&self, cube: &Cube) -> Vec<usize>;

    /// Total number of records.
    fn n_rows(&self) -> usize;

    /// Number of dimensions.
    fn n_dims(&self) -> usize;

    /// Grid ranges per dimension.
    fn phi(&self) -> u32;
}

/// Bitmap-intersection backend.
#[derive(Debug, Clone)]
pub struct BitmapCounter {
    index: GridIndex,
}

impl BitmapCounter {
    /// Builds the posting index from a discretized dataset.
    pub fn new(disc: &Discretized) -> Self {
        Self {
            index: GridIndex::new(disc),
        }
    }

    /// Access to the underlying index.
    pub fn index(&self) -> &GridIndex {
        &self.index
    }
}

impl CubeCounter for BitmapCounter {
    fn count(&self, cube: &Cube) -> usize {
        self.index.count(cube)
    }

    fn rows(&self, cube: &Cube) -> Vec<usize> {
        self.index.rows(cube)
    }

    fn n_rows(&self) -> usize {
        self.index.n_rows()
    }

    fn n_dims(&self) -> usize {
        self.index.n_dims()
    }

    fn phi(&self) -> u32 {
        self.index.phi()
    }
}

/// Direct row-scan backend (the test oracle and ablation baseline).
#[derive(Debug, Clone)]
pub struct NaiveCounter {
    disc: Discretized,
}

impl NaiveCounter {
    /// Wraps a discretized dataset (clones it; the oracle is not a hot path).
    pub fn new(disc: &Discretized) -> Self {
        Self { disc: disc.clone() }
    }

    fn covers(&self, row: usize, cube: &Cube) -> bool {
        cube.pairs().all(|(d, r)| {
            let cell = self.disc.cell(row, d as usize);
            cell != MISSING_CELL && cell == r
        })
    }
}

impl CubeCounter for NaiveCounter {
    fn count(&self, cube: &Cube) -> usize {
        (0..self.disc.n_rows())
            .filter(|&row| self.covers(row, cube))
            .count()
    }

    fn rows(&self, cube: &Cube) -> Vec<usize> {
        (0..self.disc.n_rows())
            .filter(|&row| self.covers(row, cube))
            .collect()
    }

    fn n_rows(&self) -> usize {
        self.disc.n_rows()
    }

    fn n_dims(&self) -> usize {
        self.disc.n_dims()
    }

    fn phi(&self) -> u32 {
        self.disc.phi()
    }
}

/// Memoizing wrapper over any counter.
///
/// Only `count` is cached (it is the fitness hot path); `rows` delegates —
/// it is called once per reported projection, not per generation.
///
/// The memo table sits behind a `Mutex` so parallel fitness evaluation can
/// share one cache: a race between two workers on the same uncached cube
/// merely recomputes an idempotent count, it never changes an answer.
pub struct CachedCounter<C: CubeCounter> {
    inner: C,
    cache: Mutex<HashMap<Cube, usize>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<C: CubeCounter> CachedCounter<C> {
    /// Wraps a counter with an unbounded memo table.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` since construction — exposed for the cache ablation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops all memoized entries.
    pub fn clear(&self) {
        self.cache.lock().expect("memo table poisoned").clear();
    }

    /// Unwraps the inner counter.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: CubeCounter> CubeCounter for CachedCounter<C> {
    fn count(&self, cube: &Cube) -> usize {
        if let Some(&n) = self.cache.lock().expect("memo table poisoned").get(cube) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return n;
        }
        // Count outside the lock: an expensive intersection must not
        // serialize the other workers behind the memo table.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let n = self.inner.count(cube);
        self.cache
            .lock()
            .expect("memo table poisoned")
            .insert(cube.clone(), n);
        n
    }

    fn rows(&self, cube: &Cube) -> Vec<usize> {
        self.inner.rows(cube)
    }

    fn n_rows(&self) -> usize {
        self.inner.n_rows()
    }

    fn n_dims(&self) -> usize {
        self.inner.n_dims()
    }

    fn phi(&self) -> u32 {
        self.inner.phi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::discretize::DiscretizeStrategy;
    use hdoutlier_data::generators::uniform;

    fn counters() -> (BitmapCounter, NaiveCounter) {
        let ds = uniform(500, 6, 99);
        let disc = Discretized::new(&ds, 5, DiscretizeStrategy::EquiDepth).unwrap();
        (BitmapCounter::new(&disc), NaiveCounter::new(&disc))
    }

    #[test]
    fn bitmap_and_naive_agree_on_many_cubes() {
        let (bitmap, naive) = counters();
        for d0 in 0..6u32 {
            for d1 in 0..6u32 {
                if d0 == d1 {
                    continue;
                }
                for r0 in 0..5u16 {
                    for r1 in 0..5u16 {
                        let cube = Cube::new([(d0, r0), (d1, r1)]).unwrap();
                        assert_eq!(bitmap.count(&cube), naive.count(&cube), "cube {cube}");
                        assert_eq!(bitmap.rows(&cube), naive.rows(&cube));
                    }
                }
            }
        }
    }

    #[test]
    fn metadata_agrees() {
        let (bitmap, naive) = counters();
        assert_eq!(bitmap.n_rows(), 500);
        assert_eq!(naive.n_rows(), 500);
        assert_eq!(bitmap.n_dims(), 6);
        assert_eq!(bitmap.phi(), 5);
        assert_eq!(naive.phi(), 5);
        assert_eq!(naive.n_dims(), 6);
    }

    #[test]
    fn cache_returns_same_answers_and_counts_hits() {
        let (bitmap, _) = counters();
        let cached = CachedCounter::new(bitmap);
        let cube = Cube::new([(0, 1), (3, 2)]).unwrap();
        let first = cached.count(&cube);
        let second = cached.count(&cube);
        assert_eq!(first, second);
        let (hits, misses) = cached.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        cached.clear();
        cached.count(&cube);
        assert_eq!(cached.stats(), (1, 2));
        // rows() is uncached but correct.
        assert_eq!(cached.rows(&cube).len(), first);
        let inner = cached.into_inner();
        assert_eq!(inner.count(&cube), first);
    }

    #[test]
    fn cache_distinguishes_different_cubes() {
        let (bitmap, naive) = counters();
        let cached = CachedCounter::new(bitmap);
        let a = Cube::new([(0, 0)]).unwrap();
        let b = Cube::new([(0, 1)]).unwrap();
        assert_eq!(cached.count(&a), naive.count(&a));
        assert_eq!(cached.count(&b), naive.count(&b));
        assert_eq!(cached.stats().1, 2); // two misses, no collisions
    }

    #[test]
    fn full_k_cube_occupancy_sums_to_n() {
        // Summing counts over all ranges of one dim partitions the rows.
        let (bitmap, _) = counters();
        let total: usize = (0..5u16)
            .map(|r| bitmap.count(&Cube::new([(2, r)]).unwrap()))
            .sum();
        assert_eq!(total, 500);
    }
}
