#![warn(missing_docs)]

//! Counting substrate for the Aggarwal–Yu subspace outlier detector.
//!
//! Every fitness evaluation in the search — brute-force or evolutionary —
//! asks one question: *how many records fall in this k-dimensional cube?*
//! This crate answers it three ways:
//!
//! - [`bitmap`]: a packed bitset over `u64` words with multi-way
//!   intersection + popcount.
//! - [`grid`]: a [`grid::GridIndex`] holding one posting bitmap per
//!   `(dimension, range)` pair; a cube's occupancy is the popcount of the
//!   intersection of its k postings — `O(k · N / 64)` per cube instead of
//!   the naive `O(k · N)` row scan.
//! - [`counter`]: the [`counter::CubeCounter`] abstraction with a naive
//!   scanning implementation (used to cross-check the bitmaps in tests and
//!   in the ablation bench) and a memoizing wrapper for search algorithms
//!   that revisit cubes.

pub mod bitmap;
pub mod counter;
pub mod cube;
pub mod grid;

pub use bitmap::Bitmap;
pub use counter::{BitmapCounter, CachedCounter, CubeCounter, NaiveCounter};
pub use cube::Cube;
pub use grid::GridIndex;
