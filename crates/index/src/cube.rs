//! The k-dimensional cube: a set of dimensions with one grid range each.
//!
//! A cube is the unit the sparsity coefficient scores (paper §1.3): pick k
//! distinct dimensions and one of the φ equi-depth ranges on each. The
//! projection-string representation of the evolutionary algorithm ("\*3\*9")
//! lives in `hdoutlier-core`; this type is its resolved, search-agnostic
//! form shared by all counters.

use std::fmt;

/// A k-dimensional grid cube: parallel `dims`/`ranges` arrays, with `dims`
/// strictly ascending (canonical form, so equal cubes compare equal).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    dims: Vec<u32>,
    ranges: Vec<u16>,
}

impl Cube {
    /// Builds a cube from `(dimension, range)` pairs; pairs are sorted by
    /// dimension into canonical form.
    ///
    /// Returns `None` if `pairs` is empty or contains a repeated dimension.
    pub fn new(pairs: impl IntoIterator<Item = (u32, u16)>) -> Option<Self> {
        let mut pairs: Vec<(u32, u16)> = pairs.into_iter().collect();
        if pairs.is_empty() {
            return None;
        }
        pairs.sort_unstable_by_key(|&(d, _)| d);
        if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
            return None;
        }
        Some(Self {
            dims: pairs.iter().map(|&(d, _)| d).collect(),
            ranges: pairs.iter().map(|&(_, r)| r).collect(),
        })
    }

    /// Dimensionality `k` of the cube.
    pub fn k(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions, ascending.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// The grid range chosen on each dimension, aligned with [`Cube::dims`].
    pub fn ranges(&self) -> &[u16] {
        &self.ranges
    }

    /// Iterates `(dimension, range)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u16)> + '_ {
        self.dims.iter().copied().zip(self.ranges.iter().copied())
    }

    /// Whether the cube constrains dimension `dim`, and to which range.
    pub fn range_of(&self, dim: u32) -> Option<u16> {
        self.dims.binary_search(&dim).ok().map(|i| self.ranges[i])
    }

    /// A new cube extended with one more `(dimension, range)` pair.
    /// Returns `None` if the dimension is already constrained.
    pub fn extended(&self, dim: u32, range: u16) -> Option<Self> {
        if self.range_of(dim).is_some() {
            return None;
        }
        let mut pairs: Vec<(u32, u16)> = self.pairs().collect();
        pairs.push((dim, range));
        Self::new(pairs)
    }

    /// The paper's string notation for a `d`-dimensional problem: one symbol
    /// per dimension, `*` for unconstrained, the 1-based range otherwise
    /// (e.g. `*3*9` for a 4-dimensional problem).
    pub fn to_projection_string(&self, d: usize) -> String {
        let mut out = String::new();
        let mut next = 0usize;
        for dim in 0..d as u32 {
            if next < self.dims.len() && self.dims[next] == dim {
                out.push_str(&(self.ranges[next] + 1).to_string());
                next += 1;
            } else {
                out.push('*');
            }
        }
        out
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (d, r)) in self.pairs().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{d}∈r{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_sorts_dims() {
        let a = Cube::new([(5, 2), (1, 7)]).unwrap();
        let b = Cube::new([(1, 7), (5, 2)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.dims(), &[1, 5]);
        assert_eq!(a.ranges(), &[7, 2]);
        assert_eq!(a.k(), 2);
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(Cube::new([]).is_none());
        assert!(Cube::new([(3, 1), (3, 2)]).is_none());
    }

    #[test]
    fn range_lookup() {
        let c = Cube::new([(2, 4), (9, 0)]).unwrap();
        assert_eq!(c.range_of(2), Some(4));
        assert_eq!(c.range_of(9), Some(0));
        assert_eq!(c.range_of(5), None);
    }

    #[test]
    fn extension() {
        let c = Cube::new([(1, 1)]).unwrap();
        let e = c.extended(0, 3).unwrap();
        assert_eq!(e.dims(), &[0, 1]);
        assert_eq!(e.ranges(), &[3, 1]);
        assert!(c.extended(1, 5).is_none()); // already constrained
    }

    #[test]
    fn projection_string_matches_paper_notation() {
        // Paper §2.2 example: *3*9 — 4-dimensional, ranges on dims 2 and 4
        // (1-based), i.e. 0-based dims 1 and 3 with 1-based ranges 3 and 9.
        let c = Cube::new([(1, 2), (3, 8)]).unwrap();
        assert_eq!(c.to_projection_string(4), "*3*9");
        let c = Cube::new([(0, 0)]).unwrap();
        assert_eq!(c.to_projection_string(3), "1**");
    }

    #[test]
    fn display_is_readable() {
        let c = Cube::new([(0, 1), (4, 2)]).unwrap();
        assert_eq!(c.to_string(), "{d0∈r1, d4∈r2}");
    }

    #[test]
    fn hashable_and_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Cube::new([(1, 1), (2, 2)]).unwrap());
        assert!(set.contains(&Cube::new([(2, 2), (1, 1)]).unwrap()));
        assert!(!set.contains(&Cube::new([(2, 2)]).unwrap()));
    }
}
