//! A packed bitset over `u64` words.
//!
//! Tuned for the one operation the detector hammers: intersect k bitmaps and
//! count the result, without allocating. All bitmaps in one [`crate::grid::GridIndex`]
//! share a length, so the word loops are branch-free.

/// A fixed-length bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap able to hold `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero addressable bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for length {}",
            self.len
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for length {}",
            self.len
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of bounds for length {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Popcount of the intersection of `maps` (all must share a length).
    ///
    /// Allocation-free: folds word-by-word.
    ///
    /// ```
    /// use hdoutlier_index::Bitmap;
    /// let mut evens = Bitmap::new(100);
    /// let mut thirds = Bitmap::new(100);
    /// for i in (0..100).step_by(2) { evens.set(i); }
    /// for i in (0..100).step_by(3) { thirds.set(i); }
    /// // Multiples of 6 below 100: 0, 6, …, 96 → 17 of them.
    /// assert_eq!(Bitmap::intersection_count(&[&evens, &thirds]), 17);
    /// ```
    pub fn intersection_count(maps: &[&Bitmap]) -> usize {
        match maps {
            [] => 0,
            [only] => only.count(),
            [first, rest @ ..] => {
                debug_assert!(rest.iter().all(|m| m.len == first.len));
                let mut total = 0usize;
                for (wi, &w0) in first.words.iter().enumerate() {
                    let mut w = w0;
                    for m in rest {
                        w &= m.words[wi];
                        if w == 0 {
                            break;
                        }
                    }
                    total += w.count_ones() as usize;
                }
                total
            }
        }
    }

    /// Materializes the intersection of `maps` into a new bitmap.
    ///
    /// # Panics
    /// Panics if `maps` is empty (there is no length to give "everything").
    pub fn intersection(maps: &[&Bitmap]) -> Bitmap {
        let first = maps.first().expect("intersection of zero bitmaps");
        let mut out = (*first).clone();
        for m in &maps[1..] {
            debug_assert_eq!(m.len, out.len);
            for (o, w) in out.words.iter_mut().zip(&m.words) {
                *o &= w;
            }
        }
        out
    }

    /// Indices of set bits in the intersection of `maps`, ascending.
    pub fn intersection_members(maps: &[&Bitmap]) -> Vec<usize> {
        if maps.is_empty() {
            return Vec::new();
        }
        Bitmap::intersection(maps).iter_ones().collect()
    }

    /// Iterator over indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place union with another bitmap of the same length.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Iterator over set-bit indices.
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert_eq!(b.count(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        Bitmap::new(10).set(10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::new(0).get(0);
    }

    #[test]
    fn intersection_count_matches_materialized() {
        let mut a = Bitmap::new(200);
        let mut b = Bitmap::new(200);
        let mut c = Bitmap::new(200);
        for i in (0..200).step_by(2) {
            a.set(i);
        }
        for i in (0..200).step_by(3) {
            b.set(i);
        }
        for i in (0..200).step_by(5) {
            c.set(i);
        }
        let maps = [&a, &b, &c];
        let count = Bitmap::intersection_count(&maps);
        let inter = Bitmap::intersection(&maps);
        assert_eq!(count, inter.count());
        // Multiples of 30 in 0..200: 0, 30, 60, …, 180 → 7.
        assert_eq!(count, 7);
        assert_eq!(
            Bitmap::intersection_members(&maps),
            vec![0, 30, 60, 90, 120, 150, 180]
        );
    }

    #[test]
    fn intersection_edge_cases() {
        let mut a = Bitmap::new(10);
        a.set(3);
        assert_eq!(Bitmap::intersection_count(&[]), 0);
        assert_eq!(Bitmap::intersection_count(&[&a]), 1);
        assert!(Bitmap::intersection_members(&[] as &[&Bitmap]).is_empty());
        let empty = Bitmap::new(10);
        assert_eq!(Bitmap::intersection_count(&[&a, &empty]), 0);
    }

    #[test]
    #[should_panic(expected = "zero bitmaps")]
    fn materialized_intersection_of_nothing_panics() {
        Bitmap::intersection(&[]);
    }

    #[test]
    fn iter_ones_sparse_and_dense() {
        let mut b = Bitmap::new(300);
        let expected = vec![0usize, 1, 64, 65, 128, 255, 299];
        for &i in &expected {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), expected);
        let empty = Bitmap::new(300);
        assert_eq!(empty.iter_ones().count(), 0);
        let zero_len = Bitmap::new(0);
        assert_eq!(zero_len.iter_ones().count(), 0);
        assert!(zero_len.is_empty());
    }

    #[test]
    fn union_with_accumulates() {
        let mut a = Bitmap::new(70);
        a.set(1);
        let mut b = Bitmap::new(70);
        b.set(69);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 69]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        Bitmap::new(10).union_with(&Bitmap::new(11));
    }
}
