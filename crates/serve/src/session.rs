//! One scoring session: a model, its online-scorer state, and the
//! request-scoped scoring loop.
//!
//! A session is the serve-side twin of one `hdoutlier stream` process. It
//! owns everything that process would: an [`OnlineScorer`] (drift monitor
//! included), an error policy with a consecutive-failure breaker, skip and
//! quarantine totals, a persistent line counter, and an optional checkpoint
//! cadence. Nothing here is shared between sessions — a tripped breaker,
//! a drifted grid, or a checkpoint failure in one session is invisible to
//! every other.
//!
//! [`Session::score_lines`] mirrors the CLI stream loop exactly — same
//! batch discipline (pooled read-only scoring, serial in-order apply), same
//! policy ladder at each failure point, same checkpoint cadence, and the
//! same NDJSON renderers ([`hdoutlier_stream::ndjson`]) — which is what
//! makes a session's verdict stream byte-identical to `hdoutlier stream`
//! run over the same records.

use hdoutlier_json::{FieldChain, Json, JsonError};
use hdoutlier_obs as obs;
use hdoutlier_stream::ndjson::{error_json, verdict_json};
use hdoutlier_stream::{Checkpoint, OnlineScorer, RecoveredFrom, Verdict};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What to do with a record that cannot be parsed or scored — the same
/// ladder as the CLI's `--on-error`.
#[derive(Debug, Clone)]
pub enum ErrorPolicy {
    /// Trip the session on the first bad record (the default).
    Abort,
    /// Emit an NDJSON error verdict and keep scoring.
    Skip,
    /// Like skip, and also append the raw line to the file at this path.
    Quarantine(String),
}

impl ErrorPolicy {
    /// Parses the `on_error` config value (`abort`, `skip`,
    /// `quarantine:<path>`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "abort" => Ok(ErrorPolicy::Abort),
            "skip" => Ok(ErrorPolicy::Skip),
            other => match other.strip_prefix("quarantine:") {
                Some(path) if !path.is_empty() => Ok(ErrorPolicy::Quarantine(path.to_string())),
                _ => Err(format!(
                    "on_error must be abort|skip|quarantine:<path>, got {spec:?}"
                )),
            },
        }
    }

    /// The `action` string written into error verdicts.
    pub fn action(&self) -> &'static str {
        match self {
            ErrorPolicy::Abort => "abort",
            ErrorPolicy::Skip => "skip",
            ErrorPolicy::Quarantine(_) => "quarantine",
        }
    }
}

/// Validated configuration for one session, parsed from the
/// `POST /sessions` body by [`SessionConfig::from_json`].
pub struct SessionConfig {
    /// Session identifier (path segment, checkpoint filename stem).
    pub id: String,
    /// The fitted model this session scores against.
    pub model: hdoutlier_core::FittedModel,
    /// Drift-test significance override (`None` keeps the scorer default
    /// or, on resume, the checkpointed value).
    pub drift_alpha: Option<f64>,
    /// Drift-check cadence override.
    pub drift_every: Option<u64>,
    /// Records per pooled `score_batch` call (`1` = record-at-a-time).
    pub batch: usize,
    /// Emit only outlier (and cadence-drift) verdicts.
    pub outliers_only: bool,
    /// Bad-record policy.
    pub policy: ErrorPolicy,
    /// Consecutive-failure circuit breaker threshold.
    pub max_consecutive: u64,
    /// Records between automatic checkpoints (when the server has a
    /// checkpoint directory).
    pub checkpoint_every: u64,
    /// Restore state from an existing checkpoint file when one is present.
    pub resume: bool,
}

impl SessionConfig {
    /// Parses and validates a `POST /sessions` body. `default_id` is used
    /// when the body does not name the session; `read_model_path` loads
    /// `model_path` references (injected so tests can run hermetically).
    pub fn from_json(
        body: &Json,
        default_id: String,
        read_model_path: &dyn Fn(&str) -> Result<String, String>,
    ) -> Result<Self, String> {
        let id = match body.get("id") {
            None => default_id,
            Some(j) => j
                .as_str()
                .map(str::to_string)
                .ok_or("id must be a string")?,
        };
        if id.is_empty()
            || id.len() > 64
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "id must be 1-64 characters of [A-Za-z0-9_-], got {id:?}"
            ));
        }
        let model = match (body.get("model"), body.get("model_path")) {
            (Some(inline), None) => {
                hdoutlier_stream::model_io::from_json(inline).map_err(|e| format!("model: {e}"))?
            }
            (None, Some(path)) => {
                let path = path.as_str().ok_or("model_path must be a string")?;
                let text = read_model_path(path)?;
                hdoutlier_stream::model_io::from_json_text(&text)
                    .map_err(|e| format!("model_path {path}: {e}"))?
            }
            (Some(_), Some(_)) => return Err("give model or model_path, not both".into()),
            (None, None) => return Err("a model is required (model or model_path)".into()),
        };
        let number = |key: &str| -> Result<Option<f64>, String> {
            match body.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_number()
                    .map(Some)
                    .ok_or(format!("{key} must be a number")),
            }
        };
        let count = |key: &str, default: u64| -> Result<u64, String> {
            match number(key)? {
                None => Ok(default),
                Some(v) if v >= 1.0 && v.fract() == 0.0 => Ok(v as u64),
                Some(v) => Err(format!("{key} must be a positive integer, got {v}")),
            }
        };
        let flag = |key: &str| -> Result<bool, String> {
            match body.get(key) {
                None => Ok(false),
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("{key} must be a boolean")),
            }
        };
        let drift_every = match number("drift_every")? {
            None => None,
            Some(v) if v >= 1.0 && v.fract() == 0.0 => Some(v as u64),
            Some(v) => return Err(format!("drift_every must be a positive integer, got {v}")),
        };
        let policy = match body.get("on_error") {
            None => ErrorPolicy::Abort,
            Some(j) => ErrorPolicy::parse(j.as_str().ok_or("on_error must be a string")?)?,
        };
        Ok(SessionConfig {
            id,
            model,
            drift_alpha: number("drift_alpha")?,
            drift_every,
            batch: count("batch", 1)? as usize,
            outliers_only: flag("outliers_only")?,
            policy,
            max_consecutive: count("max_consecutive_errors", 100)?,
            checkpoint_every: count("checkpoint_every", 1000)?,
            resume: flag("resume")?,
        })
    }
}

/// Why creating a session failed, mapped to an HTTP status by the router.
#[derive(Debug)]
pub enum CreateError {
    /// The configuration is invalid (`400`).
    Config(String),
    /// A checkpoint exists but does not fit the model (`409`).
    Resume(String),
    /// Filesystem failure reading state (`500`).
    Io(String),
}

impl std::fmt::Display for CreateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreateError::Config(m) | CreateError::Resume(m) | CreateError::Io(m) => {
                write!(f, "{m}")
            }
        }
    }
}

/// How one `score_lines` call ended.
pub struct ScoreOutcome {
    /// The NDJSON verdict stream (possibly partial when `tripped`).
    pub ndjson: String,
    /// Records scored by this call (metrics fodder).
    pub records: u64,
    /// Records this call flagged as outliers.
    pub outliers: u64,
    /// Bad records this call skipped or quarantined.
    pub errors: u64,
    /// Set when the abort policy or the breaker tripped mid-request; the
    /// session refuses further scoring until deleted.
    pub tripped: Option<String>,
    /// Set on an environmental failure (checkpoint write, quarantine
    /// append); the session stays usable.
    pub fatal: Option<String>,
}

/// Control flow inside the scoring loop.
enum Stop {
    /// Policy/breaker trip: stop scoring, poison the session.
    Tripped(String),
    /// Environmental failure: stop scoring, keep the session.
    Fatal(String),
}

/// What the replay cache knows about a request id.
pub enum ReplayLookup {
    /// Never seen (or evicted): score normally.
    Miss,
    /// Seen with the same body: return the cached response verbatim, do
    /// not touch the scorer.
    Hit {
        /// The original response status.
        status: u16,
        /// The original response body.
        body: String,
        /// Whether the original was a JSON error document (vs NDJSON
        /// verdicts).
        json_error: bool,
    },
    /// Seen with a *different* body: the client reused a request id for a
    /// new logical request — refuse rather than replay the wrong verdicts.
    Conflict,
}

/// One remembered score response.
struct ReplayEntry {
    request_id: String,
    body_hash: u64,
    status: u16,
    body: String,
    json_error: bool,
}

/// A bounded FIFO of recent score responses keyed on client-supplied
/// `X-Request-Id`, making score POSTs idempotent under retry: a client
/// that resends the same request id (after a timeout, a shed `503`, a torn
/// connection) gets the original verdict batch back instead of mutating
/// the scorer twice. Guarded by the session mutex, so a lookup is atomic
/// with the scoring it guards against.
struct ReplayCache {
    capacity: usize,
    entries: VecDeque<ReplayEntry>,
}

impl ReplayCache {
    fn new(capacity: usize) -> ReplayCache {
        ReplayCache {
            capacity,
            entries: VecDeque::new(),
        }
    }

    fn lookup(&self, request_id: &str, body: &str) -> ReplayLookup {
        let Some(entry) = self.entries.iter().find(|e| e.request_id == request_id) else {
            return ReplayLookup::Miss;
        };
        if entry.body_hash != fnv1a(body.as_bytes()) {
            return ReplayLookup::Conflict;
        }
        ReplayLookup::Hit {
            status: entry.status,
            body: entry.body.clone(),
            json_error: entry.json_error,
        }
    }

    fn store(
        &mut self,
        request_id: &str,
        body: &str,
        status: u16,
        response: &str,
        json_error: bool,
    ) {
        if self.capacity == 0 {
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(ReplayEntry {
            request_id: request_id.to_string(),
            body_hash: fnv1a(body.as_bytes()),
            status,
            body: response.to_string(),
            json_error,
        });
    }
}

/// FNV-1a over bytes — fingerprints a request body so an id reused with
/// different records is detected instead of silently replayed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One live scoring session.
pub struct Session {
    id: String,
    scorer: OnlineScorer,
    batch: usize,
    outliers_only: bool,
    policy: ErrorPolicy,
    max_consecutive: u64,
    consecutive_errors: u64,
    skipped: u64,
    quarantined: u64,
    /// 1-based input line counter, persistent across requests (and across
    /// restarts via resume) so error verdicts number lines exactly as one
    /// continuous `stream` run would.
    line_no: u64,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: u64,
    tripped: Option<String>,
    resumed: bool,
    replay: ReplayCache,
}

impl Session {
    /// Builds a session from validated config, restoring checkpointed state
    /// when `resume` is set and `<dir>/<id>.ckpt.json` (or its rotated
    /// `.prev` generation) exists. `replay_capacity` bounds the per-session
    /// idempotency cache (`0` disables it).
    pub fn create(
        config: SessionConfig,
        checkpoint_dir: Option<&Path>,
        replay_capacity: usize,
    ) -> Result<Session, CreateError> {
        let mut scorer = OnlineScorer::new(config.model)
            .map_err(|e| CreateError::Config(format!("model unusable for streaming: {e}")))?;
        let checkpoint_path = checkpoint_dir.map(|d| d.join(format!("{}.ckpt.json", config.id)));
        let mut skipped = 0u64;
        let mut quarantined = 0u64;
        let mut resumed = false;
        if config.resume {
            // The primary may be absent while a rotated generation exists
            // (a crash inside save_atomic's rename window) — recovery must
            // still run then.
            let has_state =
                |p: &&Path| p.exists() || hdoutlier_stream::checkpoint::prev_path(p).exists();
            if let Some(path) = checkpoint_path.as_deref().filter(has_state) {
                let (cp, recovered) = Checkpoint::load_with_recovery(path).map_err(|e| {
                    CreateError::Io(format!("cannot resume from {}: {e}", path.display()))
                })?;
                if let RecoveredFrom::Previous { quarantined } = &recovered {
                    obs::event(
                        obs::Level::Warn,
                        "hdoutlier.serve",
                        "checkpoint_recovered",
                        &[
                            ("from", obs::Value::Str("prev")),
                            ("quarantined", obs::Value::Bool(quarantined.is_some())),
                        ],
                    );
                }
                cp.restore(&mut scorer).map_err(|e| {
                    CreateError::Resume(format!("cannot resume from {}: {e}", path.display()))
                })?;
                skipped = cp.skipped;
                quarantined = cp.quarantined;
                resumed = true;
            }
        }
        // Explicit drift settings override the checkpointed ones — the same
        // precedence as `stream --resume --drift-every`.
        if let Some(alpha) = config.drift_alpha {
            scorer
                .set_drift_alpha(alpha)
                .map_err(|e| CreateError::Config(e.to_string()))?;
        }
        if let Some(every) = config.drift_every {
            scorer
                .set_check_every(every)
                .map_err(|e| CreateError::Config(e.to_string()))?;
        }
        let line_no = scorer.records_scored() + skipped + quarantined;
        Ok(Session {
            id: config.id,
            scorer,
            batch: config.batch.max(1),
            outliers_only: config.outliers_only,
            policy: config.policy,
            max_consecutive: config.max_consecutive,
            consecutive_errors: 0,
            skipped,
            quarantined,
            line_no,
            checkpoint_path,
            checkpoint_every: config.checkpoint_every,
            tripped: None,
            resumed,
            replay: ReplayCache::new(replay_capacity),
        })
    }

    /// The session identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Consults the idempotency cache for a client-supplied request id.
    pub fn replay_lookup(&self, request_id: &str, body: &str) -> ReplayLookup {
        self.replay.lookup(request_id, body)
    }

    /// Remembers a score response so a retry of `request_id` replays it.
    pub fn replay_store(
        &mut self,
        request_id: &str,
        body: &str,
        status: u16,
        response: &str,
        json_error: bool,
    ) {
        self.replay
            .store(request_id, body, status, response, json_error);
    }

    /// The trip reason, when the abort policy or breaker fired.
    pub fn tripped(&self) -> Option<&str> {
        self.tripped.as_deref()
    }

    /// Records scored over the session's lifetime (including resumed state).
    pub fn records_scored(&self) -> u64 {
        self.scorer.records_scored()
    }

    /// Scores one request body of NDJSON records (one JSON array of
    /// numbers/nulls per line; `null` is a missing value). Verdicts are
    /// appended to the outcome in arrival order — the same order, and the
    /// same bytes, as `hdoutlier stream` would write for these records.
    pub fn score_lines(&mut self, body: &str, threads: usize) -> ScoreOutcome {
        let n_dims = self.scorer.model().grid().n_dims();
        let mut out = String::new();
        let mut records = 0u64;
        let outliers_before = self.scorer.outliers_flagged();
        let errors_before = self.skipped + self.quarantined;
        let mut pending: Vec<(u64, String, Vec<f64>)> = Vec::new();

        let mut run = || -> Result<(), Stop> {
            for line in body.lines() {
                self.line_no += 1;
                if line.trim().is_empty() {
                    continue;
                }
                let row = match parse_record_line(line, n_dims) {
                    Ok(row) => row,
                    Err(msg) => {
                        // Drain buffered records first so the error verdict
                        // lands at its arrival position in the output.
                        self.flush_batch(&mut pending, threads, &mut out, &mut records)?;
                        self.record_error(self.line_no, &msg, Some(line), &mut out)?;
                        continue;
                    }
                };
                if self.batch > 1 {
                    pending.push((self.line_no, line.to_string(), row));
                    if pending.len() >= self.batch {
                        self.flush_batch(&mut pending, threads, &mut out, &mut records)?;
                    }
                    continue;
                }
                match self.scorer.score_record(&row) {
                    Ok(verdict) => self.emit_verdict(&verdict, &mut out, &mut records)?,
                    Err(e) => {
                        self.record_error(self.line_no, &e.to_string(), Some(line), &mut out)?
                    }
                }
            }
            // Score any partial batch left at end-of-body so the response
            // is complete and state is consistent before it is sent.
            self.flush_batch(&mut pending, threads, &mut out, &mut records)
        };
        let (tripped, fatal) = match run() {
            Ok(()) => (None, None),
            Err(Stop::Tripped(reason)) => {
                self.tripped = Some(reason.clone());
                (Some(reason), None)
            }
            Err(Stop::Fatal(reason)) => (None, Some(reason)),
        };
        ScoreOutcome {
            ndjson: out,
            records,
            outliers: self.scorer.outliers_flagged() - outliers_before,
            errors: self.skipped + self.quarantined - errors_before,
            tripped,
            fatal,
        }
    }

    /// Scores everything buffered in `pending` with one pooled call, then
    /// emits the verdicts in arrival order.
    fn flush_batch(
        &mut self,
        pending: &mut Vec<(u64, String, Vec<f64>)>,
        threads: usize,
        out: &mut String,
        records: &mut u64,
    ) -> Result<(), Stop> {
        if pending.is_empty() {
            return Ok(());
        }
        let rows: Vec<Vec<f64>> = pending.iter().map(|(_, _, r)| r.clone()).collect();
        let results = self.scorer.score_batch(&rows, threads);
        for ((line_no, raw, _), result) in pending.drain(..).zip(results) {
            match result {
                Ok(verdict) => self.emit_verdict(&verdict, out, records)?,
                Err(e) => self.record_error(line_no, &e.to_string(), Some(&raw), out)?,
            }
        }
        Ok(())
    }

    /// Renders one scoring verdict and runs the checkpoint cadence.
    fn emit_verdict(
        &mut self,
        verdict: &Verdict,
        out: &mut String,
        records: &mut u64,
    ) -> Result<(), Stop> {
        self.consecutive_errors = 0;
        *records += 1;
        if !(self.outliers_only && !verdict.outlier && verdict.drift.is_none()) {
            let rendered = verdict_json(verdict, &self.scorer)
                .map_err(|e| Stop::Fatal(format!("line {}: {e}", self.line_no)))?
                .render();
            out.push_str(&rendered);
            out.push('\n');
        }
        if let Some(path) = self.checkpoint_path.clone() {
            if self
                .scorer
                .records_scored()
                .is_multiple_of(self.checkpoint_every)
            {
                self.save_checkpoint(&path).map_err(Stop::Fatal)?;
            }
        }
        Ok(())
    }

    /// The skip/quarantine/abort ladder, shared by every failure point.
    fn record_error(
        &mut self,
        line_no: u64,
        reason: &str,
        raw: Option<&str>,
        out: &mut String,
    ) -> Result<(), Stop> {
        self.consecutive_errors += 1;
        if matches!(self.policy, ErrorPolicy::Abort) {
            return Err(Stop::Tripped(format!("line {line_no}: {reason}")));
        }
        if self.consecutive_errors > self.max_consecutive {
            return Err(Stop::Tripped(format!(
                "line {line_no}: {reason} ({} consecutive bad records exceed \
                 max_consecutive_errors {}; session tripped)",
                self.consecutive_errors, self.max_consecutive
            )));
        }
        if let ErrorPolicy::Quarantine(path) = &self.policy {
            if let Some(raw) = raw {
                // Under serve, a request context is installed and each
                // quarantined line becomes a JSON envelope naming the
                // request that carried it; the CLI stream path (no
                // context) keeps writing the raw line verbatim, so its
                // quarantine files stay replayable as-is.
                let entry = match obs::current_request_ctx() {
                    None => raw.to_string(),
                    Some(ctx) => quarantine_envelope(&ctx, line_no, raw)
                        .map_err(|e| Stop::Fatal(format!("line {line_no}: {e}")))?,
                };
                let append = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| writeln!(f, "{entry}"));
                if let Err(e) = append {
                    return Err(Stop::Fatal(format!(
                        "failed to quarantine line {line_no} to {path}: {e}"
                    )));
                }
            }
            self.quarantined += 1;
        } else {
            self.skipped += 1;
        }
        let rendered = error_json(line_no as usize, reason, self.policy.action())
            .map_err(|e| Stop::Fatal(format!("line {line_no}: {e}")))?
            .render();
        out.push_str(&rendered);
        out.push('\n');
        Ok(())
    }

    /// Writes the session's current state to `path` atomically.
    fn save_checkpoint(&self, path: &Path) -> Result<(), String> {
        Checkpoint::capture(&self.scorer, self.skipped, self.quarantined)
            .save_atomic(path)
            .map_err(|e| format!("failed to checkpoint to {}: {e}", path.display()))
    }

    /// Forces a checkpoint now, returning the path written.
    ///
    /// # Errors
    /// A message when no checkpoint directory is configured or the write
    /// fails.
    pub fn checkpoint_now(&self) -> Result<PathBuf, String> {
        let path = self
            .checkpoint_path
            .clone()
            .ok_or("server has no checkpoint directory (--checkpoint-dir)")?;
        self.save_checkpoint(&path)?;
        Ok(path)
    }

    /// Final checkpoint for drain/delete: a no-op `Ok(false)` when the
    /// server has no checkpoint directory.
    pub fn checkpoint_if_configured(&self) -> Result<bool, String> {
        match &self.checkpoint_path {
            None => Ok(false),
            Some(path) => self.save_checkpoint(path).map(|()| true),
        }
    }

    /// The session's status document (`GET /sessions/{id}`).
    ///
    /// # Errors
    /// [`JsonError`] on builder misuse (not reachable).
    pub fn status_json(&self) -> Result<Json, JsonError> {
        let monitor = self.scorer.monitor();
        Json::object()
            .field("id", self.id.as_str())
            .field("records_scored", self.scorer.records_scored())
            .field("outliers", self.scorer.outliers_flagged())
            .field("skipped", self.skipped)
            .field("quarantined", self.quarantined)
            .field("line_no", self.line_no)
            .field(
                "tripped",
                self.tripped
                    .as_deref()
                    .map_or(Json::Null, |r| Json::String(r.to_string())),
            )
            .field("resumed", self.resumed)
            .field("batch", self.batch)
            .field("outliers_only", self.outliers_only)
            .field("on_error", self.policy.action())
            .field(
                "drift",
                Json::object()
                    .field("alpha", self.scorer.drift_alpha())
                    .field("check_every", self.scorer.check_every())
                    .field("records_observed", monitor.records_observed())?,
            )
            .field(
                "checkpoint",
                match &self.checkpoint_path {
                    None => Json::Null,
                    Some(path) => Json::object()
                        .field("path", path.display().to_string())
                        .field("every", self.checkpoint_every)?,
                },
            )
    }
}

/// Renders the serve-side quarantine line: a JSON envelope carrying the
/// raw record plus the request identity that delivered it, so a bad line
/// in a quarantine file can be traced back through the access log.
fn quarantine_envelope(
    ctx: &obs::RequestCtx,
    line_no: u64,
    raw: &str,
) -> Result<String, JsonError> {
    Ok(Json::object()
        .field("request_id", ctx.request_id())
        .field(
            "session_id",
            ctx.session_id()
                .map_or(Json::Null, |s| Json::String(s.to_string())),
        )
        .field("line", line_no)
        .field("raw", raw)?
        .render())
}

/// Parses one NDJSON record line — a JSON array of `n_dims` numbers, with
/// `null` standing for a missing value (NaN), mirroring the CSV reader's
/// missing markers.
pub fn parse_record_line(line: &str, n_dims: usize) -> Result<Vec<f64>, String> {
    let json = Json::parse(line).map_err(|e| format!("malformed record: {e}"))?;
    let fields = json
        .as_array()
        .ok_or("record must be a JSON array of numbers")?;
    if fields.len() != n_dims {
        return Err(format!(
            "expected {n_dims} fields (the model's dimensionality), got {}",
            fields.len()
        ));
    }
    fields
        .iter()
        .map(|f| match f {
            Json::Null => Ok(f64::NAN),
            other => other
                .as_number()
                .ok_or_else(|| format!("record fields must be numbers or null, got {other:?}")),
        })
        .collect()
}
