#![warn(missing_docs)]

//! `hdoutlier serve` — a long-running network scoring server hosting many
//! concurrent sessions, each the serve-side twin of one `hdoutlier stream`
//! process.
//!
//! The HTTP surface (over [`hdoutlier_net`]):
//!
//! - `POST /sessions` — create a session from a JSON config (inline model
//!   or `model_path`, drift settings, batch size, error policy, checkpoint
//!   cadence, `resume`); responds `201` with the session status document;
//! - `POST /sessions/{id}/score` — NDJSON records in (one JSON array per
//!   line, `null` = missing), NDJSON verdicts out, byte-identical to
//!   `hdoutlier stream` over the same records because both transports call
//!   the renderers in [`hdoutlier_stream::ndjson`] and the same
//!   order-preserving `score_batch` discipline;
//! - `GET /sessions` / `GET /sessions/{id}` — status documents;
//! - `POST /sessions/{id}/checkpoint` — force an atomic checkpoint now;
//! - `DELETE /sessions/{id}` — final checkpoint, then remove;
//! - `POST /shutdown` — request a graceful drain (same effect as SIGTERM);
//! - `GET /metrics` / `/healthz` / `/snapshot` — the shared telemetry
//!   responder from [`hdoutlier_obs`].
//!
//! Sessions are isolated: each lives behind its own mutex, so concurrent
//! score requests to different sessions proceed in parallel across the
//! server's connection workers, and a tripped breaker, drift alert, or
//! checkpoint failure in one session never leaks into another. Checkpoints
//! use the stream crate's [`Checkpoint`](hdoutlier_stream::Checkpoint)
//! file format, so a session checkpoint is also resumable by
//! `hdoutlier stream --resume`.
//!
//! Graceful drain ([`ServeHandle::drain`]) stops accepting new work,
//! lets in-flight requests finish (their batches flush through the normal
//! request path), writes a final checkpoint for every session, and only
//! then returns — the listener is closed before the process exits.

pub mod session;
pub mod signal;

use hdoutlier_json::Json;
use hdoutlier_net::{Request, Response, Server, ServerConfig};
use hdoutlier_obs as obs;
use session::{CreateError, Session, SessionConfig};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Event target for the serve subsystem.
const TARGET: &str = "hdoutlier.serve";

/// Tuning knobs for a scoring server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cap on live sessions; creates beyond it are refused with `503`.
    pub max_sessions: usize,
    /// Pool threads for each session's batched scoring.
    pub threads: usize,
    /// Directory for per-session checkpoint files (`<id>.ckpt.json`);
    /// `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// HTTP server tuning (workers, queue depth, body caps, timeouts).
    pub http: ServerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 16,
            threads: hdoutlier_pool::default_threads(),
            checkpoint_dir: None,
            http: ServerConfig::default(),
        }
    }
}

/// Metric handles resolved once at construction.
struct ServeMetrics {
    sessions: obs::Gauge,
    requests: obs::Counter,
    records: obs::Counter,
    drains: obs::Counter,
}

impl ServeMetrics {
    fn resolve() -> Self {
        let r = obs::registry();
        ServeMetrics {
            sessions: r.gauge("hdoutlier.serve.sessions"),
            requests: r.counter("hdoutlier.serve.requests"),
            records: r.counter("hdoutlier.serve.records"),
            drains: r.counter("hdoutlier.serve.drains"),
        }
    }
}

/// The session registry and request router — everything about the scoring
/// server except the TCP listener (which [`ServeHandle`] adds).
pub struct ServeApp {
    config: ServeConfig,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    metrics: ServeMetrics,
}

impl ServeApp {
    /// Builds an app over a validated configuration.
    pub fn new(config: ServeConfig) -> Arc<ServeApp> {
        Arc::new(ServeApp {
            config,
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            metrics: ServeMetrics::resolve(),
        })
    }

    /// The configuration the app was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Whether a drain has been requested (`POST /shutdown` or
    /// [`ServeApp::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: new sessions and score requests are
    /// refused with `503` from this moment; the owner (the serve command's
    /// wait loop) observes the flag and runs [`ServeHandle::drain`].
    pub fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Live session ids, sorted.
    pub fn session_ids(&self) -> Vec<String> {
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Writes a final checkpoint for every session that has one configured.
    /// Returns `(sessions, checkpointed, errors)`; write failures are
    /// collected rather than aborting the drain (the other sessions still
    /// deserve their checkpoints).
    pub fn checkpoint_all(&self) -> (usize, usize, Vec<String>) {
        let sessions: Vec<Arc<Mutex<Session>>> = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .values()
            .cloned()
            .collect();
        let total = sessions.len();
        let mut checkpointed = 0usize;
        let mut errors = Vec::new();
        for session in sessions {
            let session = session.lock().expect("session poisoned");
            match session.checkpoint_if_configured() {
                Ok(true) => checkpointed += 1,
                Ok(false) => {}
                Err(e) => errors.push(format!("session {}: {e}", session.id())),
            }
        }
        (total, checkpointed, errors)
    }

    /// Routes one request. This is the [`hdoutlier_net::Handler`] body.
    pub fn handle(&self, request: &Request) -> Response {
        self.metrics.requests.inc();
        let path = request.path.as_str();
        let method = request.method.as_str();
        if let Some(rest) = path.strip_prefix("/sessions") {
            return match (method, rest) {
                ("POST", "" | "/") => self.create_session(request),
                ("GET", "" | "/") => self.list_sessions(),
                _ => {
                    let Some(rest) = rest.strip_prefix('/') else {
                        return error_response(404, &format!("no route for {method} {path}"));
                    };
                    let (id, action) = match rest.split_once('/') {
                        None => (rest, None),
                        Some((id, action)) => (id, Some(action)),
                    };
                    match (method, action) {
                        ("POST", Some("score")) => self.score(id, request),
                        ("POST", Some("checkpoint")) => self.checkpoint(id),
                        ("GET", None) => self.status(id),
                        ("DELETE", None) => self.delete(id),
                        _ => error_response(404, &format!("no route for {method} {path}")),
                    }
                }
            };
        }
        if path == "/shutdown" {
            if method != "POST" {
                return error_response(405, "use POST /shutdown");
            }
            self.request_shutdown();
            obs::event(obs::Level::Info, TARGET, "shutdown_requested", &[]);
            return Response::json(200, r#"{"draining":true}"#);
        }
        match obs::telemetry_response(request, obs::registry()) {
            Some(response) => response,
            None => error_response(404, &format!("no route for {method} {path}")),
        }
    }

    /// `POST /sessions`.
    fn create_session(&self, request: &Request) -> Response {
        if self.shutdown_requested() {
            return error_response(503, "server is draining");
        }
        let body = match request.body_utf8() {
            Ok(b) => b,
            Err(e) => return error_response(400, e),
        };
        let json = match Json::parse(body) {
            Ok(j) => j,
            Err(e) => return error_response(400, &format!("body is not valid JSON: {e}")),
        };
        let default_id = format!("s{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let read_model = |path: &str| {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read model_path {path}: {e}"))
        };
        let config = match SessionConfig::from_json(&json, default_id, &read_model) {
            Ok(c) => c,
            Err(e) => return error_response(400, &e),
        };
        let id = config.id.clone();
        // Hold the registry lock across create so two concurrent creates of
        // the same id cannot both pass the duplicate check; session
        // construction is quick (the model is already parsed).
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        if sessions.len() >= self.config.max_sessions {
            return error_response(
                503,
                &format!("session limit reached ({})", self.config.max_sessions),
            );
        }
        if sessions.contains_key(&id) {
            return error_response(409, &format!("session {id:?} already exists"));
        }
        let session = match Session::create(config, self.config.checkpoint_dir.as_deref()) {
            Ok(s) => s,
            Err(CreateError::Config(e)) => return error_response(400, &e),
            Err(CreateError::Resume(e)) => return error_response(409, &e),
            Err(CreateError::Io(e)) => return error_response(500, &e),
        };
        let status = match session.status_json() {
            Ok(j) => j.render(),
            Err(e) => return error_response(500, &e.to_string()),
        };
        obs::event(
            obs::Level::Info,
            TARGET,
            "session_created",
            &[
                ("records", obs::Value::U64(session.records_scored())),
                ("sessions", obs::Value::U64(sessions.len() as u64 + 1)),
            ],
        );
        sessions.insert(id, Arc::new(Mutex::new(session)));
        self.metrics.sessions.set(sessions.len() as i64);
        Response::json(201, status)
    }

    /// `GET /sessions`.
    fn list_sessions(&self) -> Response {
        let sessions: Vec<Arc<Mutex<Session>>> = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .values()
            .cloned()
            .collect();
        let mut items = Vec::with_capacity(sessions.len());
        for session in sessions {
            match session.lock().expect("session poisoned").status_json() {
                Ok(j) => items.push(j),
                Err(e) => return error_response(500, &e.to_string()),
            }
        }
        match Json::object().field("sessions", Json::Array(items)) {
            Ok(j) => Response::json(200, j.render()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// Clones the handle for one session, or `None`.
    fn session(&self, id: &str) -> Option<Arc<Mutex<Session>>> {
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .get(id)
            .cloned()
    }

    /// `POST /sessions/{id}/score`.
    fn score(&self, id: &str, request: &Request) -> Response {
        if self.shutdown_requested() {
            return error_response(503, "server is draining");
        }
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        let body = match request.body_utf8() {
            Ok(b) => b,
            Err(e) => return error_response(400, e),
        };
        // The session lock is held for the whole request: scoring is
        // stateful and order-defining. Other sessions are untouched — their
        // requests run concurrently on other connection workers.
        let mut session = session.lock().expect("session poisoned");
        if let Some(reason) = session.tripped() {
            return error_response(409, &format!("session tripped: {reason}"));
        }
        let outcome = session.score_lines(body, self.config.threads);
        self.metrics.records.add(outcome.records);
        if let Some(fatal) = outcome.fatal {
            return error_response(500, &fatal);
        }
        if outcome.tripped.is_some() {
            obs::event(
                obs::Level::Warn,
                TARGET,
                "session_tripped",
                &[("records", obs::Value::U64(session.records_scored()))],
            );
            // The verdicts computed before the trip are still delivered —
            // they are exactly what `stream` would have written before
            // aborting — under a conflict status so the client knows the
            // stream ended early. The reason rides in the status document.
            return Response::ndjson(409, outcome.ndjson);
        }
        Response::ndjson(200, outcome.ndjson)
    }

    /// `GET /sessions/{id}`.
    fn status(&self, id: &str) -> Response {
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        let session = session.lock().expect("session poisoned");
        match session.status_json() {
            Ok(j) => Response::json(200, j.render()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// `POST /sessions/{id}/checkpoint`.
    fn checkpoint(&self, id: &str) -> Response {
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        let session = session.lock().expect("session poisoned");
        match session.checkpoint_now() {
            Err(e) if e.contains("checkpoint directory") => error_response(400, &e),
            Err(e) => error_response(500, &e),
            Ok(path) => {
                let body = Json::object()
                    .field("checkpoint", path.display().to_string())
                    .and_then(|j| j.field("records_scored", session.records_scored()));
                match body {
                    Ok(j) => Response::json(200, j.render()),
                    Err(e) => error_response(500, &e.to_string()),
                }
            }
        }
    }

    /// `DELETE /sessions/{id}` — final checkpoint, then removal.
    fn delete(&self, id: &str) -> Response {
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        {
            let session = session.lock().expect("session poisoned");
            if let Err(e) = session.checkpoint_if_configured() {
                return error_response(500, &e);
            }
        }
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        sessions.remove(id);
        self.metrics.sessions.set(sessions.len() as i64);
        drop(sessions);
        let session = session.lock().expect("session poisoned");
        match session.status_json() {
            Ok(j) => Response::json(200, j.render()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }
}

/// What a graceful drain accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// Sessions live at drain time.
    pub sessions: usize,
    /// Sessions that wrote a final checkpoint.
    pub checkpointed: usize,
    /// Checkpoint failures (the drain completes regardless).
    pub errors: Vec<String>,
}

/// A running scoring server: the app plus its TCP listener.
pub struct ServeHandle {
    server: Server,
    app: Arc<ServeApp>,
}

impl ServeHandle {
    /// Binds the server and starts accepting. `addr` may use port `0` for
    /// an ephemeral port; read it back with [`ServeHandle::local_addr`].
    ///
    /// # Errors
    /// [`std::io::Error`] when the bind fails.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<ServeHandle> {
        let http = config.http.clone();
        let app = ServeApp::new(config);
        let handler_app = Arc::clone(&app);
        let server = Server::bind(
            addr,
            http,
            Arc::new(move |request: &Request| handler_app.handle(request)),
        )?;
        obs::event(
            obs::Level::Info,
            TARGET,
            "listening",
            &[("sessions", obs::Value::U64(0))],
        );
        Ok(ServeHandle { server, app })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The session registry/router, shared with the running server.
    pub fn app(&self) -> &Arc<ServeApp> {
        &self.app
    }

    /// Graceful drain: refuse new work, close the listener, let in-flight
    /// requests finish (flushing their batches through the normal request
    /// path), then write a final checkpoint for every session. Only after
    /// all of that does this return — the caller exits with the listener
    /// already closed and every session durable.
    pub fn drain(self) -> DrainReport {
        self.app.request_shutdown();
        // Stops accepting first (the listener closes), then joins the
        // connection workers — in-flight score requests complete and their
        // responses are written before this returns.
        self.server.shutdown();
        let (sessions, checkpointed, errors) = self.app.checkpoint_all();
        self.app.metrics.drains.inc();
        obs::event(
            obs::Level::Info,
            TARGET,
            "drained",
            &[
                ("sessions", obs::Value::U64(sessions as u64)),
                ("checkpointed", obs::Value::U64(checkpointed as u64)),
            ],
        );
        DrainReport {
            sessions,
            checkpointed,
            errors,
        }
    }
}

/// An error document: `{"error": "<msg>"}` with the given status.
fn error_response(status: u16, message: &str) -> Response {
    let body = Json::object()
        .field("error", message)
        .map(|j| j.render())
        .unwrap_or_else(|_| r#"{"error":"internal error"}"#.to_string());
    Response::json(status, body)
}
