#![warn(missing_docs)]

//! `hdoutlier serve` — a long-running network scoring server hosting many
//! concurrent sessions, each the serve-side twin of one `hdoutlier stream`
//! process.
//!
//! The HTTP surface (over [`hdoutlier_net`]):
//!
//! - `POST /sessions` — create a session from a JSON config (inline model
//!   or `model_path`, drift settings, batch size, error policy, checkpoint
//!   cadence, `resume`); responds `201` with the session status document;
//! - `POST /sessions/{id}/score` — NDJSON records in (one JSON array per
//!   line, `null` = missing), NDJSON verdicts out, byte-identical to
//!   `hdoutlier stream` over the same records because both transports call
//!   the renderers in [`hdoutlier_stream::ndjson`] and the same
//!   order-preserving `score_batch` discipline;
//! - `GET /sessions` / `GET /sessions/{id}` — status documents;
//! - `POST /sessions/{id}/checkpoint` — force an atomic checkpoint now;
//! - `DELETE /sessions/{id}` — final checkpoint, then remove;
//! - `POST /shutdown` — request a graceful drain (same effect as SIGTERM);
//! - `GET /metrics` / `/healthz` / `/snapshot` / `/status` / `/profile` —
//!   the shared telemetry responder from [`hdoutlier_obs`]; `/status`
//!   renders the SLO engine's live verdict, `/healthz` turns `503` when it
//!   is unhealthy, and `/profile?seconds=N&format=folded|svg|json` runs a
//!   live span-stack sampling session against the scoring traffic.
//!
//! Every request is identified: the `X-Request-Id` assigned by
//! [`hdoutlier_net`] (client-supplied or generated) is installed as the
//! thread's [`obs::RequestCtx`] for the length of the request, so events,
//! spans, and quarantine lines written while handling it carry
//! `request_id` (and `session_id` when the path names a session). Each
//! request also ends with one wide `access` event — route template,
//! status, byte counts, scoring activity, duration — the NDJSON access
//! log. Metrics are labeled by bounded route *templates*
//! (`/sessions/{id}/score`, not the raw path), and per-session record
//! counters are labeled by session id.
//!
//! Sessions are isolated: each lives behind its own mutex, so concurrent
//! score requests to different sessions proceed in parallel across the
//! server's connection workers, and a tripped breaker, drift alert, or
//! checkpoint failure in one session never leaks into another. Checkpoints
//! use the stream crate's [`Checkpoint`](hdoutlier_stream::Checkpoint)
//! file format, so a session checkpoint is also resumable by
//! `hdoutlier stream --resume`.
//!
//! Graceful drain ([`ServeHandle::drain`]) stops accepting new work,
//! lets in-flight requests finish (their batches flush through the normal
//! request path), writes a final checkpoint for every session, and only
//! then returns — the listener is closed before the process exits.

pub mod session;
pub mod signal;

use hdoutlier_json::Json;
use hdoutlier_net::{Request, Response, Server, ServerConfig};
use hdoutlier_obs as obs;
use session::{CreateError, Session, SessionConfig};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Event target for the serve subsystem.
const TARGET: &str = "hdoutlier.serve";

/// Tuning knobs for a scoring server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cap on live sessions; creates beyond it are refused with `503`.
    pub max_sessions: usize,
    /// Pool threads for each session's batched scoring.
    pub threads: usize,
    /// Directory for per-session checkpoint files (`<id>.ckpt.json`);
    /// `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// HTTP server tuning (workers, queue depth, body caps, timeouts).
    pub http: ServerConfig,
    /// SLO error-rate budget: the tolerated fraction of failing units
    /// (5xx requests per route, bad records per session) inside the
    /// rolling window before a key degrades.
    pub slo_error_rate: f64,
    /// SLO latency budget: the tolerated per-route p99 request duration,
    /// in milliseconds.
    pub slo_p99_ms: f64,
    /// The rolling window the SLO engine evaluates over.
    pub slo_window: Duration,
    /// Shed score POSTs while the SLO engine's overall verdict is
    /// unhealthy (probes and DELETEs are always admitted).
    pub shed_on_unhealthy: bool,
    /// Cap on concurrently-executing score POSTs; requests beyond it are
    /// shed with `503`. `0` disables the cap (the HTTP worker pool is then
    /// the only bound).
    pub shed_max_inflight: usize,
    /// The `Retry-After` delay attached to every shed/draining/over-cap
    /// `503`.
    pub shed_retry_after: Duration,
    /// Per-session idempotency cache entries (score responses remembered
    /// by client-supplied `X-Request-Id`); `0` disables replay.
    pub replay_cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 16,
            threads: hdoutlier_pool::default_threads(),
            checkpoint_dir: None,
            http: ServerConfig::default(),
            slo_error_rate: 0.05,
            slo_p99_ms: 250.0,
            slo_window: Duration::from_secs(60),
            shed_on_unhealthy: true,
            shed_max_inflight: 0,
            shed_retry_after: Duration::from_secs(1),
            replay_cache: 64,
        }
    }
}

/// How long an admission-control SLO verdict is reused before the engine
/// is re-consulted. Sampling the metrics registry per score request would
/// cost more than the scoring; a quarter second is far inside the SLO
/// window, so shedding still reacts promptly when health flips.
const SLO_VERDICT_TTL: Duration = Duration::from_millis(250);

/// Metric handles resolved once at construction. Label values are bounded:
/// `route` is always a template from [`route_of`] and `status` one of the
/// handful of codes the router produces; only `session` grows with use,
/// capped by `max_sessions` at any moment.
struct ServeMetrics {
    sessions: obs::Gauge,
    requests: obs::CounterVec,
    request_duration_us: obs::HistogramVec,
    records: obs::CounterVec,
    record_errors: obs::CounterVec,
    drains: obs::Counter,
    shed: obs::CounterVec,
    replay_hits: obs::Counter,
    drain_errors: obs::Counter,
}

impl ServeMetrics {
    fn resolve() -> Self {
        let r = obs::registry();
        ServeMetrics {
            sessions: r.gauge("hdoutlier.serve.sessions"),
            requests: r.counter_vec("hdoutlier.serve.requests", &["route", "status"]),
            request_duration_us: r.histogram_vec("hdoutlier.serve.request_duration_us", &["route"]),
            records: r.counter_vec("hdoutlier.serve.records", &["session"]),
            record_errors: r.counter_vec("hdoutlier.serve.record_errors", &["session"]),
            drains: r.counter("hdoutlier.serve.drains"),
            shed: r.counter_vec("hdoutlier.serve.shed", &["reason"]),
            replay_hits: r.counter("hdoutlier.serve.replay_hits"),
            drain_errors: r.counter("hdoutlier.serve.drain_errors"),
        }
    }
}

/// Collapses a request path to its route template so metric and SLO label
/// cardinality stays bounded — session ids never become route labels.
fn route_of(path: &str) -> &'static str {
    match path {
        "/sessions" | "/sessions/" => "/sessions",
        "/shutdown" => "/shutdown",
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/snapshot" => "/snapshot",
        "/status" => "/status",
        "/profile" => "/profile",
        _ => match path.strip_prefix("/sessions/") {
            None => "other",
            Some(rest) => match rest.split_once('/') {
                None => "/sessions/{id}",
                Some((_, "score")) => "/sessions/{id}/score",
                Some((_, "checkpoint")) => "/sessions/{id}/checkpoint",
                Some(_) => "other",
            },
        },
    }
}

/// The session id a path addresses, when it names one.
fn session_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/sessions/")?;
    let id = rest.split('/').next().unwrap_or(rest);
    (!id.is_empty()).then_some(id)
}

/// Scoring activity accumulated while routing one request, folded into the
/// trailing `access` event.
#[derive(Default)]
struct Activity {
    records: u64,
    outliers: u64,
    errors: u64,
    /// The request was refused by admission control before reaching its
    /// handler. Shed refusals are accounted by `hdoutlier.serve.shed` and
    /// kept out of `requests`/`request_duration_us` — those two feed the
    /// SLO engine, and a shed 503 counting as a route error would make the
    /// admission controller's own refusals hold the verdict unhealthy
    /// forever under steady client retries.
    shed: bool,
}

/// The session registry and request router — everything about the scoring
/// server except the TCP listener (which [`ServeHandle`] adds).
pub struct ServeApp {
    config: ServeConfig,
    sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    metrics: ServeMetrics,
    slo: obs::SloEngine,
    /// Score POSTs currently executing (admission-control signal).
    inflight_scores: AtomicU64,
    /// The admission controller's cached SLO verdict and when it was
    /// computed (refreshed every [`SLO_VERDICT_TTL`]).
    slo_verdict: Mutex<Option<(Instant, obs::SloVerdict)>>,
}

impl ServeApp {
    /// Builds an app over a validated configuration.
    pub fn new(config: ServeConfig) -> Arc<ServeApp> {
        let slo = obs::SloEngine::new(
            obs::SloThresholds {
                max_error_rate: config.slo_error_rate,
                max_p99_us: config.slo_p99_ms * 1_000.0,
            },
            config.slo_window,
        );
        let app = Arc::new(ServeApp {
            config,
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            metrics: ServeMetrics::resolve(),
            slo,
            inflight_scores: AtomicU64::new(0),
            slo_verdict: Mutex::new(None),
        });
        // Establish a baseline SLO sample now, so every later evaluation
        // deltas against *this server's* start rather than a zero origin —
        // the process-global metrics registry may carry history from an
        // earlier server in the same process (tests, embedding), and that
        // history must not feed the admission controller.
        app.sample_slo();
        app
    }

    /// The configuration the app was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The SLO engine judging this server (powers `/status`).
    pub fn slo(&self) -> &obs::SloEngine {
        &self.slo
    }

    /// Whether a drain has been requested (`POST /shutdown` or
    /// [`ServeApp::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: new sessions and score requests are
    /// refused with `503` from this moment; the owner (the serve command's
    /// wait loop) observes the flag and runs [`ServeHandle::drain`].
    pub fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Live session ids, sorted.
    pub fn session_ids(&self) -> Vec<String> {
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Writes a final checkpoint for every session that has one configured.
    /// Returns `(sessions, checkpointed, errors)`; write failures are
    /// collected rather than aborting the drain (the other sessions still
    /// deserve their checkpoints).
    pub fn checkpoint_all(&self) -> (usize, usize, Vec<String>) {
        let sessions: Vec<Arc<Mutex<Session>>> = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .values()
            .cloned()
            .collect();
        let total = sessions.len();
        let mut checkpointed = 0usize;
        let mut errors = Vec::new();
        for session in sessions {
            let session = session.lock().expect("session poisoned");
            match session.checkpoint_if_configured() {
                Ok(true) => checkpointed += 1,
                Ok(false) => {}
                Err(e) => errors.push(format!("session {}: {e}", session.id())),
            }
        }
        (total, checkpointed, errors)
    }

    /// Handles one request. This is the [`hdoutlier_net::Handler`] body:
    /// it installs the request identity, routes, then settles the
    /// request-scoped telemetry — labeled metrics and the `access` event.
    pub fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        let route = route_of(&request.path);
        // The context guard is declared before the span so the span drops
        // (capturing its trace args) while the identity is still installed.
        let ctx = match session_of(&request.path) {
            Some(id) => obs::RequestCtx::with_session(&request.request_id, id),
            None => obs::RequestCtx::new(&request.request_id),
        };
        let _ctx = obs::set_request_ctx(ctx);
        let mut activity = Activity::default();
        let response = {
            let _span = obs::span(obs::Level::Debug, TARGET, "request");
            self.route(request, &mut activity)
        };
        let duration = start.elapsed();
        let status = response.status.to_string();
        // Shed refusals never reached a handler: they are counted under
        // `shed{reason}` only (see [`Activity::shed`]), so admission
        // control's 503s cannot feed the SLO verdict it sheds on.
        if !activity.shed {
            self.metrics.requests.with(&[route, &status]).inc();
            self.metrics
                .request_duration_us
                .with(&[route])
                .record_duration(duration);
        }
        obs::event(
            obs::Level::Info,
            TARGET,
            "access",
            &[
                ("route", obs::Value::Str(route)),
                ("status", obs::Value::U64(u64::from(response.status))),
                ("bytes_in", obs::Value::U64(request.body.len() as u64)),
                ("bytes_out", obs::Value::U64(response.body.len() as u64)),
                ("records", obs::Value::U64(activity.records)),
                ("outliers", obs::Value::U64(activity.outliers)),
                ("errors", obs::Value::U64(activity.errors)),
                ("duration_us", obs::Value::U64(duration.as_micros() as u64)),
                ("shed", obs::Value::Bool(activity.shed)),
            ],
        );
        response
    }

    /// Routes one request to its endpoint.
    fn route(&self, request: &Request, activity: &mut Activity) -> Response {
        let path = request.path.as_str();
        let method = request.method.as_str();
        if let Some(rest) = path.strip_prefix("/sessions") {
            return match (method, rest) {
                ("POST", "" | "/") => self.create_session(request, activity),
                ("GET", "" | "/") => self.list_sessions(),
                _ => {
                    let Some(rest) = rest.strip_prefix('/') else {
                        return error_response(404, &format!("no route for {method} {path}"));
                    };
                    let (id, action) = match rest.split_once('/') {
                        None => (rest, None),
                        Some((id, action)) => (id, Some(action)),
                    };
                    match (method, action) {
                        ("POST", Some("score")) => self.score(id, request, activity),
                        ("POST", Some("checkpoint")) => self.checkpoint(id),
                        ("GET", None) => self.status(id),
                        ("DELETE", None) => self.delete(id),
                        _ => error_response(404, &format!("no route for {method} {path}")),
                    }
                }
            };
        }
        if path == "/shutdown" {
            if method != "POST" {
                return error_response(405, "use POST /shutdown");
            }
            self.request_shutdown();
            obs::event(obs::Level::Info, TARGET, "shutdown_requested", &[]);
            return Response::json(200, r#"{"draining":true}"#);
        }
        // Probes drive the SLO sampling cadence: each `/status` or
        // `/healthz` hit feeds the engine a fresh cumulative reading
        // before the shared responder evaluates it.
        if method == "GET" && matches!(path, "/status" | "/healthz") {
            self.sample_slo();
        }
        match obs::telemetry_response(request, obs::registry(), Some(&self.slo)) {
            Some(response) => response,
            None => error_response(404, &format!("no route for {method} {path}")),
        }
    }

    /// Feeds the SLO engine one cumulative reading per key, derived from
    /// the live metrics registry: per-route request totals, 5xx errors,
    /// and latency buckets; per-session record totals and bad-record
    /// errors.
    fn sample_slo(&self) {
        let mut routes: BTreeMap<String, obs::SloSample> = BTreeMap::new();
        let mut sessions: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for metric in obs::registry().snapshot() {
            let label = |key: &str| {
                metric
                    .labels
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            };
            match (metric.name.as_str(), &metric.value) {
                ("hdoutlier.serve.requests", obs::SnapshotValue::Counter(n)) => {
                    let (Some(route), Some(status)) = (label("route"), label("status")) else {
                        continue;
                    };
                    let entry = routes.entry(route).or_default();
                    entry.total += n;
                    if status.starts_with('5') {
                        entry.errors += n;
                    }
                }
                ("hdoutlier.serve.request_duration_us", obs::SnapshotValue::Histogram(h)) => {
                    let Some(route) = label("route") else {
                        continue;
                    };
                    routes.entry(route).or_default().buckets = h.buckets.clone();
                }
                ("hdoutlier.serve.records", obs::SnapshotValue::Counter(n)) => {
                    let Some(id) = label("session") else { continue };
                    sessions.entry(id).or_default().0 += n;
                }
                ("hdoutlier.serve.record_errors", obs::SnapshotValue::Counter(n)) => {
                    let Some(id) = label("session") else { continue };
                    sessions.entry(id).or_default().1 += n;
                }
                _ => {}
            }
        }
        for (route, sample) in routes {
            self.slo.observe(&format!("route:{route}"), sample);
        }
        for (id, (records, errors)) in sessions {
            self.slo.observe(
                &format!("session:{id}"),
                obs::SloSample {
                    total: records + errors,
                    errors,
                    buckets: Vec::new(),
                },
            );
        }
    }

    /// `POST /sessions`.
    fn create_session(&self, request: &Request, activity: &mut Activity) -> Response {
        if self.shutdown_requested() {
            return self.shed(
                "draining",
                activity,
                error_response(503, "server is draining"),
            );
        }
        let body = match request.body_utf8() {
            Ok(b) => b,
            Err(e) => return error_response(400, e),
        };
        let json = match Json::parse(body) {
            Ok(j) => j,
            Err(e) => return error_response(400, &format!("body is not valid JSON: {e}")),
        };
        let default_id = format!("s{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let read_model = |path: &str| {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read model_path {path}: {e}"))
        };
        let config = match SessionConfig::from_json(&json, default_id, &read_model) {
            Ok(c) => c,
            Err(e) => return error_response(400, &e),
        };
        let id = config.id.clone();
        // Hold the registry lock across create so two concurrent creates of
        // the same id cannot both pass the duplicate check; session
        // construction is quick (the model is already parsed).
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        if sessions.len() >= self.config.max_sessions {
            return error_response(
                503,
                &format!("session limit reached ({})", self.config.max_sessions),
            )
            .with_retry_after(self.config.shed_retry_after);
        }
        if sessions.contains_key(&id) {
            return error_response(409, &format!("session {id:?} already exists"));
        }
        let session = match Session::create(
            config,
            self.config.checkpoint_dir.as_deref(),
            self.config.replay_cache,
        ) {
            Ok(s) => s,
            Err(CreateError::Config(e)) => return error_response(400, &e),
            Err(CreateError::Resume(e)) => return error_response(409, &e),
            Err(CreateError::Io(e)) => return error_response(500, &e),
        };
        let status = match session.status_json() {
            Ok(j) => j.render(),
            Err(e) => return error_response(500, &e.to_string()),
        };
        obs::event(
            obs::Level::Info,
            TARGET,
            "session_created",
            &[
                ("records", obs::Value::U64(session.records_scored())),
                ("sessions", obs::Value::U64(sessions.len() as u64 + 1)),
            ],
        );
        sessions.insert(id, Arc::new(Mutex::new(session)));
        self.metrics.sessions.set(sessions.len() as i64);
        Response::json(201, status)
    }

    /// `GET /sessions`.
    fn list_sessions(&self) -> Response {
        let sessions: Vec<Arc<Mutex<Session>>> = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .values()
            .cloned()
            .collect();
        let mut items = Vec::with_capacity(sessions.len());
        for session in sessions {
            match session.lock().expect("session poisoned").status_json() {
                Ok(j) => items.push(j),
                Err(e) => return error_response(500, &e.to_string()),
            }
        }
        match Json::object().field("sessions", Json::Array(items)) {
            Ok(j) => Response::json(200, j.render()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// Clones the handle for one session, or `None`.
    fn session(&self, id: &str) -> Option<Arc<Mutex<Session>>> {
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .get(id)
            .cloned()
    }

    /// Marks a refused request as shed: counts it under its reason, emits
    /// the `shed` Warn event, flags the [`Activity`] so request-scoped
    /// telemetry keeps the refusal out of the SLO-feeding metrics, and
    /// stamps the response with `Retry-After` so well-behaved clients back
    /// off instead of hammering.
    fn shed(&self, reason: &'static str, activity: &mut Activity, response: Response) -> Response {
        activity.shed = true;
        self.metrics.shed.with(&[reason]).inc();
        obs::event(
            obs::Level::Warn,
            TARGET,
            "shed",
            &[("reason", obs::Value::Str(reason))],
        );
        response.with_retry_after(self.config.shed_retry_after)
    }

    /// The SLO verdict the admission controller acts on — re-sampled from
    /// the live registry at most once per [`SLO_VERDICT_TTL`].
    ///
    /// Only the *score route's* key is consulted: per-session keys turn
    /// unhealthy when a client sends bad records, which is that client's
    /// data-quality problem and no reason to refuse everyone else, and
    /// other routes' health does not indicate scoring overload.
    fn admission_verdict(&self) -> obs::SloVerdict {
        let mut cached = self.slo_verdict.lock().expect("slo verdict poisoned");
        let now = Instant::now();
        if let Some((at, verdict)) = *cached {
            if now.duration_since(at) < SLO_VERDICT_TTL {
                return verdict;
            }
        }
        self.sample_slo();
        let verdict = self
            .slo
            .evaluate()
            .keys
            .iter()
            .find(|k| k.key == "route:/sessions/{id}/score")
            .map_or(obs::SloVerdict::Healthy, |k| k.verdict);
        *cached = Some((now, verdict));
        verdict
    }

    /// The admission decision for one score POST: the in-flight slot the
    /// admitted request holds for its whole execution, or the shed `503`
    /// (in-flight cap reached, SLO unhealthy). Probe routes, session
    /// management, and DELETE never pass through here — only scoring is
    /// load-shed.
    fn admit_score(&self, activity: &mut Activity) -> Result<InflightGuard<'_>, Response> {
        // Claim the slot *before* checking the cap: a load-then-increment
        // window would let every worker at cap-1 pass at once. The guard's
        // prior count is the atomic admission test; on shed it drops here,
        // releasing the claim.
        let guard = InflightGuard::enter(&self.inflight_scores);
        let cap = self.config.shed_max_inflight as u64;
        if cap > 0 && guard.prior >= cap {
            return Err(self.shed(
                "inflight",
                activity,
                error_response(503, &format!("score concurrency cap reached ({cap})")),
            ));
        }
        if self.config.shed_on_unhealthy && self.admission_verdict() == obs::SloVerdict::Unhealthy {
            return Err(self.shed(
                "slo",
                activity,
                error_response(503, "shedding load: SLO verdict is unhealthy"),
            ));
        }
        Ok(guard)
    }

    /// `POST /sessions/{id}/score`.
    fn score(&self, id: &str, request: &Request, activity: &mut Activity) -> Response {
        if self.shutdown_requested() {
            return self.shed(
                "draining",
                activity,
                error_response(503, "server is draining"),
            );
        }
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        let _inflight = match self.admit_score(activity) {
            Ok(guard) => guard,
            Err(refused) => return refused,
        };
        let body = match request.body_utf8() {
            Ok(b) => b,
            Err(e) => return error_response(400, e),
        };
        // Only a *client-supplied* request id keys the replay cache:
        // server-generated ids are unique per request, so caching under
        // them could never hit and would only evict real entries.
        let replay_key = request
            .header("x-request-id")
            .filter(|sent| *sent == request.request_id);
        // The session lock is held for the whole request: scoring is
        // stateful and order-defining. Other sessions are untouched — their
        // requests run concurrently on other connection workers.
        let mut session = session.lock().expect("session poisoned");
        if let Some(key) = replay_key {
            match session.replay_lookup(key, body) {
                session::ReplayLookup::Miss => {}
                session::ReplayLookup::Conflict => {
                    return error_response(
                        409,
                        "X-Request-Id was already used for a different body; \
                         retries must resend the original request unchanged",
                    );
                }
                session::ReplayLookup::Hit {
                    status,
                    body,
                    json_error,
                } => {
                    self.metrics.replay_hits.inc();
                    obs::event(obs::Level::Info, TARGET, "replay_hit", &[]);
                    return if json_error {
                        Response::json(status, body)
                    } else {
                        Response::ndjson(status, body)
                    };
                }
            }
        }
        if let Some(reason) = session.tripped() {
            return error_response(409, &format!("session tripped: {reason}"));
        }
        let outcome = session.score_lines(body, self.config.threads);
        activity.records = outcome.records;
        activity.outliers = outcome.outliers;
        activity.errors = outcome.errors;
        self.metrics.records.with(&[id]).add(outcome.records);
        self.metrics.record_errors.with(&[id]).add(outcome.errors);
        // Whatever the outcome, the scorer has advanced — remember the
        // response under the client's id so a retry replays instead of
        // double-scoring.
        let remember = |session: &mut Session, status: u16, text: &str, json_error: bool| {
            if let Some(key) = replay_key {
                session.replay_store(key, body, status, text, json_error);
            }
        };
        if let Some(fatal) = outcome.fatal {
            let response = error_response(500, &fatal);
            let text = String::from_utf8_lossy(&response.body).into_owned();
            remember(&mut session, 500, &text, true);
            return response;
        }
        if outcome.tripped.is_some() {
            obs::event(
                obs::Level::Warn,
                TARGET,
                "session_tripped",
                &[("records", obs::Value::U64(session.records_scored()))],
            );
            // The verdicts computed before the trip are still delivered —
            // they are exactly what `stream` would have written before
            // aborting — under a conflict status so the client knows the
            // stream ended early. The reason rides in the status document.
            remember(&mut session, 409, &outcome.ndjson, false);
            return Response::ndjson(409, outcome.ndjson);
        }
        remember(&mut session, 200, &outcome.ndjson, false);
        Response::ndjson(200, outcome.ndjson)
    }

    /// `GET /sessions/{id}`.
    fn status(&self, id: &str) -> Response {
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        let session = session.lock().expect("session poisoned");
        match session.status_json() {
            Ok(j) => Response::json(200, j.render()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// `POST /sessions/{id}/checkpoint`.
    fn checkpoint(&self, id: &str) -> Response {
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        let session = session.lock().expect("session poisoned");
        match session.checkpoint_now() {
            Err(e) if e.contains("checkpoint directory") => error_response(400, &e),
            Err(e) => error_response(500, &e),
            Ok(path) => {
                let body = Json::object()
                    .field("checkpoint", path.display().to_string())
                    .and_then(|j| j.field("records_scored", session.records_scored()));
                match body {
                    Ok(j) => Response::json(200, j.render()),
                    Err(e) => error_response(500, &e.to_string()),
                }
            }
        }
    }

    /// `DELETE /sessions/{id}` — final checkpoint, then removal.
    fn delete(&self, id: &str) -> Response {
        let Some(session) = self.session(id) else {
            return error_response(404, &format!("no session {id:?}"));
        };
        {
            let session = session.lock().expect("session poisoned");
            if let Err(e) = session.checkpoint_if_configured() {
                return error_response(500, &e);
            }
        }
        let mut sessions = self.sessions.lock().expect("session registry poisoned");
        sessions.remove(id);
        self.metrics.sessions.set(sessions.len() as i64);
        drop(sessions);
        let session = session.lock().expect("session poisoned");
        match session.status_json() {
            Ok(j) => Response::json(200, j.render()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }
}

/// RAII in-flight counter: admitted score requests hold one for their
/// whole execution, so the admission controller sees a live concurrency
/// reading even when a handler exits early. `prior` is the count observed
/// by the claiming `fetch_add` — the admission controller's atomic
/// cap test (claim first, shed and release when over).
struct InflightGuard<'a> {
    counter: &'a AtomicU64,
    prior: u64,
}

impl<'a> InflightGuard<'a> {
    fn enter(counter: &'a AtomicU64) -> InflightGuard<'a> {
        let prior = counter.fetch_add(1, Ordering::SeqCst);
        InflightGuard { counter, prior }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What a graceful drain accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// Sessions live at drain time.
    pub sessions: usize,
    /// Sessions that wrote a final checkpoint.
    pub checkpointed: usize,
    /// Checkpoint failures (the drain completes regardless).
    pub errors: Vec<String>,
}

/// A running scoring server: the app plus its TCP listener.
pub struct ServeHandle {
    server: Server,
    app: Arc<ServeApp>,
}

impl ServeHandle {
    /// Binds the server and starts accepting. `addr` may use port `0` for
    /// an ephemeral port; read it back with [`ServeHandle::local_addr`].
    ///
    /// # Errors
    /// [`std::io::Error`] when the bind fails.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<ServeHandle> {
        let http = config.http.clone();
        let app = ServeApp::new(config);
        let handler_app = Arc::clone(&app);
        let server = Server::bind(
            addr,
            http,
            Arc::new(move |request: &Request| handler_app.handle(request)),
        )?;
        obs::event(
            obs::Level::Info,
            TARGET,
            "listening",
            &[("sessions", obs::Value::U64(0))],
        );
        Ok(ServeHandle { server, app })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The session registry/router, shared with the running server.
    pub fn app(&self) -> &Arc<ServeApp> {
        &self.app
    }

    /// Graceful drain: refuse new work, close the listener, let in-flight
    /// requests finish (flushing their batches through the normal request
    /// path), then write a final checkpoint for every session. Only after
    /// all of that does this return — the caller exits with the listener
    /// already closed and every session durable.
    pub fn drain(self) -> DrainReport {
        self.app.request_shutdown();
        // Stops accepting first (the listener closes), then joins the
        // connection workers — in-flight score requests complete and their
        // responses are written before this returns.
        self.server.shutdown();
        let (sessions, checkpointed, errors) = self.app.checkpoint_all();
        self.app.metrics.drains.inc();
        // A drain-time checkpoint failure is the last chance to notice
        // state loss before the process exits: each one gets its own Error
        // event and counter tick (the CLI also exits non-zero on any).
        for error in &errors {
            self.app.metrics.drain_errors.inc();
            obs::event(
                obs::Level::Error,
                TARGET,
                "drain_error",
                &[("error", obs::Value::Str(error))],
            );
        }
        obs::event(
            obs::Level::Info,
            TARGET,
            "drained",
            &[
                ("sessions", obs::Value::U64(sessions as u64)),
                ("checkpointed", obs::Value::U64(checkpointed as u64)),
            ],
        );
        DrainReport {
            sessions,
            checkpointed,
            errors,
        }
    }
}

/// An error document: `{"error": "<msg>"}` with the given status.
fn error_response(status: u16, message: &str) -> Response {
    let body = Json::object()
        .field("error", message)
        .map(|j| j.render())
        .unwrap_or_else(|_| r#"{"error":"internal error"}"#.to_string());
    Response::json(status, body)
}
