//! SIGTERM/SIGINT → atomic-flag bridge for graceful drain.
//!
//! The serve command must keep scoring while a drain request is pending,
//! so termination signals cannot do their work inside the handler — the
//! handler only flips a flag, and the command's wait loop observes it and
//! runs the drain (stop accepting, flush in-flight batches, final
//! checkpoint per session) on a normal thread.
//!
//! This is a minimal `signal(2)` shim rather than a full `sigaction`
//! binding: the handler stores to a static atomic (async-signal-safe) and
//! nothing else. On non-Unix targets installation is a no-op and drain is
//! reachable only through `POST /shutdown`.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; observed by [`termination_requested`].
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// The installed handler: flips the flag, nothing more.
    extern "C" fn mark(_signum: i32) {
        super::TERM.store(true, super::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, mark);
            signal(SIGINT, mark);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that set the termination flag. Safe to
/// call more than once; later installations are idempotent.
pub fn install_termination_flag() {
    imp::install();
}

/// Whether a termination signal has arrived since process start.
pub fn termination_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Clears the flag (tests re-enter the wait loop within one process).
pub fn reset_termination_flag() {
    TERM.store(false, Ordering::SeqCst);
}
