//! Chaos tests for the serve subsystem's overload and crash behavior:
//! idempotent score retries through the replay cache, SLO- and
//! concurrency-driven load shedding with recovery, and checkpoint
//! corruption/kill-during-save recovery via the `.prev` generation — all
//! at the [`ServeApp`] level, hermetic and deterministic.
//!
//! The metrics registry is process-global, so tests that are not *about*
//! SLO shedding disable it (`shed_on_unhealthy: false`): the two tests
//! that deliberately storm the score route with 500s would otherwise
//! flip the shared route verdict under their neighbors.

use hdoutlier_core::{FittedModel, OutlierDetector, SearchMethod};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_data::Dataset;
use hdoutlier_json::Json;
use hdoutlier_net::{Request, Response};
use hdoutlier_serve::{ServeApp, ServeConfig};
use hdoutlier_stream::checkpoint::{prev_path, staging_path};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fitted(seed: u64) -> (FittedModel, Dataset) {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 600,
        n_dims: 5,
        n_outliers: 4,
        strong_groups: Some(2),
        seed,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&planted.dataset)
        .unwrap();
    (model, planted.dataset)
}

/// A config for tests that are not about SLO shedding (see module docs).
fn quiet_config() -> ServeConfig {
    ServeConfig {
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    }
}

/// A request as the HTTP layer would deliver it when the client sent a
/// well-formed `X-Request-Id` (the net layer echoes it into both the
/// header list and `request_id`).
fn req_with_id(method: &str, path: &str, body: impl Into<Vec<u8>>, client_id: &str) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: None,
        headers: vec![("x-request-id".to_string(), client_id.to_string())],
        body: body.into(),
        http1_0: false,
        request_id: client_id.to_string(),
    }
}

/// A request whose id the *server* generated (no client header).
fn req(method: &str, path: &str, body: impl Into<Vec<u8>>) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: None,
        headers: Vec::new(),
        body: body.into(),
        http1_0: false,
        request_id: "generated-id".to_string(),
    }
}

fn create_body(model: &FittedModel, extra: &str) -> String {
    let model_json = hdoutlier_stream::model_io::to_json(model).unwrap().render();
    if extra.is_empty() {
        format!("{{\"model\": {model_json}}}")
    } else {
        format!("{{{extra}, \"model\": {model_json}}}")
    }
}

fn ndjson_rows(ds: &Dataset, range: std::ops::Range<usize>) -> String {
    let mut out = String::new();
    for i in range {
        let row = Json::Array(ds.row(i).iter().map(|&v| Json::from(v)).collect());
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

fn body_text(response: &Response) -> &str {
    std::str::from_utf8(&response.body).unwrap()
}

fn header<'a>(response: &'a Response, name: &str) -> Option<&'a str> {
    response
        .headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hdoutlier-serve-chaos")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn records_scored(app: &ServeApp, id: &str) -> f64 {
    let status = app.handle(&req("GET", &format!("/sessions/{id}"), ""));
    Json::parse(body_text(&status))
        .unwrap()
        .get("records_scored")
        .unwrap()
        .as_number()
        .unwrap()
}

/// The acceptance scenario: a duplicate `X-Request-Id` score retry returns
/// the cached response — byte-identical — without re-scoring, so the
/// session's verdict stream equals a no-retry run's.
#[test]
fn duplicate_request_id_retry_replays_without_rescoring() {
    let (model, ds) = fitted(83);

    // Reference run: no retries anywhere.
    let reference = ServeApp::new(quiet_config());
    reference.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"r\""),
    ));
    let ref1 = reference.handle(&req("POST", "/sessions/r/score", ndjson_rows(&ds, 0..40)));
    let ref2 = reference.handle(&req("POST", "/sessions/r/score", ndjson_rows(&ds, 40..80)));

    // Retry run: the first batch is sent three times under one request id
    // (a client retrying a response it never saw).
    let app = ServeApp::new(quiet_config());
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"r\""),
    ));
    let batch1 = ndjson_rows(&ds, 0..40);
    let first = app.handle(&req_with_id(
        "POST",
        "/sessions/r/score",
        batch1.clone(),
        "retry-1",
    ));
    assert_eq!(first.status, 200, "{}", body_text(&first));
    for _ in 0..2 {
        let again = app.handle(&req_with_id(
            "POST",
            "/sessions/r/score",
            batch1.clone(),
            "retry-1",
        ));
        assert_eq!(again.status, 200);
        assert_eq!(again.body, first.body, "replay must be byte-identical");
    }
    // The retries scored nothing: the session advanced by exactly one batch.
    assert_eq!(records_scored(&app, "r"), 40.0);

    // The stream continues exactly where a no-retry run would be.
    let second = app.handle(&req("POST", "/sessions/r/score", ndjson_rows(&ds, 40..80)));
    assert_eq!(body_text(&first), body_text(&ref1));
    assert_eq!(body_text(&second), body_text(&ref2));
}

/// Reusing a request id with a *different* body is a client bug the cache
/// refuses (409) rather than replaying the wrong verdicts — and a
/// server-generated id (client sent none) is never cached at all.
#[test]
fn replay_cache_rejects_id_reuse_and_ignores_generated_ids() {
    let (model, ds) = fitted(89);
    let app = ServeApp::new(quiet_config());
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"c\""),
    ));

    let first = app.handle(&req_with_id(
        "POST",
        "/sessions/c/score",
        ndjson_rows(&ds, 0..10),
        "reused-id",
    ));
    assert_eq!(first.status, 200, "{}", body_text(&first));
    let conflict = app.handle(&req_with_id(
        "POST",
        "/sessions/c/score",
        ndjson_rows(&ds, 10..20),
        "reused-id",
    ));
    assert_eq!(conflict.status, 409, "{}", body_text(&conflict));
    assert!(
        body_text(&conflict).contains("already used"),
        "{}",
        body_text(&conflict)
    );
    assert_eq!(
        records_scored(&app, "c"),
        10.0,
        "the conflicting body must not be scored"
    );

    // Two sends without a client id: both score (no accidental replay).
    let a = app.handle(&req("POST", "/sessions/c/score", ndjson_rows(&ds, 10..20)));
    let b = app.handle(&req("POST", "/sessions/c/score", ndjson_rows(&ds, 10..20)));
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_eq!(records_scored(&app, "c"), 30.0);
}

/// The in-flight admission cap: while one slow score POST executes, a
/// concurrent one is shed 503 + Retry-After; once the slot frees, the
/// retried request is admitted — shed traffic recovers to served.
#[test]
fn inflight_cap_sheds_concurrent_scores_then_recovers() {
    let (model, ds) = fitted(97);
    let app = ServeApp::new(ServeConfig {
        shed_max_inflight: 1,
        shed_retry_after: Duration::from_secs(7),
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    });
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"s\""),
    ));

    // A big single-batch request to hold the in-flight slot for a while.
    // The slow client itself retries politely if it loses the admission
    // race to one of the probes below.
    let mut big = String::new();
    for _ in 0..40 {
        big.push_str(&ndjson_rows(&ds, 0..600));
    }
    let slow_app = Arc::clone(&app);
    let slow = std::thread::spawn(move || loop {
        let response = slow_app.handle(&req("POST", "/sessions/s/score", big.clone()));
        if response.status == 200 {
            return response;
        }
        assert_eq!(response.status, 503, "{}", body_text(&response));
        std::thread::sleep(Duration::from_millis(5));
    });

    // Probe until we observe a shed — the window where the slow request
    // holds the only slot — bounded so a scheduling hiccup fails loudly.
    let mut shed_response = None;
    for _ in 0..400 {
        let probe = app.handle(&req("POST", "/sessions/s/score", ndjson_rows(&ds, 0..1)));
        if probe.status == 503 {
            shed_response = Some(probe);
            break;
        }
        assert_eq!(probe.status, 200, "{}", body_text(&probe));
        std::thread::sleep(Duration::from_millis(2));
    }
    let shed = shed_response.expect("never observed a shed while a score was in flight");
    assert_eq!(header(&shed, "retry-after"), Some("7"));
    assert!(
        body_text(&shed).contains("concurrency cap"),
        "{}",
        body_text(&shed)
    );

    assert_eq!(slow.join().expect("slow scorer").status, 200);
    // Recovery: the slot is free, the retried request is admitted and served.
    let retried = app.handle(&req("POST", "/sessions/s/score", ndjson_rows(&ds, 0..1)));
    assert_eq!(retried.status, 200, "{}", body_text(&retried));
}

/// SLO-driven shedding: sustained 5xx on the score route flips the route
/// verdict unhealthy and the admission controller sheds further score
/// POSTs with 503 + Retry-After — while probe routes stay admitted.
#[test]
fn unhealthy_score_route_slo_sheds_scores_but_admits_probes() {
    let (model, ds) = fitted(101);
    // checkpoint_every=1 against a checkpoint "directory" that is a file:
    // every admitted score request fails its checkpoint write — a
    // deterministic stream of route 500s to feed the SLO engine.
    let dir = temp_dir("slo-shed");
    let bogus = dir.join("not-a-dir");
    std::fs::write(&bogus, "occupied").unwrap();
    let app = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(bogus),
        shed_retry_after: Duration::from_secs(3),
        ..ServeConfig::default()
    });
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"u\", \"checkpoint_every\": 1"),
    ));

    // Keep sending until the admission controller turns us away. The
    // verdict is cached ~250ms, so pace the loop past a few refreshes.
    let mut shed = None;
    for _ in 0..40 {
        let response = app.handle(&req("POST", "/sessions/u/score", ndjson_rows(&ds, 0..1)));
        match response.status {
            500 => {} // admitted, failed on the checkpoint — feeds the SLO
            503 => {
                shed = Some(response);
                break;
            }
            other => panic!("unexpected status {other}: {}", body_text(&response)),
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    let shed = shed.expect("the failing score route never tripped SLO shedding");
    assert_eq!(header(&shed, "retry-after"), Some("3"));
    assert!(body_text(&shed).contains("SLO"), "{}", body_text(&shed));

    // The always-admitted routes still answer while scoring is shed.
    assert_eq!(app.handle(&req("GET", "/status", "")).status, 200);
    assert_eq!(app.handle(&req("GET", "/metrics", "")).status, 200);
    assert_eq!(app.handle(&req("GET", "/sessions/u", "")).status, 200);
    // DELETE is admitted too: it reaches its (failing) final checkpoint
    // instead of being shed.
    let deleted = app.handle(&req("DELETE", "/sessions/u", ""));
    assert_eq!(deleted.status, 500, "{}", body_text(&deleted));
}

/// Regression: the admission controller's own 503s must not feed the SLO
/// engine. If shed refusals counted as route 5xx, steady client retries
/// would hold the error rate near 1.0 and the score route would shed
/// forever — recovery would require traffic to *stop* for a full window.
/// Here the client never stops sending: once the fault is repaired, shed
/// refusals add no new route errors, so the next SLO readings delta to
/// zero against the in-window baseline and scoring must come back while
/// shed traffic is still flowing.
#[test]
fn slo_shedding_recovers_under_sustained_traffic() {
    let (model, ds) = fitted(107);
    // checkpoint_every=1 against a checkpoint "directory" that is a file —
    // the same deterministic 500 generator as the shed test above, but
    // this fault is repairable mid-test.
    let dir = temp_dir("shed-recover");
    let ckpt = dir.join("ckpt");
    std::fs::write(&ckpt, "occupied").unwrap();
    let app = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(ckpt.clone()),
        slo_window: Duration::from_secs(2),
        shed_retry_after: Duration::from_secs(1),
        ..ServeConfig::default()
    });
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"w\", \"checkpoint_every\": 1"),
    ));

    // Phase 1: genuine 500s flip the route verdict and shedding starts.
    let mut shed = false;
    for _ in 0..40 {
        let response = app.handle(&req("POST", "/sessions/w/score", ndjson_rows(&ds, 0..1)));
        match response.status {
            500 => {}
            503 => {
                shed = true;
                break;
            }
            other => panic!("unexpected status {other}: {}", body_text(&response)),
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(shed, "the failing score route never tripped SLO shedding");

    // Phase 2: repair the fault (the path becomes a real directory) and
    // keep hammering without a pause. Every refusal during this phase is a
    // shed 503; were those counted as route errors, every verdict refresh
    // would see fresh errors and this loop would 503 until the deadline
    // below.
    std::fs::remove_file(&ckpt).unwrap();
    std::fs::create_dir_all(&ckpt).unwrap();
    let mut recovered = false;
    for _ in 0..300 {
        let response = app.handle(&req("POST", "/sessions/w/score", ndjson_rows(&ds, 0..1)));
        match response.status {
            200 => {
                recovered = true;
                break;
            }
            503 => {}
            other => panic!("unexpected status {other}: {}", body_text(&response)),
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(
        recovered,
        "score route never recovered while shed traffic kept flowing"
    );
}

/// Disabling SLO shedding admits scores even under a red route verdict.
#[test]
fn no_slo_shed_config_admits_scores_under_unhealthy_verdict() {
    let (model, ds) = fitted(103);
    let dir = temp_dir("no-slo-shed");
    let bogus = dir.join("not-a-dir");
    std::fs::write(&bogus, "occupied").unwrap();
    let app = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(bogus),
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    });
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"n\", \"checkpoint_every\": 1"),
    ));
    // Well past the verdict TTL: every request is admitted (and then
    // fails on its checkpoint) — never a shed 503.
    for _ in 0..12 {
        let response = app.handle(&req("POST", "/sessions/n/score", ndjson_rows(&ds, 0..1)));
        assert_eq!(response.status, 500, "{}", body_text(&response));
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// A kill -9 mid-checkpoint (staging synced, primary rotated away, final
/// rename lost) recovers on session resume via `.prev`, and the resumed
/// verdict stream is byte-identical to an uninterrupted session's.
#[test]
fn session_resume_recovers_from_prev_after_kill_during_save() {
    let (model, ds) = fitted(107);
    let dir = temp_dir("kill-during-save");

    // Reference: one uninterrupted session scoring 0..300.
    let reference = ServeApp::new(quiet_config());
    reference.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"k\""),
    ));
    reference.handle(&req("POST", "/sessions/k/score", ndjson_rows(&ds, 0..200)));
    let ref_tail = reference.handle(&req(
        "POST",
        "/sessions/k/score",
        ndjson_rows(&ds, 200..300),
    ));
    assert_eq!(ref_tail.status, 200);

    // First "process": checkpoint at 200 records, then die mid-save of a
    // later generation — exactly the fsync-window crash.
    let first = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    });
    first.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"k\""),
    ));
    first.handle(&req("POST", "/sessions/k/score", ndjson_rows(&ds, 0..200)));
    let forced = first.handle(&req("POST", "/sessions/k/checkpoint", ""));
    assert_eq!(forced.status, 200, "{}", body_text(&forced));
    let ckpt = dir.join("k.ckpt.json");
    std::fs::write(staging_path(&ckpt), "torn next generation").unwrap();
    std::fs::rename(&ckpt, prev_path(&ckpt)).unwrap();
    drop(first);

    // Second "process": resume finds no primary, falls back to `.prev`,
    // and the tail scores byte-identically to the uninterrupted run.
    let second = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(dir),
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    });
    let resumed = second.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"k\", \"resume\": true"),
    ));
    assert_eq!(resumed.status, 201, "{}", body_text(&resumed));
    let status = Json::parse(body_text(&resumed)).unwrap();
    assert_eq!(status.get("resumed"), Some(&Json::Bool(true)));
    assert_eq!(
        status.get("records_scored").unwrap().as_number(),
        Some(200.0)
    );
    let tail = second.handle(&req(
        "POST",
        "/sessions/k/score",
        ndjson_rows(&ds, 200..300),
    ));
    assert_eq!(tail.status, 200);
    assert_eq!(
        body_text(&tail),
        body_text(&ref_tail),
        "resumed tail must be byte-identical"
    );
}

/// A corrupted primary checkpoint is quarantined to `.corrupt` on resume
/// and the `.prev` generation restored instead of refusing to start.
#[test]
fn session_resume_quarantines_corrupt_checkpoint_and_uses_prev() {
    let (model, ds) = fitted(109);
    let dir = temp_dir("corrupt-resume");
    let first = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    });
    first.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"q\""),
    ));
    first.handle(&req("POST", "/sessions/q/score", ndjson_rows(&ds, 0..150)));
    assert_eq!(
        first
            .handle(&req("POST", "/sessions/q/checkpoint", ""))
            .status,
        200
    );
    first.handle(&req(
        "POST",
        "/sessions/q/score",
        ndjson_rows(&ds, 150..250),
    ));
    assert_eq!(
        first
            .handle(&req("POST", "/sessions/q/checkpoint", ""))
            .status,
        200
    );
    drop(first);

    // Bit-rot the newest generation (the 250-record one).
    let ckpt = dir.join("q.ckpt.json");
    let good = std::fs::read_to_string(&ckpt).unwrap();
    std::fs::write(&ckpt, &good[..good.len() / 2]).unwrap();

    let second = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    });
    let resumed = second.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"q\", \"resume\": true"),
    ));
    assert_eq!(resumed.status, 201, "{}", body_text(&resumed));
    let status = Json::parse(body_text(&resumed)).unwrap();
    // One generation behind — the 150-record state — never a torn one.
    assert_eq!(
        status.get("records_scored").unwrap().as_number(),
        Some(150.0)
    );
    let corrupt = dir.join("q.ckpt.json.corrupt");
    assert!(
        corrupt.exists(),
        "unreadable checkpoint must be quarantined"
    );
    assert_eq!(
        std::fs::read_to_string(&corrupt).unwrap(),
        good[..good.len() / 2],
        "quarantined evidence preserved verbatim"
    );
}

/// Draining refusals carry a Retry-After so retry-helper clients wait out
/// the restart instead of spinning.
#[test]
fn draining_refusals_carry_retry_after() {
    let (model, ds) = fitted(113);
    let app = ServeApp::new(ServeConfig {
        shed_retry_after: Duration::from_secs(2),
        shed_on_unhealthy: false,
        ..ServeConfig::default()
    });
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"d\""),
    ));
    app.request_shutdown();
    let refused = app.handle(&req("POST", "/sessions/d/score", ndjson_rows(&ds, 0..1)));
    assert_eq!(refused.status, 503, "{}", body_text(&refused));
    assert_eq!(header(&refused, "retry-after"), Some("2"));
    let refused_create = app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"e\""),
    ));
    assert_eq!(refused_create.status, 503, "{}", body_text(&refused_create));
    assert_eq!(header(&refused_create, "retry-after"), Some("2"));
}
