//! End-to-end tests for the serve subsystem at the [`ServeApp`] level:
//! session lifecycle, byte-identity of served verdicts with a direct
//! [`OnlineScorer`] stream, per-session isolation, the error-policy trip
//! ladder, checkpoint/resume round trips, and graceful drain.
//!
//! These drive the same `handle(&Request)` entry point the HTTP workers
//! call, so everything but the TCP framing (covered by `hdoutlier-net`'s
//! own tests and the CLI e2e) is exercised hermetically and fast.

use hdoutlier_core::{FittedModel, OutlierDetector, SearchMethod};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_data::Dataset;
use hdoutlier_json::Json;
use hdoutlier_net::{Request, Response};
use hdoutlier_serve::{ServeApp, ServeConfig, ServeHandle};
use hdoutlier_stream::ndjson::verdict_json;
use hdoutlier_stream::{Checkpoint, OnlineScorer};
use std::path::PathBuf;
use std::sync::Arc;

/// Fits a small model on planted data; returns it with the dataset whose
/// rows the tests then stream as records.
fn fitted(seed: u64) -> (FittedModel, Dataset) {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 600,
        n_dims: 5,
        n_outliers: 4,
        strong_groups: Some(2),
        seed,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(5)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&planted.dataset)
        .unwrap();
    (model, planted.dataset)
}

/// A synthetic request, exactly as the HTTP layer would deliver it.
fn req(method: &str, path: &str, body: impl Into<Vec<u8>>) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: None,
        headers: Vec::new(),
        body: body.into(),
        http1_0: false,
        request_id: "test-req".to_string(),
    }
}

/// The create body for a session: inline model plus extra config fields
/// (rendered JSON object text, e.g. `"id": "a", "batch": 3`).
fn create_body(model: &FittedModel, extra: &str) -> String {
    let model_json = hdoutlier_stream::model_io::to_json(model).unwrap().render();
    if extra.is_empty() {
        format!("{{\"model\": {model_json}}}")
    } else {
        format!("{{{extra}, \"model\": {model_json}}}")
    }
}

/// Renders dataset rows `range` as NDJSON record lines.
fn ndjson_rows(ds: &Dataset, range: std::ops::Range<usize>) -> String {
    let mut out = String::new();
    for i in range {
        let row = Json::Array(ds.row(i).iter().map(|&v| Json::from(v)).collect());
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

/// The NDJSON a direct [`OnlineScorer`] produces for rows `range` — the
/// reference the served output must match byte for byte.
fn reference_stream(model: &FittedModel, ds: &Dataset, range: std::ops::Range<usize>) -> String {
    let mut scorer = OnlineScorer::new(model.clone()).unwrap();
    let mut out = String::new();
    for i in range {
        let verdict = scorer.score_record(ds.row(i)).unwrap();
        out.push_str(&verdict_json(&verdict, &scorer).unwrap().render());
        out.push('\n');
    }
    out
}

fn body_text(response: &Response) -> &str {
    std::str::from_utf8(&response.body).unwrap()
}

fn body_json(response: &Response) -> Json {
    Json::parse(body_text(response)).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hdoutlier-serve-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn served_verdicts_are_byte_identical_to_a_direct_scorer_stream() {
    let (model, ds) = fitted(71);
    let app = ServeApp::new(ServeConfig::default());

    let created = app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"a\""),
    ));
    assert_eq!(created.status, 201, "{}", body_text(&created));

    // Two requests, split mid-stream: the session must carry scorer state
    // across requests exactly as one continuous stream run would.
    let mut served = String::new();
    for range in [0..37, 37..120] {
        let response = app.handle(&req("POST", "/sessions/a/score", ndjson_rows(&ds, range)));
        assert_eq!(response.status, 200, "{}", body_text(&response));
        served.push_str(body_text(&response));
    }
    assert_eq!(served, reference_stream(&model, &ds, 0..120));

    let status = body_json(&app.handle(&req("GET", "/sessions/a", "")));
    assert_eq!(
        status.get("records_scored").unwrap().as_number(),
        Some(120.0)
    );
    assert_eq!(status.get("line_no").unwrap().as_number(), Some(120.0));
    assert!(matches!(status.get("tripped"), Some(Json::Null)));
}

#[test]
fn batched_scoring_matches_record_at_a_time_byte_for_byte() {
    let (model, ds) = fitted(73);
    let app = ServeApp::new(ServeConfig {
        threads: 3,
        ..ServeConfig::default()
    });
    // A batch size that does not divide the request's record count, so the
    // final partial batch path runs too.
    let created = app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"b\", \"batch\": 7"),
    ));
    assert_eq!(created.status, 201, "{}", body_text(&created));
    let response = app.handle(&req("POST", "/sessions/b/score", ndjson_rows(&ds, 0..90)));
    assert_eq!(response.status, 200);
    assert_eq!(body_text(&response), reference_stream(&model, &ds, 0..90));
}

#[test]
fn sessions_are_isolated_from_each_other() {
    let (model_a, ds_a) = fitted(79);
    let (model_b, ds_b) = fitted(83);
    let app = ServeApp::new(ServeConfig::default());

    for (id, model, extra) in [
        ("alpha", &model_a, "\"id\": \"alpha\""),
        (
            "beta",
            &model_b,
            "\"id\": \"beta\", \"batch\": 4, \"on_error\": \"skip\"",
        ),
    ] {
        let created = app.handle(&req("POST", "/sessions", create_body(model, extra)));
        assert_eq!(created.status, 201, "create {id}: {}", body_text(&created));
    }

    // Interleave requests between the two sessions; each must produce the
    // same bytes as its own dedicated stream, unaffected by the other.
    let mut out_a = String::new();
    let mut out_b = String::new();
    for chunk in 0..4 {
        let range = chunk * 25..(chunk + 1) * 25;
        let ra = app.handle(&req(
            "POST",
            "/sessions/alpha/score",
            ndjson_rows(&ds_a, range.clone()),
        ));
        let rb = app.handle(&req(
            "POST",
            "/sessions/beta/score",
            ndjson_rows(&ds_b, range),
        ));
        assert_eq!(ra.status, 200);
        assert_eq!(rb.status, 200);
        out_a.push_str(body_text(&ra));
        out_b.push_str(body_text(&rb));
    }
    assert_eq!(out_a, reference_stream(&model_a, &ds_a, 0..100));
    assert_eq!(out_b, reference_stream(&model_b, &ds_b, 0..100));

    // A malformed record trips alpha (abort policy) — beta keeps scoring.
    let tripped = app.handle(&req("POST", "/sessions/alpha/score", "[1, 2]\n"));
    assert_eq!(tripped.status, 409);
    let rb = app.handle(&req(
        "POST",
        "/sessions/beta/score",
        ndjson_rows(&ds_b, 100..110),
    ));
    assert_eq!(rb.status, 200);
    let tail: String = reference_stream(&model_b, &ds_b, 0..110)
        .lines()
        .skip(100)
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(body_text(&rb), tail);
}

#[test]
fn abort_policy_trips_the_session_and_it_refuses_further_scoring() {
    let (model, ds) = fitted(89);
    let app = ServeApp::new(ServeConfig::default());
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"t\""),
    ));

    // Good records, then a bad one mid-request: the response carries the
    // verdicts scored before the trip (partial NDJSON) with status 409.
    let mut body = ndjson_rows(&ds, 0..5);
    body.push_str("not json\n");
    body.push_str(&ndjson_rows(&ds, 5..10));
    let response = app.handle(&req("POST", "/sessions/t/score", body));
    assert_eq!(response.status, 409);
    assert_eq!(body_text(&response), reference_stream(&model, &ds, 0..5));

    // The trip is sticky: later requests get a JSON error, not verdicts.
    let refused = app.handle(&req("POST", "/sessions/t/score", ndjson_rows(&ds, 10..12)));
    assert_eq!(refused.status, 409);
    let error = body_json(&refused);
    let message = error.get("error").unwrap().as_str().unwrap();
    assert!(message.contains("session tripped"), "{message}");
    assert!(message.contains("line 6"), "{message}");

    let status = body_json(&app.handle(&req("GET", "/sessions/t", "")));
    assert!(status.get("tripped").unwrap().as_str().is_some());
    assert_eq!(status.get("records_scored").unwrap().as_number(), Some(5.0));

    // Deleting a tripped session frees its slot.
    assert_eq!(app.handle(&req("DELETE", "/sessions/t", "")).status, 200);
    assert_eq!(app.handle(&req("GET", "/sessions/t", "")).status, 404);
}

#[test]
fn skip_policy_emits_error_lines_and_the_breaker_trips_on_a_run_of_failures() {
    let (model, ds) = fitted(97);
    let app = ServeApp::new(ServeConfig::default());
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(
            &model,
            "\"id\": \"s\", \"on_error\": \"skip\", \"max_consecutive_errors\": 2",
        ),
    ));

    // One bad record between good ones: an error verdict in place, scoring
    // continues, and the line numbering stays aligned with the input.
    let mut body = ndjson_rows(&ds, 0..3);
    body.push_str("[\"oops\"]\n");
    body.push_str(&ndjson_rows(&ds, 3..6));
    let response = app.handle(&req("POST", "/sessions/s/score", body));
    assert_eq!(response.status, 200);
    let lines: Vec<&str> = body_text(&response).lines().collect();
    assert_eq!(lines.len(), 7);
    let error_line = Json::parse(lines[3]).unwrap();
    assert_eq!(error_line.get("line").unwrap().as_number(), Some(4.0));
    assert_eq!(error_line.get("action").unwrap().as_str(), Some("skip"));

    // Three consecutive bad records exceed max_consecutive_errors=2: the
    // first two are skipped with error verdicts, the third trips.
    let junk = "nope\nnope\nnope\n";
    let tripped = app.handle(&req("POST", "/sessions/s/score", junk));
    assert_eq!(tripped.status, 409);
    assert_eq!(body_text(&tripped).lines().count(), 2);

    let status = body_json(&app.handle(&req("GET", "/sessions/s", "")));
    assert_eq!(status.get("skipped").unwrap().as_number(), Some(3.0));
    let reason = status.get("tripped").unwrap().as_str().unwrap();
    assert!(reason.contains("max_consecutive_errors 2"), "{reason}");
}

#[test]
fn checkpoint_resume_round_trip_continues_the_exact_stream() {
    let (model, ds) = fitted(101);
    let dir = temp_dir("resume");

    // First server lifetime: score 40 records with a checkpoint cadence,
    // then delete (which writes a final checkpoint).
    let first = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let created = first.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"r\", \"checkpoint_every\": 10"),
    ));
    assert_eq!(created.status, 201, "{}", body_text(&created));
    let response = first.handle(&req("POST", "/sessions/r/score", ndjson_rows(&ds, 0..40)));
    assert_eq!(response.status, 200);
    assert_eq!(first.handle(&req("DELETE", "/sessions/r", "")).status, 200);

    let ckpt_path = dir.join("r.ckpt.json");
    let checkpoint = Checkpoint::load(&ckpt_path).unwrap();
    assert_eq!(checkpoint.records_scored, 40);

    // Second server lifetime: resume and keep scoring. The continuation
    // must be byte-identical to the tail of one uninterrupted stream.
    let second = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let resumed = second.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"r\", \"resume\": true"),
    ));
    assert_eq!(resumed.status, 201, "{}", body_text(&resumed));
    let status = body_json(&resumed);
    assert_eq!(
        status.get("records_scored").unwrap().as_number(),
        Some(40.0)
    );
    assert!(matches!(status.get("resumed"), Some(Json::Bool(true))));

    let response = second.handle(&req("POST", "/sessions/r/score", ndjson_rows(&ds, 40..100)));
    assert_eq!(response.status, 200);
    let full = reference_stream(&model, &ds, 0..100);
    let tail: String = full.lines().skip(40).map(|l| format!("{l}\n")).collect();
    assert_eq!(body_text(&response), tail);

    // Without the resume flag, the same id starts fresh instead.
    assert_eq!(second.handle(&req("DELETE", "/sessions/r", "")).status, 200);
    let fresh = second.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"r\""),
    ));
    let status = body_json(&fresh);
    assert_eq!(status.get("records_scored").unwrap().as_number(), Some(0.0));
}

#[test]
fn forced_checkpoints_need_a_directory_and_write_atomically() {
    let (model, ds) = fitted(103);

    // No checkpoint directory configured: the route answers 400.
    let bare = ServeApp::new(ServeConfig::default());
    bare.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"c\""),
    ));
    let refused = bare.handle(&req("POST", "/sessions/c/checkpoint", ""));
    assert_eq!(refused.status, 400, "{}", body_text(&refused));

    // With one: the route writes and reports the path.
    let dir = temp_dir("forced");
    let app = ServeApp::new(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"c\""),
    ));
    app.handle(&req("POST", "/sessions/c/score", ndjson_rows(&ds, 0..13)));
    let response = app.handle(&req("POST", "/sessions/c/checkpoint", ""));
    assert_eq!(response.status, 200);
    let doc = body_json(&response);
    assert_eq!(doc.get("records_scored").unwrap().as_number(), Some(13.0));
    let loaded = Checkpoint::load(&dir.join("c.ckpt.json")).unwrap();
    assert_eq!(loaded.records_scored, 13);
}

#[test]
fn router_rejects_what_it_should() {
    let (model, _ds) = fitted(107);
    let app = ServeApp::new(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });

    assert_eq!(app.handle(&req("GET", "/nowhere", "")).status, 404);
    assert_eq!(
        app.handle(&req("POST", "/sessions/ghost/score", "[]"))
            .status,
        404
    );
    assert_eq!(app.handle(&req("PATCH", "/sessions/ghost", "")).status, 404);
    assert_eq!(app.handle(&req("GET", "/shutdown", "")).status, 405);
    assert_eq!(
        app.handle(&req("POST", "/sessions", "{\"id\": 3}")).status,
        400
    );
    assert_eq!(
        app.handle(&req("POST", "/sessions", "not json")).status,
        400
    );
    assert_eq!(
        app.handle(&req("POST", "/sessions", "{\"id\": \"no-model\"}"))
            .status,
        400
    );

    // Duplicate ids conflict; the session cap answers 503.
    let body = create_body(&model, "\"id\": \"one\"");
    assert_eq!(
        app.handle(&req("POST", "/sessions", body.clone())).status,
        201
    );
    assert_eq!(app.handle(&req("POST", "/sessions", body)).status, 409);
    assert_eq!(
        app.handle(&req(
            "POST",
            "/sessions",
            create_body(&model, "\"id\": \"two\"")
        ))
        .status,
        201
    );
    assert_eq!(
        app.handle(&req(
            "POST",
            "/sessions",
            create_body(&model, "\"id\": \"three\"")
        ))
        .status,
        503
    );

    // The list endpoint names the live sessions.
    let listed = body_json(&app.handle(&req("GET", "/sessions", "")));
    let ids: Vec<&str> = listed
        .get("sessions")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s.get("id").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(ids, ["one", "two"]);

    // Telemetry routes answer on the same app. The deliberately provoked
    // 503 above burned SLO error budget, so /healthz may legitimately
    // answer 503 here — what matters is that the routes respond and the
    // SLO report names the route that took the traffic.
    let health = app.handle(&req("GET", "/healthz", "")).status;
    assert!(health == 200 || health == 503, "unexpected status {health}");
    assert_eq!(app.handle(&req("GET", "/metrics", "")).status, 200);
    let status = app.handle(&req("GET", "/status", ""));
    assert_eq!(status.status, 200);
    let body = String::from_utf8(status.body).unwrap();
    assert!(body.contains("\"key\":\"route:/sessions\""), "{body}");
}

#[test]
fn profile_endpoint_renders_svg_and_folded_under_live_scoring() {
    let (model, ds) = fitted(223);
    let app = ServeApp::new(ServeConfig::default());
    assert_eq!(
        app.handle(&req(
            "POST",
            "/sessions",
            create_body(&model, "\"id\": \"p\"")
        ))
        .status,
        201
    );

    let stop = std::sync::atomic::AtomicBool::new(false);
    let (svg, folded) = std::thread::scope(|scope| {
        // Keep the scoring route hot so the sampling window observes the
        // serve request span stack.
        scope.spawn(|| {
            let rows = ndjson_rows(&ds, 0..50);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let response = app.handle(&req("POST", "/sessions/p/score", rows.clone()));
                assert_eq!(response.status, 200);
            }
        });
        let svg = app.handle(&Request {
            query: Some("seconds=0.4&hz=500&format=svg".to_string()),
            ..req("GET", "/profile", "")
        });
        let folded = app.handle(&Request {
            query: Some("seconds=0.3&hz=500".to_string()),
            ..req("GET", "/profile", "")
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (svg, folded)
    });

    assert_eq!(svg.status, 200);
    assert_eq!(svg.content_type, "image/svg+xml");
    let svg_body = String::from_utf8(svg.body).unwrap();
    assert!(svg_body.starts_with("<?xml"), "{svg_body}");
    assert!(svg_body.contains("<svg xmlns="), "{svg_body}");
    assert!(svg_body.trim_end().ends_with("</svg>"), "{svg_body}");

    assert_eq!(folded.status, 200);
    let folded_body = String::from_utf8(folded.body).unwrap();
    assert!(
        folded_body.contains("hdoutlier.serve.request"),
        "no serve frame in folded output:\n{folded_body}"
    );

    // A bad format is a 400, not a silent default.
    let bad = app.handle(&Request {
        query: Some("format=gif".to_string()),
        ..req("GET", "/profile", "")
    });
    assert_eq!(bad.status, 400);
}

#[test]
fn drain_checkpoints_every_session_and_closes_the_listener() {
    let (model, ds) = fitted(109);
    let dir = temp_dir("drain");
    let handle = ServeHandle::bind(
        "127.0.0.1:0",
        ServeConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();
    let app = Arc::clone(handle.app());

    for id in ["d1", "d2"] {
        let created = app.handle(&req(
            "POST",
            "/sessions",
            create_body(&model, &format!("\"id\": \"{id}\"")),
        ));
        assert_eq!(created.status, 201);
        let scored = app.handle(&req(
            "POST",
            &format!("/sessions/{id}/score"),
            ndjson_rows(&ds, 0..17),
        ));
        assert_eq!(scored.status, 200);
    }

    // While draining, new sessions and new scoring are refused.
    app.request_shutdown();
    assert_eq!(
        app.handle(&req(
            "POST",
            "/sessions",
            create_body(&model, "\"id\": \"late\"")
        ))
        .status,
        503
    );
    assert_eq!(
        app.handle(&req("POST", "/sessions/d1/score", ndjson_rows(&ds, 17..18)))
            .status,
        503
    );

    let report = handle.drain();
    assert_eq!(report.sessions, 2);
    assert_eq!(report.checkpointed, 2);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    for id in ["d1", "d2"] {
        let loaded = Checkpoint::load(&dir.join(format!("{id}.ckpt.json"))).unwrap();
        assert_eq!(loaded.records_scored, 17);
    }
    // The listener is gone: connecting now fails.
    assert!(std::net::TcpStream::connect(addr).is_err());
}

/// A request carrying a client-supplied `X-Request-Id`: header and
/// connection id agree, which is the condition that keys the replay cache.
fn req_with_id(method: &str, path: &str, id: &str, body: impl Into<Vec<u8>>) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: None,
        headers: vec![("x-request-id".to_string(), id.to_string())],
        body: body.into(),
        http1_0: false,
        request_id: id.to_string(),
    }
}

#[test]
fn replay_cache_evicts_fifo_at_the_capacity_boundary() {
    let (model, ds) = fitted(83);
    let app = ServeApp::new(ServeConfig {
        replay_cache: 2,
        ..ServeConfig::default()
    });
    let created = app.handle(&req(
        "POST",
        "/sessions",
        create_body(&model, "\"id\": \"r\""),
    ));
    assert_eq!(created.status, 201, "{}", body_text(&created));

    let records_scored = || {
        body_json(&app.handle(&req("GET", "/sessions/r", "")))
            .get("records_scored")
            .unwrap()
            .as_number()
            .unwrap()
    };

    // Fill the cache exactly to capacity: r1 then r2.
    let body1 = ndjson_rows(&ds, 0..3);
    let body2 = ndjson_rows(&ds, 3..6);
    let body3 = ndjson_rows(&ds, 6..9);
    let resp1 = app.handle(&req_with_id(
        "POST",
        "/sessions/r/score",
        "r1",
        body1.clone(),
    ));
    let resp2 = app.handle(&req_with_id(
        "POST",
        "/sessions/r/score",
        "r2",
        body2.clone(),
    ));
    assert_eq!(resp1.status, 200);
    assert_eq!(resp2.status, 200);
    assert_eq!(records_scored(), 6.0);

    // At capacity, a cached id replays byte-identically without advancing
    // the scorer.
    let replayed = app.handle(&req_with_id(
        "POST",
        "/sessions/r/score",
        "r2",
        body2.clone(),
    ));
    assert_eq!(replayed.body, resp2.body, "replay must be byte-identical");
    assert_eq!(records_scored(), 6.0, "replay must not re-score");

    // The (N+1)th distinct id crosses the boundary and evicts the OLDEST
    // entry (r1) — insertion-order FIFO, unmoved by r2's recent hit.
    let resp3 = app.handle(&req_with_id(
        "POST",
        "/sessions/r/score",
        "r3",
        body3.clone(),
    ));
    assert_eq!(resp3.status, 200);
    assert_eq!(records_scored(), 9.0);

    // Survivors r2 and r3 still replay...
    let replayed = app.handle(&req_with_id("POST", "/sessions/r/score", "r3", body3));
    assert_eq!(replayed.body, resp3.body);
    let replayed = app.handle(&req_with_id("POST", "/sessions/r/score", "r2", body2));
    assert_eq!(replayed.body, resp2.body);
    assert_eq!(records_scored(), 9.0, "hits never advance the scorer");

    // ...but the evicted r1 misses and RE-SCORES: same input rows, scored
    // at the stream's current position, so the verdict indices differ from
    // the original response.
    let rescored = app.handle(&req_with_id("POST", "/sessions/r/score", "r1", body1));
    assert_eq!(rescored.status, 200);
    assert_eq!(records_scored(), 12.0, "an evicted id re-scores");
    assert_ne!(
        rescored.body, resp1.body,
        "re-scored batch carries advanced stream indices"
    );
    // Exactly what a continuous scorer would emit for rows 0..9 then 0..3.
    let mut scorer = OnlineScorer::new(model.clone()).unwrap();
    let mut expected = String::new();
    for i in (0..9).chain(0..3) {
        let verdict = scorer.score_record(ds.row(i)).unwrap();
        expected.push_str(&verdict_json(&verdict, &scorer).unwrap().render());
        expected.push('\n');
    }
    assert_eq!(
        body_text(&rescored),
        &expected[expected.len() - rescored.body.len()..]
    );
}
