//! Criterion sweep of brute-force vs evolutionary cost with dimensionality
//! (the §3 complexity observation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdoutlier_core::brute::{brute_force_search, BruteForceConfig};
use hdoutlier_core::evolutionary::{evolutionary_search, EvolutionaryConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_index::{BitmapCounter, CachedCounter};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for d in [8usize, 16, 32] {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 300,
            n_dims: d,
            n_outliers: 3,
            seed: 11,
            ..PlantedConfig::default()
        });
        let disc = Discretized::new(&planted.dataset, 3, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = BitmapCounter::new(&disc);
        let fitness = SparsityFitness::new(&counter, 3);
        group.bench_with_input(BenchmarkId::new("brute", d), &d, |b, _| {
            b.iter(|| {
                brute_force_search(
                    &fitness,
                    &BruteForceConfig {
                        m: 10,
                        ..BruteForceConfig::default()
                    },
                )
            })
        });
        let cached = CachedCounter::new(counter.clone());
        let fitness_ga = SparsityFitness::new(&cached, 3);
        group.bench_with_input(BenchmarkId::new("evolutionary", d), &d, |b, _| {
            b.iter(|| {
                cached.clear();
                evolutionary_search(
                    &fitness_ga,
                    &EvolutionaryConfig {
                        m: 10,
                        population: 50,
                        max_generations: 30,
                        p1: 0.1,
                        p2: 0.1,
                        seed: 11,
                        ..EvolutionaryConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
