//! Cost of the distance-based comparators vs the subspace detector on the
//! same workload (context for the §3.1 comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use hdoutlier_baselines::{lof_scores, ramaswamy_top_n, Metric};
use hdoutlier_core::detector::{OutlierDetector, SearchMethod};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

fn bench_baselines(c: &mut Criterion) {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 500,
        n_dims: 40,
        n_outliers: 5,
        seed: 21,
        ..PlantedConfig::default()
    });
    let ds = &planted.dataset;

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("ramaswamy_1nn_top20", |b| {
        b.iter(|| ramaswamy_top_n(ds, 1, 20, Metric::Euclidean).unwrap())
    });
    group.bench_function("lof_minpts10", |b| {
        b.iter(|| lof_scores(ds, 10, Metric::Euclidean).unwrap())
    });
    let detector = OutlierDetector::builder()
        .phi(4)
        .k(3)
        .m(20)
        .max_generations(40)
        .search(SearchMethod::Evolutionary)
        .build();
    group.bench_function("subspace_evolutionary", |b| {
        b.iter(|| detector.detect(ds).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
