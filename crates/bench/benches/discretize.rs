//! Ablation: equi-depth (rank-based) vs equi-width discretization cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uniform;

fn bench_discretize(c: &mut Criterion) {
    let mut group = c.benchmark_group("discretize");
    for (n, d) in [(1_000usize, 20usize), (10_000, 20), (10_000, 100)] {
        let ds = uniform(n, d, 3);
        group.bench_with_input(
            BenchmarkId::new("equi_depth", format!("{n}x{d}")),
            &ds,
            |b, ds| b.iter(|| Discretized::new(ds, 10, DiscretizeStrategy::EquiDepth).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("equi_width", format!("{n}x{d}")),
            &ds,
            |b, ds| b.iter(|| Discretized::new(ds, 10, DiscretizeStrategy::EquiWidth).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_discretize);
criterion_main!(benches);
