//! Ablation: optimized vs two-point crossover cost per generation, and the
//! effect of fitness caching.

use criterion::{criterion_group, criterion_main, Criterion};
use hdoutlier_core::crossover::CrossoverKind;
use hdoutlier_core::evolutionary::{evolutionary_search, EvolutionaryConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_index::{BitmapCounter, CachedCounter};

fn bench_crossover(c: &mut Criterion) {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 500,
        n_dims: 24,
        n_outliers: 4,
        seed: 13,
        ..PlantedConfig::default()
    });
    let disc = Discretized::new(&planted.dataset, 4, DiscretizeStrategy::EquiDepth).unwrap();
    let counter = BitmapCounter::new(&disc);

    let config = |kind| EvolutionaryConfig {
        m: 10,
        population: 50,
        crossover: kind,
        p1: 0.1,
        p2: 0.1,
        max_generations: 25,
        seed: 13,
        ..EvolutionaryConfig::default()
    };

    let mut group = c.benchmark_group("crossover");
    group.sample_size(10);
    for (name, kind) in [
        ("optimized", CrossoverKind::Optimized),
        ("two_point", CrossoverKind::TwoPoint),
    ] {
        let cached = CachedCounter::new(counter.clone());
        let fitness = SparsityFitness::new(&cached, 3);
        group.bench_function(format!("{name}_cached"), |b| {
            b.iter(|| {
                cached.clear();
                evolutionary_search(&fitness, &config(kind))
            })
        });
        let fitness_raw = SparsityFitness::new(&counter, 3);
        group.bench_function(format!("{name}_uncached"), |b| {
            b.iter(|| evolutionary_search(&fitness_raw, &config(kind)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
