//! Extension bench: the disjoint-partition parallel brute force vs. serial.
//!
//! Note: on a single-core container this measures the partitioning/merge
//! *overhead* only (a few percent); the speedup requires real cores. The
//! equivalence of results is covered by `core::brute` unit tests either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdoutlier_core::brute::{brute_force_search, brute_force_search_parallel, BruteForceConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_index::BitmapCounter;

fn bench_parallel(c: &mut Criterion) {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 800,
        n_dims: 24,
        n_outliers: 4,
        seed: 17,
        ..PlantedConfig::default()
    });
    let disc = Discretized::new(&planted.dataset, 4, DiscretizeStrategy::EquiDepth).unwrap();
    let counter = BitmapCounter::new(&disc);
    let config = BruteForceConfig {
        m: 20,
        ..BruteForceConfig::default()
    };

    let mut group = c.benchmark_group("parallel_brute");
    group.sample_size(10);
    let fitness = SparsityFitness::new(&counter, 3);
    group.bench_function("serial", |b| {
        b.iter(|| brute_force_search(&fitness, &config))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| brute_force_search_parallel(&counter, 3, &config, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
