//! Criterion timing for the Table-1 searches on the two datasets where all
//! three methods complete (machine, breast cancer).

use criterion::{criterion_group, criterion_main, Criterion};
use hdoutlier_bench::table1::{run_dataset, specs};
use hdoutlier_data::generators::uci_like::{breast_cancer, machine};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    let machine_sim = machine(5);
    let machine_spec = &specs()[4];
    group.bench_function("machine_all_methods", |b| {
        b.iter(|| run_dataset(&machine_sim, machine_spec, 5))
    });

    let bc_sim = breast_cancer(1);
    let bc_spec = &specs()[0];
    group.bench_function("breast_cancer_all_methods", |b| {
        b.iter(|| run_dataset(&bc_sim, bc_spec, 1))
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
