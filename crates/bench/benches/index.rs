//! Ablation: bitmap-intersection counting vs the naive row scan, and the
//! incremental-intersection brute-force fast path vs the generic DFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uniform;
use hdoutlier_index::{BitmapCounter, Cube, CubeCounter, NaiveCounter};

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("index");
    for n in [1_000usize, 10_000, 100_000] {
        let ds = uniform(n, 10, 7);
        let disc = Discretized::new(&ds, 5, DiscretizeStrategy::EquiDepth).unwrap();
        let bitmap = BitmapCounter::new(&disc);
        let naive = NaiveCounter::new(&disc);
        let cubes: Vec<Cube> = (0..50u16)
            .map(|i| {
                Cube::new([
                    ((i % 10) as u32, (i % 5)),
                    (((i + 3) % 10) as u32, ((i + 1) % 5)),
                    (((i + 7) % 10) as u32, ((i + 2) % 5)),
                ])
                .unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("bitmap", n), &n, |b, _| {
            b.iter(|| cubes.iter().map(|cube| bitmap.count(cube)).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| cubes.iter().map(|cube| naive.count(cube)).sum::<usize>())
        });
    }
    group.finish();
}

fn bench_incremental_brute(c: &mut Criterion) {
    use hdoutlier_core::brute::{
        brute_force_search, brute_force_search_incremental, BruteForceConfig,
    };
    use hdoutlier_core::fitness::SparsityFitness;

    let ds = uniform(2000, 12, 29);
    let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
    let counter = BitmapCounter::new(&disc);
    let config = BruteForceConfig {
        m: 20,
        ..BruteForceConfig::default()
    };
    let mut group = c.benchmark_group("brute_backend");
    group.sample_size(10);
    let fitness = SparsityFitness::new(&counter, 3);
    group.bench_function("generic_dfs", |b| {
        b.iter(|| brute_force_search(&fitness, &config))
    });
    group.bench_function("incremental_intersection", |b| {
        b.iter(|| brute_force_search_incremental(&counter, 3, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_counters, bench_incremental_brute);
criterion_main!(benches);
