//! Table 1: running time and best-20 quality of the brute-force search and
//! the evolutionary algorithm with both crossover mechanisms, on the five
//! UCI-shaped datasets.
//!
//! Paper shape to reproduce (absolute numbers are 233 MHz-era and
//! irrelevant):
//! - brute-force time explodes with dimensionality and **cannot finish on
//!   musk** (160 dims) — modeled here as a candidate budget, since 2026
//!   hardware would eventually grind through what a 2001 machine could not;
//! - the optimized crossover (Gen°) matches brute-force quality on most
//!   datasets while the two-point baseline (Gen) falls short;
//! - on the smallest dataset (machine, 8 dims), brute force is *faster*
//!   than either GA — the GA's population machinery has fixed overhead.

use crate::table;
use hdoutlier_core::brute::{brute_force_search, BruteForceConfig};
use hdoutlier_core::crossover::CrossoverKind;
use hdoutlier_core::evolutionary::{evolutionary_search, EvolutionaryConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uci_like::{self, Simulacrum};
use hdoutlier_index::{BitmapCounter, CachedCounter};
use std::time::{Duration, Instant};

/// Per-dataset grid/projection parameters, chosen by the §2.4 rule
/// (`k* = ⌊log_φ(N/9 + 1)⌋` at the advisor's φ, nudged so the expected cube
/// occupancy N/φ^k sits in the discriminating 7–25 range).
pub struct DatasetSpec {
    /// Display name with dimensionality, as in the paper's Table 1.
    pub label: &'static str,
    /// Grid ranges per dimension.
    pub phi: u32,
    /// Projection dimensionality.
    pub k: usize,
    /// Brute-force candidate budget; `None` = run to completion.
    pub brute_budget: Option<u64>,
}

/// The paper's five datasets with their search parameters.
pub fn specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            label: "Breast Cancer (14)",
            phi: 4,
            k: 3,
            brute_budget: None,
        },
        DatasetSpec {
            label: "Ionosphere (34)",
            phi: 3,
            k: 3,
            brute_budget: None,
        },
        DatasetSpec {
            label: "Segmentation (19)",
            phi: 4,
            k: 4,
            brute_budget: None,
        },
        DatasetSpec {
            label: "Musk (160)",
            phi: 3,
            k: 3,
            // C(160,3)·27 ≈ 1.8·10⁷ candidates: the budget plays the role of
            // the paper's "unable to terminate in a reasonable time".
            brute_budget: Some(2_000_000),
        },
        DatasetSpec {
            label: "Machine (8)",
            phi: 4,
            k: 2,
            brute_budget: None,
        },
    ]
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset label.
    pub label: &'static str,
    /// Brute-force wall time; `None` if the budget tripped ("-" in the paper).
    pub brute_time: Option<Duration>,
    /// Two-point GA wall time.
    pub gen_time: Duration,
    /// Optimized-crossover GA wall time.
    pub gen_opt_time: Duration,
    /// Brute-force mean best-20 sparsity; `None` if incomplete.
    pub brute_quality: Option<f64>,
    /// Two-point GA quality.
    pub gen_quality: f64,
    /// Optimized GA quality.
    pub gen_opt_quality: f64,
}

impl Table1Row {
    /// Whether Gen° matched brute-force quality within `tol` — the paper's
    /// "(*)" marker ("the average quality … was the same").
    pub fn gen_opt_matches_brute(&self, tol: f64) -> bool {
        match self.brute_quality {
            Some(b) => (self.gen_opt_quality - b).abs() <= tol,
            None => false,
        }
    }
}

/// The number of best projections scored (the paper's m = 20).
pub const M: usize = 20;

fn ga_config(crossover: CrossoverKind, m: usize, seed: u64) -> EvolutionaryConfig {
    EvolutionaryConfig {
        m,
        population: 100,
        crossover,
        p1: 0.1,
        p2: 0.1,
        max_generations: 120,
        seed,
        ..EvolutionaryConfig::default()
    }
}

/// Runs all three searches on one dataset.
pub fn run_dataset(sim: &Simulacrum, spec: &DatasetSpec, seed: u64) -> Table1Row {
    let disc = Discretized::new(&sim.dataset, spec.phi, DiscretizeStrategy::EquiDepth)
        .expect("simulacra are non-empty");
    let counter = BitmapCounter::new(&disc);

    // Brute force.
    let fitness = SparsityFitness::new(&counter, spec.k);
    let start = Instant::now();
    let brute = brute_force_search(
        &fitness,
        &BruteForceConfig {
            m: M,
            require_nonempty: true,
            max_candidates: spec.brute_budget,
        },
    );
    let brute_elapsed = start.elapsed();
    let (brute_time, brute_quality) = if brute.completed {
        (
            Some(brute_elapsed),
            mean_quality(&brute.best.iter().map(|s| s.sparsity).collect::<Vec<_>>()),
        )
    } else {
        (None, None)
    };

    // Both GAs share the memoizing counter (the GA revisits strings).
    let cached = CachedCounter::new(counter);
    let fitness = SparsityFitness::new(&cached, spec.k);
    let run_ga = |kind: CrossoverKind| {
        cached.clear();
        let start = Instant::now();
        let out = evolutionary_search(&fitness, &ga_config(kind, M, seed));
        let elapsed = start.elapsed();
        let quality = mean_quality(&out.best.iter().map(|s| s.sparsity).collect::<Vec<_>>())
            .unwrap_or(f64::NAN);
        (elapsed, quality)
    };
    let (gen_time, gen_quality) = run_ga(CrossoverKind::TwoPoint);
    let (gen_opt_time, gen_opt_quality) = run_ga(CrossoverKind::Optimized);

    Table1Row {
        label: spec.label,
        brute_time,
        gen_time,
        gen_opt_time,
        brute_quality,
        gen_quality,
        gen_opt_quality,
    }
}

fn mean_quality(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Runs the full Table 1 reproduction.
pub fn run(seed: u64) -> Vec<Table1Row> {
    let sims = uci_like::table1_datasets(seed);
    sims.iter()
        .zip(specs())
        .map(|(sim, spec)| run_dataset(sim, &spec, seed))
        .collect()
}

/// Renders the result in the paper's column layout.
pub fn render(rows: &[Table1Row]) -> String {
    let fmt_q = |q: Option<f64>| q.map_or("-".to_string(), |v| format!("{v:.2}"));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let star = if r.gen_opt_matches_brute(0.11) {
                " (*)"
            } else {
                ""
            };
            vec![
                r.label.to_string(),
                r.brute_time.map_or("-".to_string(), table::ms),
                table::ms(r.gen_time),
                table::ms(r.gen_opt_time),
                fmt_q(r.brute_quality),
                format!("{:.2}", r.gen_quality),
                format!("{:.2}{star}", r.gen_opt_quality),
            ]
        })
        .collect();
    table::render(
        &[
            "Data Set",
            "Brute(ms)",
            "Gen(ms)",
            "Gen°(ms)",
            "Brute(quality)",
            "Gen(quality)",
            "Gen°(quality)",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_the_five_datasets() {
        let s = specs();
        assert_eq!(s.len(), 5);
        assert!(s[3].brute_budget.is_some(), "musk must be budgeted");
        assert!(s.iter().all(|x| x.phi >= 3 && x.k >= 2));
    }

    #[test]
    fn machine_row_fast_shape() {
        // The smallest dataset end-to-end: brute completes and is accurate.
        let sims = uci_like::table1_datasets(5);
        let spec = &specs()[4];
        let row = run_dataset(&sims[4], spec, 5);
        assert!(row.brute_time.is_some());
        let brute_q = row.brute_quality.unwrap();
        // Brute force is the optimum: no GA can beat it.
        assert!(row.gen_opt_quality >= brute_q - 1e-9);
        assert!(row.gen_quality >= brute_q - 1e-9);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = vec![Table1Row {
            label: "Test (3)",
            brute_time: None,
            gen_time: Duration::from_millis(10),
            gen_opt_time: Duration::from_millis(12),
            brute_quality: None,
            gen_quality: -2.0,
            gen_opt_quality: -2.8,
        }];
        let text = render(&rows);
        assert!(text.contains("Test (3)"));
        assert!(text.contains('-'), "incomplete brute shown as dash");
        assert!(text.contains("-2.80"));
    }
}
