//! §2.4's parameter analysis: how `k* = ⌊log_φ(N/s² + 1)⌋` behaves, what the
//! empty-cube coefficient looks like around it, and where the normal
//! approximation behind Eq. 1 is trustworthy.

use crate::table;
use hdoutlier_stats::{empty_cube_coefficient, recommended_k, Binomial, SparsityParams};

/// One row of the k* table.
#[derive(Debug, Clone)]
pub struct KStarRow {
    /// Number of records.
    pub n: u64,
    /// Grid resolution.
    pub phi: u32,
    /// Recommended dimensionality (`None` = no significant k exists).
    pub k_star: Option<u32>,
    /// Empty-cube coefficient at k*.
    pub empty_at_k: Option<f64>,
    /// Empty-cube coefficient one past k* — no longer significant.
    pub empty_past_k: Option<f64>,
}

/// Sweeps N and φ at the paper's reference significance `s = −3`.
pub fn k_star_sweep() -> Vec<KStarRow> {
    let mut rows = Vec::new();
    for &n in &[100u64, 452, 1_000, 10_000, 100_000, 1_000_000] {
        for &phi in &[3u32, 5, 10] {
            let k_star = recommended_k(n, phi, -3.0);
            rows.push(KStarRow {
                n,
                phi,
                k_star,
                empty_at_k: k_star.map(|k| empty_cube_coefficient(n, phi, k)),
                empty_past_k: k_star.map(|k| empty_cube_coefficient(n, phi, k + 1)),
            });
        }
    }
    rows
}

/// One row of the CLT-quality table: how well Eq. 1's normal reading matches
/// the exact binomial tail for a single-point cube.
#[derive(Debug, Clone)]
pub struct CltRow {
    /// Number of records.
    pub n: u64,
    /// Grid resolution.
    pub phi: u32,
    /// Projection dimensionality.
    pub k: u32,
    /// Expected cube occupancy `N·f^k`.
    pub expected: f64,
    /// Sparsity coefficient of a one-point cube.
    pub s_one_point: f64,
    /// Exact probability `P[occupancy <= 1]` under Binomial(N, f^k).
    pub exact_tail: f64,
    /// The normal approximation `Φ(S)` the paper quotes.
    pub normal_tail: f64,
}

/// Measures Eq. 1's approximation quality across regimes.
pub fn clt_quality() -> Vec<CltRow> {
    let mut rows = Vec::new();
    for &(n, phi, k) in &[
        (10_000u64, 10u32, 2u32),
        (10_000, 10, 3),
        (10_000, 10, 4), // the under-populated regime §2.4 warns about
        (452, 5, 2),
        (452, 5, 3),
        (1_000_000, 10, 5),
    ] {
        let params = SparsityParams::new(n, phi, k).expect("valid");
        let law: Binomial = params.occupancy_law();
        rows.push(CltRow {
            n,
            phi,
            k,
            expected: params.expected_count(),
            s_one_point: params.sparsity(1),
            exact_tail: law.cdf(1),
            normal_tail: hdoutlier_stats::significance_of(params.sparsity(1)),
        });
    }
    rows
}

/// Renders both tables.
pub fn render() -> String {
    let mut out = String::from("k* = floor(log_phi(N/s^2 + 1)) at s = -3 (Eq. 2):\n");
    let rows: Vec<Vec<String>> = k_star_sweep()
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.phi.to_string(),
                r.k_star.map_or("-".into(), |k| k.to_string()),
                r.empty_at_k.map_or("-".into(), |v| format!("{v:.2}")),
                r.empty_past_k.map_or("-".into(), |v| format!("{v:.2}")),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["N", "phi", "k*", "S(empty) at k*", "S(empty) at k*+1"],
        &rows,
    ));
    out.push_str("\nEq. 1 normal approximation vs exact binomial for a 1-point cube:\n");
    let rows: Vec<Vec<String>> = clt_quality()
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.phi.to_string(),
                r.k.to_string(),
                format!("{:.2}", r.expected),
                format!("{:.2}", r.s_one_point),
                format!("{:.2e}", r.exact_tail),
                format!("{:.2e}", r.normal_tail),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "N",
            "phi",
            "k",
            "E[count]",
            "S(1)",
            "exact P[<=1]",
            "normal Phi(S)",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_star_grows_with_n_and_shrinks_with_phi() {
        let rows = k_star_sweep();
        let get = |n: u64, phi: u32| {
            rows.iter()
                .find(|r| r.n == n && r.phi == phi)
                .and_then(|r| r.k_star)
        };
        assert!(get(1_000_000, 10) > get(1_000, 10));
        assert!(get(10_000, 3) >= get(10_000, 10));
        // At k* the empty cube is at or below −3; past it, above.
        for r in &rows {
            if let (Some(at), Some(past)) = (r.empty_at_k, r.empty_past_k) {
                assert!(at <= -3.0, "N={} phi={}: {at}", r.n, r.phi);
                assert!(past > -3.0, "N={} phi={}: {past}", r.n, r.phi);
            }
        }
    }

    #[test]
    fn clt_is_honest_in_the_healthy_regime_and_poor_when_starved() {
        let rows = clt_quality();
        // Healthy: N=10⁴, φ=10, k=3 → E=10, S(1) ≈ −2.8 — a *moderate*
        // deviation, where exact and normal tails agree within an order of
        // magnitude. (At E=100 a one-point cube is a 10σ event and the
        // normal approximation is off by ~19 orders of magnitude — deep
        // tails are exactly where the CLT cannot be trusted, which the k=2
        // row of the rendered table shows.)
        let healthy = &rows[1];
        assert!(healthy.exact_tail > 0.0);
        let ratio = healthy.normal_tail / healthy.exact_tail;
        assert!((0.1..10.0).contains(&ratio), "ratio {ratio}");
        // Starved: N=10⁴, φ=10, k=4 → E=1; a 1-point cube is *typical*
        // (S ≈ 0) and the whole machinery degenerates, exactly §2.4's point.
        let starved = &rows[2];
        assert!(starved.expected <= 1.0 + 1e-9);
        assert!(starved.s_one_point > -0.5);
        assert!(starved.exact_tail > 0.5);
    }

    #[test]
    fn render_includes_both_tables() {
        let text = render();
        assert!(text.contains("k* ="));
        assert!(text.contains("normal Phi(S)"));
    }
}
