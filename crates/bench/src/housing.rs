//! §3.1's Boston-housing case study: interpretable 3- and 4-dimensional
//! sparse projections.
//!
//! The paper's anecdotes (planted verbatim into the simulacrum):
//! 1. high crime (1.628) + high pupil–teacher ratio (21.20) + *low*
//!    distance to employment centers (1.4394);
//! 2. low nitric oxide (0.453) + high pre-1940 proportion (93.4 %) + high
//!    highway accessibility (8);
//! 3. low crime (0.04741) + modest industry (11.93) + *low* median price
//!    (11.9 k$) — the contrarian record that would confuse a classifier.
//!
//! The reproduction checks that the brute-force search (d = 13 is small
//! enough for exactness) surfaces all three planted rows among its outliers
//! and that the reported projections mention the expected attributes.

use hdoutlier_core::detector::{OutlierDetector, SearchMethod};
use hdoutlier_core::report::OutlierReport;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uci_like::{housing, Housing};

/// Result of the housing case study.
pub struct Outcome {
    /// The generated data and ground truth.
    pub data: Housing,
    /// Report for 3-dimensional projections.
    pub report_k3: OutlierReport,
    /// Report for 4-dimensional projections.
    pub report_k4: OutlierReport,
    /// The k ∈ {3, 4} runs merged on the exact-significance scale (the
    /// cross-k comparison §1.1 says raw thresholds cannot provide).
    pub merged: hdoutlier_core::MultiKReport,
    /// The grid used (for explanations).
    pub disc: Discretized,
    /// Which anecdote rows were flagged by either report.
    pub anecdotes_found: [bool; 3],
}

/// Grid resolution for the case study.
pub const PHI: u32 = 3;

/// Runs the case study.
pub fn run(seed: u64) -> Outcome {
    let data = housing(seed);
    let disc =
        Discretized::new(&data.dataset, PHI, DiscretizeStrategy::EquiDepth).expect("non-empty");
    // Display reports: the most negative projections for interpretability.
    let detector = |k: usize, m: usize, threshold: Option<f64>| {
        let mut b = OutlierDetector::builder()
            .phi(PHI)
            .k(k)
            .m(m)
            .search(SearchMethod::BruteForce);
        if let Some(t) = threshold {
            b = b.sparsity_threshold(t);
        }
        b.build()
    };
    let report_k3 = detector(3, 25, None)
        .detect_discretized(&disc)
        .expect("valid parameters");
    let report_k4 = detector(4, 25, None)
        .detect_discretized(&disc)
        .expect("valid parameters");
    let merged = detector(3, 25, None)
        .detect_across_k(&data.dataset, [3usize, 4])
        .expect("valid parameters");
    // "Found" uses the paper's criterion: a record is an outlier if it is
    // covered by *some* projection with S ≤ −3 (not necessarily the top-25).
    let thresholded = detector(3, 2000, Some(-3.0))
        .detect_discretized(&disc)
        .expect("valid parameters");
    let flagged = |row: usize| thresholded.outlier_rows.binary_search(&row).is_ok();
    let anecdotes_found = [
        flagged(data.anecdote_rows[0]),
        flagged(data.anecdote_rows[1]),
        flagged(data.anecdote_rows[2]),
    ];
    Outcome {
        data,
        report_k3,
        report_k4,
        merged,
        disc,
        anecdotes_found,
    }
}

/// Renders the top projections with their interpretable explanations.
pub fn render(o: &Outcome) -> String {
    let mut out = String::new();
    for (k, report) in [(3usize, &o.report_k3), (4, &o.report_k4)] {
        out.push_str(&format!(
            "Top {k}-dimensional sparse projections ({} outlier rows):\n",
            report.outlier_rows.len()
        ));
        for i in 0..report.projections.len().min(5) {
            out.push_str(&format!("  {}\n", report.explain(i, &o.disc)));
        }
        out.push('\n');
    }
    out.push_str("k = 3 and k = 4 merged by exact significance (cross-k comparable):\n");
    for p in o.merged.top(5) {
        out.push_str(&format!(
            "  k={} {}  S = {:.2}  exact P = {:.2e}\n",
            p.k, p.scored.projection, p.scored.sparsity, p.exact_significance
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "Planted anecdotes found: crime/ptratio/dis {}, nox/age/rad {}, crim/indus/medv {}\n",
        o.anecdotes_found[0], o.anecdotes_found[1], o.anecdotes_found[2]
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_planted_anecdotes() {
        let o = run(7);
        let found = o.anecdotes_found.iter().filter(|&&f| f).count();
        assert!(
            found >= 2,
            "only {found}/3 anecdotes found: {:?}",
            o.anecdotes_found
        );
    }

    #[test]
    fn reports_are_interpretable() {
        let o = run(7);
        let text = render(&o);
        // Explanations carry real attribute names and intervals.
        assert!(text.contains(" in ["), "{text}");
        let named = [
            "CRIM", "PTRATIO", "DIS", "NOX", "AGE", "RAD", "INDUS", "MEDV", "ZN", "RM", "TAX", "B",
            "LSTAT",
        ];
        assert!(
            named.iter().any(|n| text.contains(n)),
            "no known attribute named in:\n{text}"
        );
    }

    #[test]
    fn merged_ranking_prefers_the_more_surprising_k() {
        let o = run(7);
        // At (506, φ=3): E = 18.7 at k = 3 but only 6.2 at k = 4, so a
        // k = 3 singleton is exponentially more surprising than a k = 4 one;
        // the exact-significance merge must rank k = 3 cubes first.
        assert!(!o.merged.projections.is_empty());
        assert_eq!(o.merged.projections[0].k, 3);
        for w in o.merged.projections.windows(2) {
            assert!(w[0].exact_significance <= w[1].exact_significance);
        }
    }

    #[test]
    fn projections_are_strongly_sparse() {
        let o = run(7);
        assert!(!o.report_k3.projections.is_empty());
        assert!(o.report_k3.projections[0].sparsity < -3.0);
        // k = 4 cubes have lower expected occupancy, hence weaker ceilings.
        assert!(o.report_k4.projections[0].sparsity < -1.5);
    }
}
