//! Table 2: class distribution of the arrhythmia dataset.
//!
//! Verifies the simulacrum against the published figures: commonly occurring
//! classes {01, 02, 06, 10, 16} cover 85.4 % of instances, rare classes
//! (< 5 %) {03, 04, 05, 07, 08, 09, 14, 15} cover 14.6 %.

use crate::table;
use hdoutlier_data::generators::uci_like::{
    arrhythmia, ArrhythmiaConfig, ARRHYTHMIA_COMMON_CLASSES, ARRHYTHMIA_RARE_CLASSES,
};

/// The two rows of Table 2, measured from the generated data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2 {
    /// Percentage of instances in common classes.
    pub common_pct: f64,
    /// Percentage in rare classes.
    pub rare_pct: f64,
}

/// Measures the class distribution of the arrhythmia simulacrum.
pub fn run(config: &ArrhythmiaConfig) -> Table2 {
    let a = arrhythmia(config);
    let labels = a.dataset.labels().expect("arrhythmia is labeled");
    let n = labels.len() as f64;
    let common = labels
        .iter()
        .filter(|l| ARRHYTHMIA_COMMON_CLASSES.contains(l))
        .count() as f64;
    let rare = labels
        .iter()
        .filter(|l| ARRHYTHMIA_RARE_CLASSES.contains(l))
        .count() as f64;
    Table2 {
        common_pct: 100.0 * common / n,
        rare_pct: 100.0 * rare / n,
    }
}

/// Renders in the paper's layout.
pub fn render(t: &Table2) -> String {
    let codes = |cs: &[u32]| {
        cs.iter()
            .map(|c| format!("{c:02}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    table::render(
        &["Case", "Class Codes", "Percentage of Instances"],
        &[
            vec![
                "Commonly Occurring Classes (>= 5%)".into(),
                codes(ARRHYTHMIA_COMMON_CLASSES),
                format!("{:.1}%", t.common_pct),
            ],
            vec![
                "Rare Classes (< 5%)".into(),
                codes(ARRHYTHMIA_RARE_CLASSES),
                format!("{:.1}%", t.rare_pct),
            ],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_percentages() {
        let t = run(&ArrhythmiaConfig::default());
        assert!(
            (t.common_pct - 85.4).abs() < 0.05,
            "common {}",
            t.common_pct
        );
        assert!((t.rare_pct - 14.6).abs() < 0.05, "rare {}", t.rare_pct);
        assert!((t.common_pct + t.rare_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn render_shows_both_rows() {
        let text = render(&run(&ArrhythmiaConfig::default()));
        assert!(text.contains("85.4%"));
        assert!(text.contains("14.6%"));
        assert!(text.contains("03, 04, 05"));
    }
}
