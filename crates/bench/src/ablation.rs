//! Ablations of the design decisions DESIGN.md §5 calls out:
//!
//! 1. **Equi-depth vs equi-width grids** (§1.3's stated choice): equi-width
//!    ranges in skewed data hold wildly uneven mass, corrupting the `N·f^k`
//!    baseline of Eq. 1 and flooding the report with false "sparse" cubes in
//!    the stretched-out tails.
//! 2. **Selection schemes** (Fig. 4's rank roulette vs alternatives).
//! 3. **Fitness caching** (how many cube counts the GA's memo table saves).
//! 4. **Internal-candidate tracking**: this implementation harvests the
//!    cubes the optimized crossover scores internally into the best-set;
//!    the paper's Fig. 3 tracks only population members. The ablation
//!    quantifies the quality this free lunch buys.

use crate::table;
use hdoutlier_core::brute::{brute_force_search, BruteForceConfig};
use hdoutlier_core::crossover::CrossoverKind;
use hdoutlier_core::evolutionary::{evolutionary_search, EvolutionaryConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig, PlantedOutliers};
use hdoutlier_evolve::SelectionScheme;
use hdoutlier_index::{BitmapCounter, CachedCounter, CubeCounter};

fn workload(seed: u64) -> PlantedOutliers {
    planted_outliers(&PlantedConfig {
        n_rows: 1500,
        n_dims: 16,
        n_outliers: 6,
        seed,
        ..PlantedConfig::default()
    })
}

/// Grid-strategy ablation: precision of the reported outliers against the
/// planted ground truth under both discretizations.
pub fn grid_ablation(seed: u64) -> Vec<(String, f64, f64)> {
    let planted = workload(seed);
    // Skew one dimension hard so equi-width collapses: exponentiate it.
    let mut rows: Vec<Vec<f64>> = planted.dataset.rows().map(<[f64]>::to_vec).collect();
    for row in rows.iter_mut() {
        row[0] = row[0].exp();
        row[1] = row[1].exp();
    }
    let skewed = hdoutlier_data::Dataset::from_rows(rows).expect("same shape");
    [
        ("equi-depth", DiscretizeStrategy::EquiDepth),
        ("equi-width", DiscretizeStrategy::EquiWidth),
    ]
    .into_iter()
    .map(|(name, strategy)| {
        let disc = Discretized::new(&skewed, 5, strategy).expect("non-empty");
        let counter = BitmapCounter::new(&disc);
        let fitness = SparsityFitness::new(&counter, 2);
        let out = brute_force_search(
            &fitness,
            &BruteForceConfig {
                m: 12,
                ..BruteForceConfig::default()
            },
        );
        let covered: Vec<usize> = out
            .best
            .iter()
            .flat_map(|s| fitness.rows(&s.projection))
            .collect();
        let precision = planted.precision(&covered).unwrap_or(0.0);
        let recall = planted.recall(&covered).unwrap_or(0.0);
        (name.to_string(), precision, recall)
    })
    .collect()
}

/// Selection-scheme ablation: best-20 mean quality per scheme (averaged over
/// seeds), on the hard musk-like regime where near-empty cubes must be
/// *found* rather than stumbled upon — easy instances saturate and every
/// scheme looks identical.
pub fn selection_ablation(seed: u64) -> Vec<(String, f64)> {
    let sim = hdoutlier_data::generators::uci_like::musk(seed);
    let disc = Discretized::new(&sim.dataset, 3, DiscretizeStrategy::EquiDepth).expect("non-empty");
    let counter = CachedCounter::new(BitmapCounter::new(&disc));
    let fitness = SparsityFitness::new(&counter, 3);
    [
        ("rank roulette (paper)", SelectionScheme::RankRoulette),
        ("fitness proportional", SelectionScheme::FitnessProportional),
        (
            "tournament (size 2)",
            SelectionScheme::Tournament { size: 2 },
        ),
        (
            "uniform (no pressure)",
            SelectionScheme::Tournament { size: 1 },
        ),
    ]
    .into_iter()
    .map(|(name, scheme)| {
        let mut total = 0.0;
        let mut count = 0usize;
        for s in 0..3u64 {
            let out = evolutionary_search(
                &fitness,
                &EvolutionaryConfig {
                    m: 20,
                    selection: scheme,
                    crossover: CrossoverKind::Optimized,
                    p1: 0.1,
                    p2: 0.1,
                    max_generations: 60,
                    seed: seed.wrapping_add(s),
                    ..EvolutionaryConfig::default()
                },
            );
            total += out.best.iter().map(|x| x.sparsity).sum::<f64>();
            count += out.best.len();
        }
        (name.to_string(), total / count.max(1) as f64)
    })
    .collect()
}

/// Tracking ablation: best-20 quality with and without harvesting the
/// optimized crossover's internally scored cubes, on the hard musk-like
/// regime (averaged over seeds).
pub fn tracking_ablation(seed: u64) -> (f64, f64) {
    // The small machine dataset is where this shows: the population
    // converges onto one region while the crossover's internal enumeration
    // has effectively covered the whole (tiny) cube space.
    let sim = hdoutlier_data::generators::uci_like::machine(seed);
    let disc = Discretized::new(&sim.dataset, 4, DiscretizeStrategy::EquiDepth).expect("non-empty");
    let counter = CachedCounter::new(BitmapCounter::new(&disc));
    let fitness = SparsityFitness::new(&counter, 2);
    let mean_quality = |track: bool| {
        let mut total = 0.0;
        let mut n = 0usize;
        for s in 0..3u64 {
            let out = evolutionary_search(
                &fitness,
                &EvolutionaryConfig {
                    m: 20,
                    crossover: CrossoverKind::Optimized,
                    p1: 0.1,
                    p2: 0.1,
                    max_generations: 80,
                    track_internal_candidates: track,
                    seed: seed.wrapping_add(s),
                    ..EvolutionaryConfig::default()
                },
            );
            total += out.best.iter().map(|x| x.sparsity).sum::<f64>();
            n += out.best.len();
        }
        total / n.max(1) as f64
    };
    (mean_quality(true), mean_quality(false))
}

/// Cache ablation: memo-table hit rate over one GA run.
pub fn cache_ablation(seed: u64) -> (u64, u64) {
    let planted = workload(seed);
    let disc =
        Discretized::new(&planted.dataset, 4, DiscretizeStrategy::EquiDepth).expect("non-empty");
    let cached = CachedCounter::new(BitmapCounter::new(&disc));
    {
        let fitness = SparsityFitness::new(&cached, 3);
        evolutionary_search(
            &fitness,
            &EvolutionaryConfig {
                m: 20,
                p1: 0.1,
                p2: 0.1,
                max_generations: 60,
                seed,
                ..EvolutionaryConfig::default()
            },
        );
    }
    cached.stats()
}

/// Renders all three ablations.
pub fn render(seed: u64) -> String {
    let mut out = String::from("Grid-strategy ablation (skewed data, planted outliers):\n");
    let rows: Vec<Vec<String>> = grid_ablation(seed)
        .into_iter()
        .map(|(name, p, r)| vec![name, format!("{:.2}", p), format!("{:.2}", r)])
        .collect();
    out.push_str(&table::render(&["strategy", "precision", "recall"], &rows));

    out.push_str("\nSelection-scheme ablation (mean best-20 sparsity, lower = better):\n");
    let rows: Vec<Vec<String>> = selection_ablation(seed)
        .into_iter()
        .map(|(name, q)| vec![name, format!("{q:.3}")])
        .collect();
    out.push_str(&table::render(&["scheme", "quality"], &rows));

    let (hits, misses) = cache_ablation(seed);
    out.push_str(&format!(
        "\nFitness-cache ablation: {hits} hits / {misses} misses ({:.0}% of cube counts served from memo)\n",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    ));

    let (with_tracking, without) = tracking_ablation(seed);
    out.push_str(&format!(
        "\nInternal-candidate tracking ablation (mean best-20 sparsity, lower = better):\n           harvesting crossover candidates: {with_tracking:.3}\n           population members only (Fig. 3 literal): {without:.3}\n"
    ));
    out
}

/// Convenience for the index ablation bench: counts a batch of cubes with
/// both backends and asserts equality, returning the cube count.
pub fn verify_counters_agree(seed: u64) -> usize {
    let planted = workload(seed);
    let disc =
        Discretized::new(&planted.dataset, 5, DiscretizeStrategy::EquiDepth).expect("non-empty");
    let bitmap = BitmapCounter::new(&disc);
    let naive = hdoutlier_index::NaiveCounter::new(&disc);
    let mut checked = 0usize;
    for d0 in 0..8u32 {
        for d1 in (d0 + 1)..8 {
            for r0 in 0..5u16 {
                for r1 in 0..5u16 {
                    let cube = hdoutlier_index::Cube::new([(d0, r0), (d1, r1)]).expect("distinct");
                    assert_eq!(bitmap.count(&cube), naive.count(&cube));
                    checked += 1;
                }
            }
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_beats_equi_width_on_skewed_data() {
        let results = grid_ablation(11);
        let depth = &results[0];
        let width = &results[1];
        assert!(
            depth.2 >= width.2,
            "equi-depth recall {} < equi-width recall {}",
            depth.2,
            width.2
        );
        assert!(depth.2 >= 0.5, "equi-depth recall too low: {}", depth.2);
    }

    #[test]
    fn selection_schemes_all_function_and_stay_close() {
        // On a pure needle-hunting instance the scheme ordering is noisy —
        // uniform selection explores more, rank roulette exploits more —
        // so the robust claims are (a) every scheme finds strongly sparse
        // cubes and (b) none collapses relative to the others.
        let results = selection_ablation(5);
        assert_eq!(results.len(), 4);
        let best = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        for (name, q) in &results {
            assert!(*q <= -3.0, "{name} quality {q}");
            assert!(*q <= best + 1.0, "{name} collapsed: {q} vs best {best}");
        }
    }

    #[test]
    fn internal_tracking_never_hurts_and_usually_helps() {
        let (with_tracking, without) = tracking_ablation(5);
        // The tracked set is a superset of the population set, so its best-m
        // can only be at least as good.
        assert!(
            with_tracking <= without + 1e-9,
            "tracking {with_tracking} vs population-only {without}"
        );
    }

    #[test]
    fn cache_hit_rate_is_substantial() {
        let (hits, misses) = cache_ablation(7);
        assert!(hits + misses > 0);
        let rate = hits as f64 / (hits + misses) as f64;
        assert!(rate > 0.3, "hit rate {rate}");
    }

    #[test]
    fn counters_agree_on_workload() {
        assert_eq!(verify_counters_agree(9), 28 * 25);
    }
}
