//! Minimal fixed-width table rendering for the `repro` reports.

/// Renders rows as a fixed-width text table with a header and separator.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a duration as milliseconds with sensible precision.
pub fn ms(d: std::time::Duration) -> String {
    let ms = d.as_secs_f64() * 1000.0;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let out = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name  22"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(ms(std::time::Duration::from_millis(250)), "250");
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.5");
        assert_eq!(ms(std::time::Duration::from_micros(50)), "0.050");
    }
}
