//! §3.1's arrhythmia experiment: do the points covered by abnormally sparse
//! projections over-represent the rare diagnosis classes, and does the
//! subspace method beat the full-dimensional kNN-distance baseline \[25\]?
//!
//! Paper numbers (shape to reproduce, not absolute):
//! - 85 points contained projections with S ≤ −3; **43** of them rare-class;
//! - the baseline's best 85 outliers contained only **28** rare-class
//!   points, and k > 1 nearest neighbors "worsened slightly";
//! - several non-rare hits were recording errors (the 780 cm / 6 kg record).

use crate::table;
use hdoutlier_baselines::{ramaswamy_top_n, Metric};
use hdoutlier_core::crossover::CrossoverKind;
use hdoutlier_core::evolutionary::{multi_restart_search, EvolutionaryConfig, MultiRestartConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::clean::{impute_mean, standardize};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uci_like::{arrhythmia, Arrhythmia, ArrhythmiaConfig};
use hdoutlier_index::{BitmapCounter, CachedCounter};
use std::collections::BTreeSet;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Grid ranges per dimension.
    pub phi: u32,
    /// Projection dimensionality.
    pub k: usize,
    /// Sparsity threshold defining "abnormal" (the paper uses −3).
    pub threshold: f64,
    /// Cap on reported projections: of everything at or below the threshold,
    /// keep the most negative `m_cap`. The paper reports the points covered
    /// by the sparse projections *its GA found* — a best-biased sample of
    /// the eligible cubes, not an exhaustive enumeration.
    pub m_cap: usize,
    /// Number of GA restarts unioned ("find *all* the sparse projections"
    /// needs more coverage than a single converged run provides).
    pub restarts: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Arrhythmia generator knobs.
    pub data: ArrhythmiaConfig,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            phi: 5,
            k: 2,
            threshold: -3.0,
            m_cap: 52,
            restarts: 48,
            seed: 7,
            data: ArrhythmiaConfig::default(),
        }
    }
}

/// Outcome of the comparison.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Points covered by projections with S ≤ threshold.
    pub subspace_outliers: Vec<usize>,
    /// Rare-class points among them.
    pub subspace_rare_hits: usize,
    /// Whether the recording-error row was flagged by the subspace method.
    pub subspace_found_error_row: bool,
    /// Rare-class hits of the 1-NN baseline over the same budget of points.
    pub baseline_rare_hits_1nn: usize,
    /// Rare-class hits of the k-NN (k = 5) baseline.
    pub baseline_rare_hits_knn: usize,
    /// Whether the baseline flagged the recording-error row.
    pub baseline_found_error_row: bool,
    /// Number of distinct sparse projections found.
    pub n_projections: usize,
    /// Rare-class base rate of the dataset (≈ 14.6 %).
    pub rare_base_rate: f64,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Outcome {
    let data = arrhythmia(&config.data);
    let subspace = subspace_outliers(&data, config);
    let subspace_rare_hits = data.rare_hits(&subspace.covered);
    let budget = subspace.covered.len().max(1);

    // The baselines need complete, comparable-scale vectors.
    let for_distance = standardize(&impute_mean(&data.dataset));
    let baseline_1nn: Vec<usize> = ramaswamy_top_n(&for_distance, 1, budget, Metric::Euclidean)
        .expect("complete data")
        .into_iter()
        .map(|o| o.row)
        .collect();
    let baseline_knn: Vec<usize> = ramaswamy_top_n(&for_distance, 5, budget, Metric::Euclidean)
        .expect("complete data")
        .into_iter()
        .map(|o| o.row)
        .collect();

    Outcome {
        subspace_rare_hits,
        subspace_found_error_row: subspace.covered.contains(&data.error_row),
        baseline_rare_hits_1nn: data.rare_hits(&baseline_1nn),
        baseline_rare_hits_knn: data.rare_hits(&baseline_knn),
        baseline_found_error_row: baseline_1nn.contains(&data.error_row),
        n_projections: subspace.n_projections,
        rare_base_rate: data.rare_rows.len() as f64 / data.dataset.n_rows() as f64,
        subspace_outliers: subspace.covered,
    }
}

struct SubspaceResult {
    covered: Vec<usize>,
    n_projections: usize,
}

/// Unions sparse projections across GA restarts, keeps those at or below the
/// threshold, and post-processes to covered points.
fn subspace_outliers(data: &Arrhythmia, config: &Config) -> SubspaceResult {
    let disc = Discretized::new(&data.dataset, config.phi, DiscretizeStrategy::EquiDepth)
        .expect("non-empty");
    let counter = CachedCounter::new(BitmapCounter::new(&disc));
    let fitness = SparsityFitness::new(&counter, config.k);
    // Tabu multi-restart: each restart's finds are banned so the next one
    // hunts elsewhere. At k = 2 there is no partial-fitness gradient toward
    // a hidden pair, so exploration volume (high mutation, many restarts) is
    // what drives discovery.
    let multi = multi_restart_search(
        &fitness,
        &MultiRestartConfig {
            base: EvolutionaryConfig {
                m: 400,
                population: 150,
                crossover: CrossoverKind::Optimized,
                p1: 0.3,
                p2: 0.3,
                max_generations: 150,
                seed: config.seed,
                ..EvolutionaryConfig::default()
            },
            restarts: config.restarts,
            ban_found: true,
            threshold: Some(config.threshold),
        },
    );
    // Keep the m_cap most negative of everything found (already sorted).
    let found = &multi.found[..multi.found.len().min(config.m_cap)];
    let covered: BTreeSet<usize> = found
        .iter()
        .flat_map(|s| fitness.rows(&s.projection))
        .collect();
    SubspaceResult {
        covered: covered.into_iter().collect(),
        n_projections: found.len(),
    }
}

/// Renders the comparison.
pub fn render(o: &Outcome) -> String {
    let n = o.subspace_outliers.len();
    let pct = |hits: usize| {
        if n == 0 {
            0.0
        } else {
            100.0 * hits as f64 / n as f64
        }
    };
    let mut out = table::render(
        &[
            "Method",
            "Outliers",
            "Rare-class hits",
            "Rare %",
            "Error row found",
        ],
        &[
            vec![
                "Sparse projections (S <= -3)".into(),
                n.to_string(),
                o.subspace_rare_hits.to_string(),
                format!("{:.0}%", pct(o.subspace_rare_hits)),
                o.subspace_found_error_row.to_string(),
            ],
            vec![
                "kNN-distance [25], 1-NN".into(),
                n.to_string(),
                o.baseline_rare_hits_1nn.to_string(),
                format!("{:.0}%", pct(o.baseline_rare_hits_1nn)),
                o.baseline_found_error_row.to_string(),
            ],
            vec![
                "kNN-distance [25], 5-NN".into(),
                n.to_string(),
                o.baseline_rare_hits_knn.to_string(),
                format!("{:.0}%", pct(o.baseline_rare_hits_knn)),
                "-".into(),
            ],
        ],
    );
    out.push_str(&format!(
        "\n(base rate: {:.1}% of records are rare-class; {} sparse projections found)\n",
        100.0 * o.rare_base_rate,
        o.n_projections
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            restarts: 24,
            ..Config::default()
        }
    }

    #[test]
    fn subspace_beats_baseline_on_rare_classes() {
        let o = run(&quick_config());
        assert!(
            o.subspace_outliers.len() >= 30,
            "too few subspace outliers: {}",
            o.subspace_outliers.len()
        );
        // The paper's headline: subspace rare-hit rate far above the
        // baseline's and both above the base rate.
        assert!(
            o.subspace_rare_hits > o.baseline_rare_hits_1nn,
            "subspace {} vs baseline {}",
            o.subspace_rare_hits,
            o.baseline_rare_hits_1nn
        );
        let n = o.subspace_outliers.len() as f64;
        assert!(
            o.subspace_rare_hits as f64 / n > 2.0 * o.rare_base_rate,
            "subspace hit rate {:.2} vs base rate {:.2}",
            o.subspace_rare_hits as f64 / n,
            o.rare_base_rate
        );
    }

    #[test]
    fn knn_with_larger_k_does_not_rescue_the_baseline() {
        // "the results did not change significantly (and in fact worsened
        // slightly) when the k-nearest neighbor was used".
        let o = run(&quick_config());
        assert!(o.baseline_rare_hits_knn <= o.baseline_rare_hits_1nn + 3);
    }

    #[test]
    fn render_mentions_both_methods() {
        let o = run(&quick_config());
        let text = render(&o);
        assert!(text.contains("Sparse projections"));
        assert!(text.contains("kNN-distance"));
    }
}
