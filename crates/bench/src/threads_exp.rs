//! Thread-scaling measurement for the pooled brute-force search: the same
//! exhaustive sweep at 1, 2, and 4 workers, verifying on the way that the
//! best-m set is **identical** at every thread count (the pool's contract)
//! and reporting wall time and speedup per setting.
//!
//! Speedup is bounded by the machine: on a single hardware thread the pool
//! only adds scheduling overhead and every speedup is ≈ 1× or below — the
//! numbers recorded in `BENCH_detect.json` are honest wall-clock, not an
//! extrapolation.

use hdoutlier_core::brute::{brute_force_search_parallel, BruteForceConfig};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uniform;
use hdoutlier_index::BitmapCounter;

use crate::table;

/// One thread-count measurement.
#[derive(Debug, Clone)]
pub struct ThreadsRow {
    /// Pool workers used.
    pub threads: usize,
    /// Wall time of the full sweep.
    pub elapsed_s: f64,
    /// `t(1) / t(threads)`.
    pub speedup: f64,
    /// Complete cubes scored (identical across rows by construction).
    pub scored: u64,
}

/// Experiment shape. Sized so a serial sweep takes long enough to time
/// reliably (~10⁵ cubes over 12k rows) but stays far from the budget cap.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rows in the synthetic dataset.
    pub n_rows: usize,
    /// Dataset dimensionality.
    pub n_dims: usize,
    /// Grid resolution.
    pub phi: u32,
    /// Projection dimensionality.
    pub k: usize,
    /// Thread counts to measure (first entry is the serial reference).
    pub threads: Vec<usize>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            n_rows: 12_000,
            n_dims: 12,
            phi: 5,
            k: 3,
            threads: vec![1, 2, 4],
            seed: 2001,
        }
    }
}

/// Runs the sweep once per thread count.
///
/// # Panics
/// Panics if any thread count reports a different best-m set than the
/// serial reference — that would be a pool correctness bug, and timing a
/// wrong answer is worthless.
pub fn run(config: &Config) -> Vec<ThreadsRow> {
    let ds = uniform(config.n_rows, config.n_dims, config.seed);
    let disc = Discretized::new(&ds, config.phi, DiscretizeStrategy::EquiDepth).expect("non-empty");
    let counter = BitmapCounter::new(&disc);
    let brute_config = BruteForceConfig {
        m: 10,
        ..BruteForceConfig::default()
    };

    let mut reference: Option<Vec<(u64, String)>> = None;
    let mut serial_elapsed = None;
    config
        .threads
        .iter()
        .map(|&threads| {
            let start = std::time::Instant::now();
            let outcome = brute_force_search_parallel(&counter, config.k, &brute_config, threads);
            let elapsed_s = start.elapsed().as_secs_f64();

            let signature: Vec<(u64, String)> = outcome
                .best
                .iter()
                .map(|s| (s.sparsity.to_bits(), s.projection.to_string()))
                .collect();
            match &reference {
                None => reference = Some(signature),
                Some(want) => assert_eq!(
                    &signature, want,
                    "threads = {threads} changed the best-m set"
                ),
            }

            let serial = *serial_elapsed.get_or_insert(elapsed_s);
            ThreadsRow {
                threads,
                elapsed_s,
                speedup: serial / elapsed_s,
                scored: outcome.scored,
            }
        })
        .collect()
}

/// Renders the measurement table.
pub fn render(rows: &[ThreadsRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.1}", r.elapsed_s * 1e3),
                format!("{:.2}x", r.speedup),
                r.scored.to_string(),
            ]
        })
        .collect();
    table::render(
        &["threads", "time (ms)", "speedup", "cubes scored"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_identical_across_thread_counts_and_renders() {
        // A small shape so the correctness assertion inside `run` executes
        // quickly; the default shape is for timing, not testing.
        let rows = run(&Config {
            n_rows: 400,
            n_dims: 6,
            phi: 4,
            k: 2,
            threads: vec![1, 2, 8],
            seed: 5,
        });
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.scored == rows[0].scored));
        assert_eq!(rows[0].speedup, 1.0);
        let rendered = render(&rows);
        assert!(rendered.contains("speedup"), "{rendered}");
    }
}
