#![warn(missing_docs)]

//! Benchmark harness reproducing every table and figure of
//! "Outlier Detection for High Dimensional Data" (Aggarwal & Yu, SIGMOD 2001).
//!
//! Each experiment lives in its own module and is runnable through the
//! `repro` binary (`cargo run -p hdoutlier-bench --release --bin repro -- <cmd>`):
//!
//! | command      | reproduces                                             |
//! |--------------|--------------------------------------------------------|
//! | `table1`     | Table 1: brute vs Gen vs Gen° time & quality, 5 datasets |
//! | `table2`     | Table 2: arrhythmia class distribution                  |
//! | `arrhythmia` | §3.1: rare-class hit rate, subspace vs kNN baseline      |
//! | `housing`    | §3.1: interpretable housing projections                  |
//! | `figure1`    | Figure 1: subspace views expose what full-d hides        |
//! | `params`     | §2.4: the k*/φ selection analysis                        |
//! | `scaling`    | §3: brute-force search-space explosion with d            |
//! | `ablation`   | DESIGN.md §5: grids, selection schemes, caching          |
//! | `prescreen`  | §3.1's classifier pre-screening remark, quantified       |
//! | `intensional`| §1's cost critique of the roll-up/drill-down method \[23\] |
//! | `threads`    | pooled brute force at 1/2/4 workers: speedup + identity  |
//! | `all`        | everything above, in order                               |
//!
//! The Criterion benches under `benches/` wrap scaled-down versions of the
//! same experiment code for statistically careful timing.

pub mod ablation;
pub mod arrhythmia;
pub mod bench_json;
pub mod figure1;
pub mod housing;
pub mod intensional_exp;
pub mod params_exp;
pub mod prescreen;
pub mod scaling;
pub mod table;
pub mod table1;
pub mod table2;
pub mod threads_exp;
