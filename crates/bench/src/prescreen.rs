//! §3.1's closing observation, made into an experiment: *"points which are
//! contrarian to the overall trends can confuse the training process. Thus,
//! these outlier detection techniques can also be used in order to
//! pre-screen such points from the data set before applying a
//! classification algorithm."*
//!
//! Setup: a two-class problem with a strongly correlated feature pair
//! carrying a moderate class shift. A fraction of training records is
//! *contaminated*: contrarian in the correlated pair (high/low where the
//! bulk is high/high or low/low) with systematically assigned labels. Such
//! points are exactly what the detector flags — and they are high-leverage
//! for a least-squares classifier, tilting its hyperplane into the
//! low-variance direction. Pre-screening with the subspace detector removes
//! them and restores accuracy. (A nearest-centroid model, by contrast, is
//! nearly immune — leverage matters, which is why the experiment uses
//! least squares, and why the paper's remark says "confuse the training
//! process" rather than naming a specific learner.)

use hdoutlier_core::detector::{OutlierDetector, SearchMethod};
use hdoutlier_data::Dataset;
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};

/// A ridge least-squares classifier: `w = (XᵀX + λI)⁻¹ Xᵀ y` over features
/// plus a bias column, with targets `y ∈ {−1, +1}`; prediction is the sign
/// of `w·x`. Least squares is deliberately *leverage-sensitive*: far-out
/// training points tilt the hyperplane, which is exactly the damage
/// contrarian records do.
#[derive(Debug, Clone)]
pub struct LeastSquares {
    /// Weights; last entry is the bias.
    weights: Vec<f64>,
}

impl LeastSquares {
    /// Fits with a small ridge (`λ = 1e-6·n`) for numerical safety.
    ///
    /// # Panics
    /// Panics if the dataset has no labels or the normal equations are
    /// singular beyond the ridge's help.
    pub fn fit(data: &Dataset) -> Self {
        let labels = data.labels().expect("labeled data");
        let d = data.n_dims() + 1; // bias column
        let n = data.n_rows();
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        let mut x = vec![0.0f64; d];
        for (i, row) in data.rows().enumerate() {
            x[..d - 1].copy_from_slice(row);
            x[d - 1] = 1.0;
            let y = if labels[i] == 0 { -1.0 } else { 1.0 };
            #[allow(clippy::needless_range_loop)] // dense linear algebra; indices are clearest
            for a in 0..d {
                xty[a] += x[a] * y;
                for b in a..d {
                    xtx[a][b] += x[a] * x[b];
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // symmetric fill; indices are clearest
        for a in 0..d {
            for b in 0..a {
                xtx[a][b] = xtx[b][a];
            }
            xtx[a][a] += 1e-6 * n as f64;
        }
        let weights = solve(xtx, xty);
        Self { weights }
    }

    /// Predicts the class of one feature vector.
    pub fn predict(&self, row: &[f64]) -> u32 {
        let d = self.weights.len();
        debug_assert_eq!(row.len(), d - 1);
        let score: f64 = row
            .iter()
            .zip(&self.weights[..d - 1])
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.weights[d - 1];
        u32::from(score > 0.0)
    }

    /// Accuracy on a labeled dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let labels = data.labels().expect("labeled data");
        let hits = data
            .rows()
            .enumerate()
            .filter(|(i, row)| self.predict(row) == labels[*i])
            .count();
        hits as f64 / data.n_rows() as f64
    }

    /// The learned weight vector (bias last) — exposed for tests.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
/// Panics on a singular system.
#[allow(clippy::needless_range_loop)] // dense linear algebra; indices are clearest
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        assert!(a[pivot][col].abs() > 1e-12, "singular system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Training rows.
    pub n_train: usize,
    /// Clean test rows.
    pub n_test: usize,
    /// Feature dimensionality.
    pub n_dims: usize,
    /// Fraction of training rows with contrarian (mislabeled) content.
    pub contamination: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            n_train: 2000,
            n_test: 2000,
            n_dims: 8,
            contamination: 0.06,
            seed: 5,
        }
    }
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Test accuracy trained on the contaminated data.
    pub accuracy_raw: f64,
    /// Test accuracy after subspace pre-screening.
    pub accuracy_screened: f64,
    /// Test accuracy of a model trained on uncontaminated data (ceiling).
    pub accuracy_clean_ceiling: f64,
    /// Training rows removed by the screen.
    pub removed: usize,
    /// Contaminated rows among the removed (screen precision numerator).
    pub removed_contaminated: usize,
    /// Total contaminated rows planted.
    pub contaminated: usize,
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `(features, labels, contaminated_flags)`; contaminated rows are
/// feature-typical for the *other* class.
fn generate(
    n: usize,
    d: usize,
    contamination: f64,
    rng: &mut StdRng,
) -> (Vec<Vec<f64>>, Vec<u32>, Vec<bool>) {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut flags = Vec::with_capacity(n);
    for _ in 0..n {
        // Features 0 and 1 share a strong latent factor independent of the
        // class (the structured pair the detector can exploit); feature 2
        // carries the class signal (mean ±1); the rest is noise.
        let f = standard_normal(rng);
        let true_class: u32 = rng.gen_range(0..2);
        let class_shift = if true_class == 1 { 1.0 } else { -1.0 };
        let mut row: Vec<f64> = (0..d)
            .map(|j| {
                if j < 2 {
                    0.95 * f + 0.31 * standard_normal(rng)
                } else if j == 2 {
                    class_shift + standard_normal(rng)
                } else {
                    standard_normal(rng)
                }
            })
            .collect();
        // Contaminated records are contrarian in the correlated pair —
        // x0 high, x1 low, a combination the bulk essentially never
        // produces — and carry the label 0 regardless of their features.
        // They are detectable *without* labels (the pair violation) and
        // damaging *with* them (they drag the class-0 centroid along
        // (+, −), rotating the decision boundary).
        let contaminated = rng.gen::<f64>() < contamination;
        let label = if contaminated {
            // Contrarian in the correlated pair — at varied magnitudes and
            // in both orientations so the contaminants spread across
            // several near-empty grid cells instead of piling into one (a
            // single cube holding all of them would not be sparse at all —
            // the same subtlety the arrhythmia simulacrum documents)...
            let magnitude = 1.5 + 1.0 * rng.gen::<f64>();
            let (a, b) = if rng.gen::<bool>() {
                (magnitude, -magnitude)
            } else {
                (-magnitude, magnitude)
            };
            row[0] = a + 0.1 * standard_normal(rng);
            row[1] = b + 0.1 * standard_normal(rng);
            // ...and *label-flipped leverage points* on the class feature:
            // far out along class 1's side but labeled 0. Least squares
            // must fit y = −1 out there, crushing the learned weight on the
            // class signal.
            row[2] = 5.0 + standard_normal(rng);
            0
        } else {
            true_class
        };
        rows.push(row);
        labels.push(label);
        flags.push(contaminated);
    }
    (rows, labels, flags)
}

/// Runs the experiment.
pub fn run(config: &Config) -> Outcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (train_rows, train_labels, flags) = generate(
        config.n_train,
        config.n_dims,
        config.contamination,
        &mut rng,
    );
    let (test_rows, test_labels, _) = generate(config.n_test, config.n_dims, 0.0, &mut rng);

    let mut train = Dataset::from_rows(train_rows.clone()).expect("non-empty");
    train.set_labels(train_labels.clone()).expect("aligned");
    let mut test = Dataset::from_rows(test_rows).expect("non-empty");
    test.set_labels(test_labels).expect("aligned");

    // Ceiling: train on the uncontaminated subset.
    let clean_rows: Vec<usize> = (0..config.n_train).filter(|&i| !flags[i]).collect();
    let ceiling =
        LeastSquares::fit(&train.select_rows(&clean_rows).expect("non-empty")).accuracy(&test);

    // Raw: train on everything.
    let raw = LeastSquares::fit(&train).accuracy(&test);

    // Screen: the detector runs unsupervised on the features alone — the
    // contaminants are contrarian *combinations* and need no labels to be
    // seen.
    let screen_input = Dataset::from_rows(train_rows).expect("non-empty");
    let report = OutlierDetector::builder()
        .phi(4)
        .k(2)
        .m(8)
        .search(SearchMethod::BruteForce)
        .build()
        .detect(&screen_input)
        .expect("valid parameters");
    let removed: Vec<usize> = report.outlier_rows.clone();
    let keep: Vec<usize> = (0..config.n_train)
        .filter(|i| removed.binary_search(i).is_err())
        .collect();
    let screened = LeastSquares::fit(&train.select_rows(&keep).expect("non-empty")).accuracy(&test);

    Outcome {
        accuracy_raw: raw,
        accuracy_screened: screened,
        accuracy_clean_ceiling: ceiling,
        removed_contaminated: removed.iter().filter(|&&r| flags[r]).count(),
        removed: removed.len(),
        contaminated: flags.iter().filter(|&&f| f).count(),
    }
}

/// Renders the outcome.
pub fn render(o: &Outcome) -> String {
    format!(
        "least-squares classifier test accuracy:\n\
         \n  trained on contaminated data : {:.3}\
         \n  after subspace pre-screening : {:.3}\
         \n  uncontaminated ceiling       : {:.3}\n\
         \nscreen removed {} rows, {} of the {} contaminated among them\n",
        o.accuracy_raw,
        o.accuracy_screened,
        o.accuracy_clean_ceiling,
        o.removed,
        o.removed_contaminated,
        o.contaminated,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prescreening_recovers_accuracy() {
        let o = run(&Config::default());
        assert!(
            o.accuracy_raw < o.accuracy_clean_ceiling - 0.005,
            "contamination should hurt: raw {} vs ceiling {}",
            o.accuracy_raw,
            o.accuracy_clean_ceiling
        );
        assert!(
            o.accuracy_screened > o.accuracy_raw,
            "screening should help: {} -> {}",
            o.accuracy_raw,
            o.accuracy_screened
        );
        // The screen catches most of the contamination.
        assert!(
            o.removed_contaminated as f64 >= 0.5 * o.contaminated as f64,
            "caught {}/{}",
            o.removed_contaminated,
            o.contaminated
        );
    }

    #[test]
    fn classifier_basics() {
        let mut ds = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 4.9],
        ])
        .unwrap();
        ds.set_labels(vec![0, 0, 1, 1]).unwrap();
        let model = LeastSquares::fit(&ds);
        assert_eq!(model.predict(&[0.1, 0.1]), 0);
        assert_eq!(model.predict(&[4.8, 5.2]), 1);
        assert_eq!(model.accuracy(&ds), 1.0);
    }

    #[test]
    fn weights_recover_a_clean_linear_signal() {
        // y = sign(x0): the fitted weight on x0 dominates, bias near zero.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let x = (i as f64 - 99.5) / 50.0;
            rows.push(vec![x, (i % 7) as f64 / 7.0 - 0.5]);
            labels.push(u32::from(x > 0.0));
        }
        let mut ds = Dataset::from_rows(rows).unwrap();
        ds.set_labels(labels).unwrap();
        let model = LeastSquares::fit(&ds);
        let w = model.weights();
        assert!(w[0] > 5.0 * w[1].abs(), "weights {w:?}");
        assert_eq!(model.accuracy(&ds), 1.0);
    }

    #[test]
    #[should_panic(expected = "singular system")]
    fn solve_rejects_singular_systems() {
        // Two identical constant columns (and no ridge): force singularity
        // through the raw solver.
        super::solve(vec![vec![1.0, 1.0], vec![1.0, 1.0]], vec![1.0, 2.0]);
    }

    #[test]
    fn zero_contamination_leaves_little_to_fix() {
        let o = run(&Config {
            contamination: 0.0,
            ..Config::default()
        });
        assert_eq!(o.contaminated, 0);
        assert!((o.accuracy_raw - o.accuracy_clean_ceiling).abs() < 1e-9);
        // Screening may trim a few benign tails, but accuracy stays close.
        assert!((o.accuracy_screened - o.accuracy_raw).abs() < 0.01);
    }
}
