//! Schema-stable benchmark datapoints (`BENCH_*.json`).
//!
//! Every invocation of `stream_throughput --bench-json` or `repro
//! --bench-json` appends one comparable datapoint to the repo's perf
//! trajectory: throughput per stage, latency percentiles, and enough
//! metadata (`git describe`, commit, timestamp) to place the number in
//! history. The schema is versioned (`hdoutlier-bench/1`) and the key
//! order is fixed, so trajectory diffs across PRs stay line-stable.
//!
//! The renderer is hand-rolled std-only JSON: the workspace is hermetic
//! and the value space is tame (identifiers, counts, seconds), so the only
//! escaping that matters is on the git strings, which pass through
//! [`escape`] anyway.

use std::fmt::Write as _;
use std::process::Command;

/// One timed stage: `records` processed in `elapsed_s` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage label, e.g. `"scorer.score_record"` or `"end-to-end"`.
    pub name: String,
    /// Records pushed through the stage.
    pub records: u64,
    /// Wall-clock seconds for the whole stage.
    pub elapsed_s: f64,
}

/// A histogram summary carried into the datapoint (from
/// `hdoutlier_obs::HistogramSnapshot` or equivalent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Number of samples.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// Builder for one `BENCH_*.json` datapoint.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    bench: String,
    config: Vec<(String, f64)>,
    stages: Vec<Stage>,
    latency_us: Option<Percentiles>,
    phases_us: Vec<(String, Percentiles)>,
}

impl BenchReport {
    /// Starts a datapoint for the named bench (`"stream"`, `"detect"`).
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            ..Default::default()
        }
    }

    /// Records one numeric config knob (rows, dims, phi, …).
    pub fn config(&mut self, key: &str, value: f64) -> &mut Self {
        self.config.push((key.to_string(), value));
        self
    }

    /// Records one timed stage.
    pub fn stage(&mut self, name: &str, records: u64, elapsed_s: f64) -> &mut Self {
        self.stages.push(Stage {
            name: name.to_string(),
            records,
            elapsed_s,
        });
        self
    }

    /// Attaches the per-record latency percentiles (stream benches).
    pub fn latency_us(&mut self, p: Percentiles) -> &mut Self {
        self.latency_us = Some(p);
        self
    }

    /// Attaches one phase-duration histogram (detect benches:
    /// `discretize`, `index`, `search`, `postprocess`).
    pub fn phase_us(&mut self, name: &str, p: Percentiles) -> &mut Self {
        self.phases_us.push((name.to_string(), p));
        self
    }

    /// Renders the datapoint. Derived rates (`records_per_sec`,
    /// `us_per_record`) are computed here so every consumer sees the same
    /// arithmetic.
    pub fn to_json(&self) -> String {
        let (describe, commit) = git_metadata();
        let created = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"hdoutlier-bench/1\",\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", escape(&self.bench));
        let _ = writeln!(out, "  \"created_unix_s\": {created},");
        out.push_str("  \"git\": {");
        let _ = write!(out, "\"describe\": {}, ", quote_opt(&describe));
        let _ = write!(out, "\"commit\": {}", quote_opt(&commit));
        out.push_str("},\n");
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", escape(k), num(*v));
        }
        out.push_str("},\n");
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let per_sec = if s.elapsed_s > 0.0 {
                s.records as f64 / s.elapsed_s
            } else {
                0.0
            };
            let us_per = if s.records > 0 {
                s.elapsed_s * 1e6 / s.records as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"records\": {}, \"elapsed_s\": {}, \
                 \"records_per_sec\": {}, \"us_per_record\": {}}}",
                escape(&s.name),
                s.records,
                num(s.elapsed_s),
                num(per_sec),
                num(us_per)
            );
            out.push_str(if i + 1 < self.stages.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        match &self.latency_us {
            Some(p) => {
                let _ = writeln!(out, "  \"latency_us\": {},", percentiles(p));
            }
            None => out.push_str("  \"latency_us\": null,\n"),
        }
        out.push_str("  \"phases_us\": {");
        for (i, (name, p)) in self.phases_us.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", escape(name), percentiles(p));
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes [`BenchReport::to_json`] to `path`.
    ///
    /// # Errors
    /// The underlying filesystem error, untouched.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn percentiles(p: &Percentiles) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        p.count,
        num(p.p50),
        num(p.p90),
        num(p.p99),
        num(p.max)
    )
}

/// JSON number formatting: finite shortest-round-trip, non-finite as null
/// (JSON has no Inf/NaN).
fn num(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

fn quote_opt(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `git describe --always --dirty` and the full commit hash, when the bench
/// runs inside a git checkout (both `None` otherwise — the datapoint is
/// still valid, just unplaced).
pub fn git_metadata() -> (Option<String>, Option<String>) {
    let run = |args: &[&str]| -> Option<String> {
        let out = Command::new("git").args(args).output().ok()?;
        if !out.status.success() {
            return None;
        }
        let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
        (!text.is_empty()).then_some(text)
    };
    (
        run(&["describe", "--always", "--dirty"]),
        run(&["rev-parse", "HEAD"]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapoint_has_schema_rates_and_fixed_key_order() {
        let mut r = BenchReport::new("stream");
        r.config("n_rows", 1000.0)
            .config("n_dims", 10.0)
            .stage("score", 1000, 0.5)
            .latency_us(Percentiles {
                count: 1000,
                p50: 1.0,
                p90: 2.0,
                p99: 5.0,
                max: 9.5,
            });
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"hdoutlier-bench/1\""), "{json}");
        assert!(json.contains("\"records_per_sec\": 2000"), "{json}");
        assert!(json.contains("\"us_per_record\": 500"), "{json}");
        assert!(json.contains("\"p99\": 5"), "{json}");
        // Key order is part of the schema contract.
        let order = [
            "\"schema\"",
            "\"bench\"",
            "\"created_unix_s\"",
            "\"git\"",
            "\"config\"",
            "\"stages\"",
            "\"latency_us\"",
            "\"phases_us\"",
        ];
        let positions: Vec<usize> = order.iter().map(|k| json.find(k).unwrap()).collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{json}");
    }

    #[test]
    fn detect_shape_carries_phase_histograms() {
        let mut r = BenchReport::new("detect");
        r.stage("detect", 5, 1.0).phase_us(
            "search",
            Percentiles {
                count: 5,
                p50: 100.0,
                p90: 200.0,
                p99: 200.0,
                max: 250.0,
            },
        );
        let json = r.to_json();
        assert!(
            json.contains("\"phases_us\": {\"search\": {\"count\": 5"),
            "{json}"
        );
        assert!(json.contains("\"latency_us\": null"), "{json}");
    }

    #[test]
    fn hostile_strings_are_escaped_and_zero_division_is_safe() {
        let mut r = BenchReport::new("a\"b\\c");
        r.stage("empty", 0, 0.0);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"a\\\"b\\\\c\""), "{json}");
        assert!(json.contains("\"records_per_sec\": 0"), "{json}");
        assert!(json.contains("\"us_per_record\": 0"), "{json}");
    }
}
