//! §3's complexity observation: the brute-force candidate count
//! `C(d, k)·φ^k` explodes with dimensionality (7·10⁷ already at d = 20,
//! k = 4, φ = 10) while the evolutionary algorithm's cost stays governed by
//! population × generations.

use crate::table;
use hdoutlier_core::brute::{brute_force_search, BruteForceConfig};
use hdoutlier_core::crossover::CrossoverKind;
use hdoutlier_core::evolutionary::{evolutionary_search, EvolutionaryConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_index::{BitmapCounter, CachedCounter};
use hdoutlier_stats::SparsityParams;
use std::time::Duration;

/// One dimensionality point of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Dataset dimensionality.
    pub d: usize,
    /// Analytic search-space size `C(d, k)·φ^k`.
    pub space: f64,
    /// Measured brute-force time (`None` if the budget tripped).
    pub brute_time: Option<Duration>,
    /// Brute-force candidates accounted for.
    pub brute_candidates: u64,
    /// Measured evolutionary (Gen°) time.
    pub evo_time: Duration,
    /// Evolutionary fitness evaluations.
    pub evo_evaluations: u64,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Dimensionalities to test.
    pub dims: Vec<usize>,
    /// Rows per dataset.
    pub n_rows: usize,
    /// Grid resolution.
    pub phi: u32,
    /// Projection dimensionality.
    pub k: usize,
    /// Brute-force candidate budget.
    pub brute_budget: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            dims: vec![8, 12, 16, 24, 32, 48, 64, 96, 128, 160],
            n_rows: 500,
            phi: 3,
            k: 3,
            brute_budget: 3_000_000,
            seed: 11,
        }
    }
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<ScalingRow> {
    config
        .dims
        .iter()
        .map(|&d| {
            let planted = planted_outliers(&PlantedConfig {
                n_rows: config.n_rows,
                n_dims: d,
                n_outliers: 5,
                seed: config.seed,
                ..PlantedConfig::default()
            });
            let disc =
                Discretized::new(&planted.dataset, config.phi, DiscretizeStrategy::EquiDepth)
                    .expect("non-empty");
            let counter = BitmapCounter::new(&disc);
            let fitness = SparsityFitness::new(&counter, config.k);
            let space = SparsityParams::new(config.n_rows as u64, config.phi, config.k as u32)
                .expect("valid")
                .search_space_size(d as u32);

            let start = std::time::Instant::now();
            let brute = brute_force_search(
                &fitness,
                &BruteForceConfig {
                    m: 20,
                    require_nonempty: true,
                    max_candidates: Some(config.brute_budget),
                },
            );
            let brute_time = brute.completed.then(|| start.elapsed());

            let cached = CachedCounter::new(counter.clone());
            let fitness = SparsityFitness::new(&cached, config.k);
            let start = std::time::Instant::now();
            let evo = evolutionary_search(
                &fitness,
                &EvolutionaryConfig {
                    m: 20,
                    population: 100,
                    crossover: CrossoverKind::Optimized,
                    p1: 0.1,
                    p2: 0.1,
                    max_generations: 100,
                    seed: config.seed,
                    ..EvolutionaryConfig::default()
                },
            );
            let evo_time = start.elapsed();

            ScalingRow {
                d,
                space,
                brute_time,
                brute_candidates: brute.candidates,
                evo_time,
                evo_evaluations: evo.evaluations,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[ScalingRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.d.to_string(),
                format!("{:.2e}", r.space),
                r.brute_time.map_or("-".into(), table::ms),
                r.brute_candidates.to_string(),
                table::ms(r.evo_time),
                r.evo_evaluations.to_string(),
            ]
        })
        .collect();
    table::render(
        &[
            "d",
            "C(d,k)*phi^k",
            "Brute(ms)",
            "Brute cand.",
            "Gen°(ms)",
            "Gen° evals",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            dims: vec![8, 16, 32],
            n_rows: 300,
            brute_budget: 500_000,
            ..Config::default()
        }
    }

    #[test]
    fn search_space_grows_superlinearly() {
        let rows = run(&quick());
        assert!(rows[1].space > 5.0 * rows[0].space);
        assert!(rows[2].space > 5.0 * rows[1].space);
    }

    #[test]
    fn evolutionary_cost_is_roughly_flat_while_brute_explodes() {
        let rows = run(&quick());
        // GA evaluations bounded by population × (generations + 1).
        for r in &rows {
            assert!(r.evo_evaluations <= 100 * 101);
        }
        // Brute candidates track the space (monotone, superlinear).
        assert!(rows[2].brute_candidates > rows[0].brute_candidates);
    }

    #[test]
    fn paper_example_magnitude() {
        // §3: d=20, k=4, φ=10 ⇒ ~5·10⁷ combinations.
        let p = SparsityParams::new(10_000, 10, 4).unwrap();
        let space = p.search_space_size(20);
        assert!((4.0e7..8.0e7).contains(&space), "space {space}");
    }
}
