//! §1's critique of the intensional-knowledge technique \[23\]: it "provides
//! excellent interpretability" but "uses a roll-up/drill-down method which
//! tends to be quite expensive for high dimensional data."
//!
//! Both methods produce the same *kind* of answer — a point plus the
//! subspace explaining its abnormality — so the comparison is direct: how
//! does the cost of each grow with dimensionality, and do both find the
//! planted contrarians?

use crate::table;
use hdoutlier_baselines::intensional::{intensional_outliers, lattice_size, IntensionalConfig};
use hdoutlier_core::crossover::CrossoverKind;
use hdoutlier_core::evolutionary::{evolutionary_search, EvolutionaryConfig};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig, PlantedOutliers};
use hdoutlier_index::{BitmapCounter, CachedCounter};
use std::time::Duration;

/// One dimensionality point of the comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset dimensionality.
    pub d: usize,
    /// Lattice subspaces scanned by the intensional method (depth ≤ 2).
    pub lattice_scans: u64,
    /// Wall time of the intensional method.
    pub intensional_time: Duration,
    /// Recall of planted outliers by the intensional method.
    pub intensional_recall: f64,
    /// GA fitness evaluations (fixed budget).
    pub evo_evaluations: u64,
    /// Wall time of the evolutionary search.
    pub evo_time: Duration,
    /// Recall of planted outliers by the evolutionary search.
    pub evo_recall: f64,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Dimensionalities to sweep.
    pub dims: Vec<usize>,
    /// Rows per dataset (kept small: the lattice method is `O(lattice·n²)`).
    pub n_rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            dims: vec![4, 8, 16, 24, 32],
            n_rows: 300,
            seed: 3,
        }
    }
}

fn workload(d: usize, n_rows: usize, seed: u64) -> PlantedOutliers {
    planted_outliers(&PlantedConfig {
        n_rows,
        n_dims: d,
        n_outliers: 4,
        strong_groups: Some((d / 2).clamp(1, 4)),
        seed,
        ..PlantedConfig::default()
    })
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    config
        .dims
        .iter()
        .map(|&d| {
            let planted = workload(d, config.n_rows, config.seed);

            let start = std::time::Instant::now();
            let intensional = intensional_outliers(
                &planted.dataset,
                &IntensionalConfig {
                    k: 2,
                    lambda_quantile: 0.02,
                    max_depth: 2,
                    ..IntensionalConfig::default()
                },
            )
            .expect("complete data");
            let intensional_time = start.elapsed();
            let flagged: Vec<usize> = {
                let set: std::collections::BTreeSet<usize> =
                    intensional.outliers.iter().map(|o| o.row).collect();
                set.into_iter().collect()
            };
            let intensional_recall = planted.recall(&flagged).unwrap_or(0.0);

            let disc = Discretized::new(&planted.dataset, 5, DiscretizeStrategy::EquiDepth)
                .expect("non-empty");
            let counter = CachedCounter::new(BitmapCounter::new(&disc));
            let fitness = SparsityFitness::new(&counter, 2);
            let start = std::time::Instant::now();
            let evo = evolutionary_search(
                &fitness,
                &EvolutionaryConfig {
                    m: 60,
                    population: 100,
                    crossover: CrossoverKind::Optimized,
                    p1: 0.2,
                    p2: 0.2,
                    max_generations: 80,
                    seed: config.seed,
                    ..EvolutionaryConfig::default()
                },
            );
            let evo_time = start.elapsed();
            let covered: Vec<usize> = {
                let set: std::collections::BTreeSet<usize> = evo
                    .best
                    .iter()
                    .flat_map(|s| fitness.rows(&s.projection))
                    .collect();
                set.into_iter().collect()
            };
            let evo_recall = planted.recall(&covered).unwrap_or(0.0);

            Row {
                d,
                lattice_scans: intensional.subspaces_examined,
                intensional_time,
                intensional_recall,
                evo_evaluations: evo.evaluations,
                evo_time,
                evo_recall,
            }
        })
        .collect()
}

/// Renders the sweep plus the analytic lattice sizes at arrhythmia scale.
pub fn render(rows: &[Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.d.to_string(),
                r.lattice_scans.to_string(),
                table::ms(r.intensional_time),
                format!("{:.2}", r.intensional_recall),
                r.evo_evaluations.to_string(),
                table::ms(r.evo_time),
                format!("{:.2}", r.evo_recall),
            ]
        })
        .collect();
    let mut out = table::render(
        &[
            "d",
            "lattice scans",
            "intens.(ms)",
            "intens. recall",
            "GA evals",
            "GA(ms)",
            "GA recall",
        ],
        &table_rows,
    );
    out.push_str(&format!(
        "\n(analytic lattice sizes at depth 2: d=160 musk -> {}, d=279 arrhythmia -> {};\n \
         each scan is an O(n^2) pass — the \"quite expensive\" of the paper's §1)\n",
        lattice_size(160, 2),
        lattice_size(279, 2),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            dims: vec![4, 8, 16],
            n_rows: 200,
            ..Config::default()
        }
    }

    #[test]
    fn lattice_cost_explodes_while_ga_stays_flat() {
        let rows = run(&quick());
        // Lattice scans grow quadratically with d…
        assert!(rows[2].lattice_scans > 3 * rows[0].lattice_scans);
        assert_eq!(rows[2].lattice_scans, lattice_size(16, 2));
        // …while the GA budget is constant.
        let evals: Vec<u64> = rows.iter().map(|r| r.evo_evaluations).collect();
        assert!(evals.iter().all(|&e| e == evals[0]), "{evals:?}");
    }

    #[test]
    fn both_methods_find_planted_outliers_at_low_d() {
        let rows = run(&quick());
        assert!(
            rows[0].intensional_recall >= 0.5,
            "intensional recall {}",
            rows[0].intensional_recall
        );
        assert!(
            rows[0].evo_recall >= 0.5,
            "GA recall {}",
            rows[0].evo_recall
        );
    }
}
