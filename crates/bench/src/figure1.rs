//! Figure 1: some 2-dimensional views expose outliers that other views —
//! and full-dimensional distance measures — hide.
//!
//! The paper's figure is conceptual; this experiment makes it quantitative
//! on a planted workload. For each planted outlier we measure:
//!
//! - the sparsity coefficient of its grid cell in its **signature view**
//!   (the correlated attribute pair it violates) — strongly negative;
//! - the sparsity of its cell in random other views — unremarkable;
//! - its rank under the full-dimensional kNN-distance score — mediocre,
//!   and worsening as noise dimensions are added (the "averaging behavior
//!   of the noisy and irrelevant dimensions").

use crate::table;
use hdoutlier_baselines::nn::kth_nn_distances;
use hdoutlier_baselines::Metric;
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig, PlantedOutliers};
use hdoutlier_index::{BitmapCounter, Cube};

/// Per-outlier measurements.
#[derive(Debug, Clone)]
pub struct OutlierView {
    /// Row index of the planted outlier.
    pub row: usize,
    /// Sparsity of its cell in the signature (violated) view.
    pub signature_sparsity: f64,
    /// Mean sparsity of its cells across all other (off-signature) views.
    pub mean_other_sparsity: f64,
    /// Rank (0 = most outlying) under the full-dimensional 1-NN distance.
    pub knn_rank: usize,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-outlier view measurements.
    pub views: Vec<OutlierView>,
    /// Number of records.
    pub n_rows: usize,
    /// Dimensionality.
    pub n_dims: usize,
}

/// Grid resolution.
pub const PHI: u32 = 5;

/// Runs the Figure-1 experiment.
pub fn run(n_dims: usize, seed: u64) -> Outcome {
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 1000,
        n_dims,
        n_outliers: 8,
        seed,
        ..PlantedConfig::default()
    });
    let PlantedOutliers {
        dataset,
        outlier_rows,
        signatures,
    } = &planted;
    let disc = Discretized::new(dataset, PHI, DiscretizeStrategy::EquiDepth).expect("non-empty");
    let counter = BitmapCounter::new(&disc);
    let fitness = SparsityFitness::new(&counter, 2);

    // Full-dimensional 1-NN distance ranks.
    let scores = kth_nn_distances(dataset, 1, Metric::Euclidean).expect("complete data");
    let order = hdoutlier_stats::rank::argsort(&scores);
    let mut rank_of = vec![0usize; scores.len()];
    // argsort ascends; outlier rank counts from the largest distance.
    for (i, &row) in order.iter().rev().enumerate() {
        rank_of[row] = i;
    }

    let views = outlier_rows
        .iter()
        .zip(signatures)
        .map(|(&row, &(lo, hi))| {
            let cell_of = |dim: usize| disc.cell(row, dim);
            let signature_cube = Cube::new([(lo as u32, cell_of(lo)), (hi as u32, cell_of(hi))])
                .expect("distinct dims");
            let signature_sparsity = fitness.sparsity_of_cube(&signature_cube);
            // All other adjacent-pair views.
            let mut others = Vec::new();
            for g in 0..(n_dims / 2) {
                let (a, b) = (2 * g, 2 * g + 1);
                if (a, b) == (lo.min(hi), lo.max(hi)) {
                    continue;
                }
                let cube = Cube::new([(a as u32, cell_of(a)), (b as u32, cell_of(b))])
                    .expect("distinct dims");
                others.push(fitness.sparsity_of_cube(&cube));
            }
            let mean_other_sparsity = others.iter().sum::<f64>() / others.len().max(1) as f64;
            OutlierView {
                row,
                signature_sparsity,
                mean_other_sparsity,
                knn_rank: rank_of[row],
            }
        })
        .collect();

    Outcome {
        views,
        n_rows: dataset.n_rows(),
        n_dims,
    }
}

/// The §1 companion measurement: Knorr–Ng's λ window collapses with
/// dimensionality. Returns, per dimensionality, the ratio between the 5th
/// and 95th percentile pairwise distances — near 0 when λ is easy to pick,
/// near 1 when "most of the points are likely to lie in a thin shell about
/// any other point" and any λ makes everyone or no one an outlier.
pub fn lambda_window_collapse(dims: &[usize], seed: u64) -> Vec<(usize, f64)> {
    use hdoutlier_baselines::{suggest_lambda, Metric};
    dims.iter()
        .map(|&d| {
            let ds = hdoutlier_data::generators::uniform(500, d, seed);
            let lo = suggest_lambda(&ds, 0.05, Metric::Euclidean).expect("complete data");
            let hi = suggest_lambda(&ds, 0.95, Metric::Euclidean).expect("complete data");
            (d, lo / hi)
        })
        .collect()
}

/// Renders the per-outlier comparison.
pub fn render(o: &Outcome) -> String {
    let rows: Vec<Vec<String>> = o
        .views
        .iter()
        .map(|v| {
            vec![
                v.row.to_string(),
                format!("{:.2}", v.signature_sparsity),
                format!("{:.2}", v.mean_other_sparsity),
                format!("{}/{}", v.knn_rank + 1, o.n_rows),
            ]
        })
        .collect();
    let mut out = format!(
        "Planted outliers in {} dims ({} rows), phi = {PHI}:\n",
        o.n_dims, o.n_rows
    );
    out.push_str(&table::render(
        &[
            "row",
            "S(signature view)",
            "S(other views, mean)",
            "1-NN rank",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_views_expose_what_other_views_hide() {
        let o = run(20, 3);
        for v in &o.views {
            assert!(
                v.signature_sparsity < -3.0,
                "row {}: signature view S = {}",
                v.row,
                v.signature_sparsity
            );
            assert!(
                v.signature_sparsity < v.mean_other_sparsity - 2.0,
                "row {}: signature {} vs others {}",
                v.row,
                v.signature_sparsity,
                v.mean_other_sparsity
            );
        }
    }

    #[test]
    fn full_dimensional_knn_misses_most_planted_outliers() {
        // With 8 planted outliers in 1000 rows, a perfect detector ranks
        // them in the top 8. Full-dimensional 1-NN distance puts most of
        // them far outside the top 8 — the curse Figure 1 illustrates.
        let o = run(40, 3);
        let in_top_8 = o.views.iter().filter(|v| v.knn_rank < 8).count();
        assert!(
            in_top_8 <= 4,
            "{in_top_8}/8 planted outliers in the kNN top-8 at d=40"
        );
    }

    #[test]
    fn lambda_window_collapses_with_dimensionality() {
        let curve = lambda_window_collapse(&[2, 10, 50, 100], 5);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 0.05,
                "ratio should rise with d: {curve:?}"
            );
        }
        assert!(curve[0].1 < 0.5, "low-d window is wide: {curve:?}");
        assert!(curve[3].1 > 0.8, "high-d shell is thin: {curve:?}");
    }

    #[test]
    fn knn_gets_worse_with_more_noise_dimensions() {
        let mean_rank = |d: usize| {
            let o = run(d, 3);
            o.views.iter().map(|v| v.knn_rank as f64).sum::<f64>() / o.views.len() as f64
        };
        let low_d = mean_rank(10);
        let high_d = mean_rank(80);
        assert!(
            high_d > low_d,
            "mean 1-NN rank should worsen: d=10 {low_d}, d=80 {high_d}"
        );
    }
}
