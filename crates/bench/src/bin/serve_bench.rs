//! Serving-path bench: records/second and request latency through the
//! whole `hdoutlier serve` stack — HTTP framing, session registry, NDJSON
//! parse, pooled scoring, NDJSON render — over real loopback TCP.
//!
//! ```text
//! cargo run -p hdoutlier-bench --release --bin serve_bench -- \
//!     [n_records] [records_per_request] [--bench-json <path>] \
//!     [--assert-against <BENCH_serve.json> [--tolerance <frac>]]
//! ```
//!
//! One session is created on an in-process [`ServeHandle`]; the client
//! then POSTs `n_records / records_per_request` scoring requests on a
//! single keep-alive connection and times each round trip. The datapoint
//! (`BENCH_serve.json`, schema `hdoutlier-bench/1`) records the end-to-end
//! throughput and the per-request latency percentiles — the `latency_us`
//! block is request round-trip time here, not per-record time.
//!
//! With `--assert-against <BENCH_serve.json>` the run becomes a regression
//! gate: the `serve.score` us/record is compared to the baseline datapoint
//! and the process exits 1 when it exceeds `baseline * (1 + --tolerance)`
//! (default 0.5 — generous because absolute wall-clock varies across
//! machines; the gate catches order-of-magnitude slips in the serving hot
//! path, e.g. per-request allocation storms or accidental lock convoys in
//! the labeled-metrics layer).

use hdoutlier_bench::bench_json::{BenchReport, Percentiles};
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_json::Json;
use hdoutlier_net::retry::{Backoff, RetryPolicy};
use hdoutlier_net::ServerConfig;
use hdoutlier_serve::{ServeConfig, ServeHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_path = |flag: &str| match args.iter().position(|a| a == flag) {
        Some(i) if i + 1 < args.len() => {
            let path = args.remove(i + 1);
            args.remove(i);
            Some(path)
        }
        Some(_) => {
            eprintln!("{flag} requires a path");
            std::process::exit(2);
        }
        None => None,
    };
    let bench_json = take_path("--bench-json");
    let assert_against = take_path("--assert-against");
    let tolerance: f64 = match take_path("--tolerance") {
        None => 0.5,
        Some(raw) => match raw.parse() {
            Ok(t) if t > 0.0 => t,
            _ => {
                eprintln!("--tolerance must be a positive fraction, got {raw:?}");
                std::process::exit(2);
            }
        },
    };
    let n_records: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let per_request: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let n_requests = n_records / per_request;
    assert!(n_requests >= 1, "need at least one full request");

    // A modest model: the bench measures the serving stack, not the search.
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 2_000,
        n_dims: 8,
        n_outliers: 5,
        strong_groups: Some(2),
        seed: 127,
        ..PlantedConfig::default()
    });
    let model = OutlierDetector::builder()
        .phi(5)
        .k(2)
        .m(8)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(&planted.dataset)
        .unwrap();
    let model_json = hdoutlier_stream::model_io::to_json(&model)
        .unwrap()
        .render();

    // Pre-render every request body so the timed loop measures the server,
    // not the client's formatter. Records cycle through the dataset.
    let bodies: Vec<String> = (0..n_requests)
        .map(|r| {
            let mut body = String::with_capacity(per_request * 16 * 8);
            for i in 0..per_request {
                let row = planted
                    .dataset
                    .row((r * per_request + i) % planted.dataset.n_rows());
                let line = Json::Array(row.iter().map(|&v| Json::from(v)).collect());
                body.push_str(&line.render());
                body.push('\n');
            }
            body
        })
        .collect();

    let handle = ServeHandle::bind(
        "127.0.0.1:0",
        ServeConfig {
            http: ServerConfig {
                // Keep the bench's single connection alive for the whole run.
                max_requests_per_connection: n_requests + 8,
                ..ServerConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).expect("nodelay");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let create = format!("{{\"id\": \"bench\", \"batch\": 64, \"model\": {model_json}}}");
    let (status, _, _) = request(&mut conn, "POST", "/sessions", &create, None);
    assert_eq!(status, 201, "session create failed");

    // Warm-up request (connection, page faults, lazy init), untimed.
    let (status, _) = score(&mut conn, &bodies[0], "bench-warmup");
    assert_eq!(status, 200);

    let mut latencies_us: Vec<f64> = Vec::with_capacity(n_requests);
    let started = Instant::now();
    for (r, body) in bodies.iter().enumerate() {
        let t0 = Instant::now();
        // A fresh X-Request-Id per logical request; shed 503s are retried
        // under the same id, so the time a shedding server costs the
        // client (backoff included) lands in this request's latency.
        let (status, _) = score(&mut conn, body, &format!("bench-{r}"));
        assert_eq!(status, 200, "scoring request failed");
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let scored = (n_requests * per_request) as u64;

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| latencies_us[((latencies_us.len() - 1) as f64 * q) as usize];
    let percentiles = Percentiles {
        count: latencies_us.len() as u64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        max: *latencies_us.last().unwrap(),
    };

    println!(
        "serve_bench: {scored} records in {elapsed:.3}s over {n_requests} requests \
         ({:.0} records/s; request p50 {:.0}us p99 {:.0}us)",
        scored as f64 / elapsed,
        percentiles.p50,
        percentiles.p99
    );

    let report = handle.drain();
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    if let Some(path) = bench_json {
        let mut bench = BenchReport::new("serve");
        bench
            .config("n_records", scored as f64)
            .config("records_per_request", per_request as f64)
            .config("n_requests", n_requests as f64)
            .config("batch", 64.0)
            .stage("serve.score", scored, elapsed)
            .latency_us(percentiles);
        std::fs::write(&path, bench.to_json()).expect("write bench json");
        eprintln!("bench datapoint written to {path}");
    }

    if let Some(path) = assert_against {
        let us_per_record = elapsed * 1e6 / scored as f64;
        let baseline = baseline_score_us(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let limit = baseline * (1.0 + tolerance);
        println!(
            "regression gate: serve.score {us_per_record:.3} us/record vs baseline \
             {baseline:.3} (limit {limit:.3}, tolerance {tolerance})"
        );
        if us_per_record > limit {
            eprintln!(
                "REGRESSION: serve.score {us_per_record:.3} us/record exceeds \
                 {limit:.3} ({baseline:.3} from {path} + {:.0}%)",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}

/// Reads the `serve.score` stage's us/record from a BENCH_serve.json
/// baseline datapoint.
fn baseline_score_us(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let json = Json::parse(&text).map_err(|e| e.to_string())?;
    json.get("stages")
        .and_then(Json::as_array)
        .and_then(|stages| {
            stages
                .iter()
                .find(|s| s.get("name").and_then(Json::as_str) == Some("serve.score"))
        })
        .and_then(|s| s.get("us_per_record"))
        .and_then(Json::as_number)
        .ok_or_else(|| "no serve.score stage with us_per_record".to_string())
}

/// One score POST with the idempotent-retry discipline: the request id is
/// reused verbatim across retries, and each `503`'s `Retry-After` floors a
/// decorrelated backoff delay. On a healthy server this is one request.
fn score(conn: &mut TcpStream, body: &str, request_id: &str) -> (u16, String) {
    let seed = request_id.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut backoff = Backoff::new(RetryPolicy::default(), seed);
    loop {
        let (status, retry_after, payload) = request(
            conn,
            "POST",
            "/sessions/bench/score",
            body,
            Some(request_id),
        );
        if status != 503 {
            return (status, payload);
        }
        match backoff.next_delay(retry_after) {
            Some(delay) => std::thread::sleep(delay),
            None => return (status, payload),
        }
    }
}

/// One keep-alive HTTP request; returns `(status, retry_after, body)`.
fn request(
    conn: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
    request_id: Option<&str>,
) -> (u16, Option<Duration>, String) {
    let id_header = request_id
        .map(|id| format!("X-Request-Id: {id}\r\n"))
        .unwrap_or_default();
    conn.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\n{id_header}Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("request write");
    // Head, byte-wise to the blank line; then exactly Content-Length bytes.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        assert_eq!(conn.read(&mut byte).expect("head read"), 1, "early EOF");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("utf8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric length"))
        })
        .expect("content-length header");
    let retry_after = head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| hdoutlier_net::retry::parse_retry_after(value))
            .flatten()
    });
    let mut payload = vec![0u8; length];
    conn.read_exact(&mut payload).expect("body read");
    (
        status,
        retry_after,
        String::from_utf8(payload).expect("utf8 body"),
    )
}
