//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p hdoutlier-bench --release --bin repro -- all
//! cargo run -p hdoutlier-bench --release --bin repro -- table1 [seed]
//! cargo run -p hdoutlier-bench --release --bin repro -- table1 --bench-json BENCH_detect.json
//! ```
//!
//! With `--bench-json` the run also writes a schema-stable perf-trajectory
//! datapoint: the command's wall time plus the detector's per-phase
//! duration histograms (`hdoutlier.core.{discretize,index,search,
//! postprocess}_us`) accumulated across every fit the command performed.

use hdoutlier_bench::bench_json::{BenchReport, Percentiles};
use hdoutlier_bench::{
    ablation, arrhythmia, figure1, housing, intensional_exp, params_exp, prescreen, scaling,
    table1, table2, threads_exp,
};
use hdoutlier_obs as obs;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_json = match args.iter().position(|a| a == "--bench-json") {
        Some(i) if i + 1 < args.len() => {
            let path = args.remove(i + 1);
            args.remove(i);
            Some(path)
        }
        Some(_) => {
            eprintln!("--bench-json requires a path");
            std::process::exit(2);
        }
        None => None,
    };
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    // Optional seed override; each experiment otherwise uses its own tuned
    // default (they differ: e.g. the arrhythmia experiment defaults to 7).
    let seed: Option<u64> = args.get(1).and_then(|s| s.parse().ok());
    obs::set_timing(bench_json.is_some());
    let start = std::time::Instant::now();
    // Per-thread-count wall times from the `threads` experiment, recorded
    // as extra stages in the bench datapoint.
    let mut extra_stages: Vec<(String, u64, f64)> = Vec::new();

    match cmd {
        "table1" => run_table1(seed),
        "table2" => run_table2(),
        "arrhythmia" => run_arrhythmia(seed),
        "housing" => run_housing(seed),
        "figure1" => run_figure1(seed),
        "params" => run_params(),
        "scaling" => run_scaling(seed),
        "ablation" => run_ablation(seed),
        "prescreen" => run_prescreen(seed),
        "intensional" => run_intensional(seed),
        "threads" => extra_stages = run_threads(seed),
        "all" => {
            run_table1(seed);
            run_table2();
            run_arrhythmia(seed);
            run_housing(seed);
            run_figure1(seed);
            run_params();
            run_scaling(seed);
            run_ablation(seed);
            run_prescreen(seed);
            run_intensional(seed);
            extra_stages = run_threads(seed);
        }
        _ => {
            eprintln!(
                "usage: repro <table1|table2|arrhythmia|housing|figure1|params|scaling|ablation|prescreen|intensional|threads|all> [seed] [--bench-json <path>]"
            );
            std::process::exit(2);
        }
    }

    if let Some(path) = bench_json {
        write_datapoint(&path, cmd, seed, start.elapsed(), &extra_stages);
    }
}

/// One `BENCH_detect.json` trajectory datapoint: the command's wall time,
/// with per-phase duration percentiles pulled from the detector's own
/// histograms (populated by every `fit` the command ran).
fn write_datapoint(
    path: &str,
    cmd: &str,
    seed: Option<u64>,
    elapsed: std::time::Duration,
    extra_stages: &[(String, u64, f64)],
) {
    let mut report = BenchReport::new("detect");
    report.config("timing", 1.0);
    if let Some(seed) = seed {
        report.config("seed", seed as f64);
    }
    for (name, records, elapsed_s) in extra_stages {
        report.stage(name, *records, *elapsed_s);
    }
    let mut fits = 0u64;
    for name in ["discretize", "index", "search", "postprocess"] {
        let s = obs::registry()
            .histogram(&format!("hdoutlier.core.{name}_us"))
            .snapshot();
        if s.count > 0 {
            fits = fits.max(s.count);
            report.phase_us(
                name,
                Percentiles {
                    count: s.count,
                    p50: s.p50,
                    p90: s.p90,
                    p99: s.p99,
                    max: s.max,
                },
            );
        }
    }
    report.stage(cmd, fits, elapsed.as_secs_f64());
    if let Err(e) = report.write(path) {
        eprintln!("failed to write bench datapoint {path}: {e}");
        std::process::exit(1);
    }
    println!("bench datapoint written to {path}");
}

fn heading(title: &str) {
    println!("\n=== {title} ===\n");
}

fn run_table1(seed: Option<u64>) {
    let seed = seed.unwrap_or(2001);
    heading("Table 1: brute force vs evolutionary search (time and quality)");
    let rows = table1::run(seed);
    println!("{}", table1::render(&rows));
    println!("(*) = Gen° quality matches brute force, as in the paper.");
    println!("'-' = candidate budget exhausted, reproducing the paper's non-termination on musk.");
}

fn run_table2() {
    heading("Table 2: arrhythmia class distribution");
    let t = table2::run(&Default::default());
    println!("{}", table2::render(&t));
}

fn run_arrhythmia(seed: Option<u64>) {
    heading("§3.1: arrhythmia — rare-class hit rate, subspace vs kNN-distance baseline");
    let mut config = arrhythmia::Config::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let outcome = arrhythmia::run(&config);
    println!("{}", arrhythmia::render(&outcome));
    println!(
        "Paper shape: 43/85 rare for subspace vs 28/85 for the baseline; k>1 NN does not help."
    );
}

fn run_housing(seed: Option<u64>) {
    let seed = seed.unwrap_or(2001);
    heading("§3.1: Boston housing case study — interpretable projections");
    let outcome = housing::run(seed);
    println!("{}", housing::render(&outcome));
}

fn run_figure1(seed: Option<u64>) {
    let seed = seed.unwrap_or(2001);
    heading("Figure 1: subspace views expose outliers that full-dimensional distance hides");
    for d in [10usize, 40] {
        let outcome = figure1::run(d, seed);
        println!("{}", figure1::render(&outcome));
    }
    println!("Knorr-Ng lambda window (5th/95th percentile distance ratio; -> 1 = unusable):");
    for (d, ratio) in figure1::lambda_window_collapse(&[2, 10, 50, 100, 200], seed) {
        println!("  d = {d:>3}: {ratio:.3}");
    }
    println!();
}

fn run_params() {
    heading("§2.4: projection-parameter selection");
    println!("{}", params_exp::render());
}

fn run_scaling(seed: Option<u64>) {
    heading("§3: search-space explosion with dimensionality");
    let mut config = scaling::Config::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let rows = scaling::run(&config);
    println!("{}", scaling::render(&rows));
}

fn run_ablation(seed: Option<u64>) {
    let seed = seed.unwrap_or(2001);
    heading("Ablations: grid strategy, selection scheme, fitness cache");
    println!("{}", ablation::render(seed));
}

fn run_prescreen(seed: Option<u64>) {
    heading("§3.1: pre-screening contrarian points before classifier training");
    let mut config = prescreen::Config::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let outcome = prescreen::run(&config);
    println!("{}", prescreen::render(&outcome));
}

fn run_threads(seed: Option<u64>) -> Vec<(String, u64, f64)> {
    heading("Pooled brute force: wall time and speedup per worker count");
    let mut config = threads_exp::Config::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let rows = threads_exp::run(&config);
    println!("{}", threads_exp::render(&rows));
    println!(
        "Best-m sets verified identical at every worker count. Speedup is \
         bounded by the hardware threads actually available."
    );
    rows.iter()
        .map(|r| (format!("threads-{}", r.threads), r.scored, r.elapsed_s))
        .collect()
}

fn run_intensional(seed: Option<u64>) {
    heading("§1: roll-up/drill-down intensional knowledge [23] vs evolutionary search");
    let mut config = intensional_exp::Config::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let rows = intensional_exp::run(&config);
    println!("{}", intensional_exp::render(&rows));
}
