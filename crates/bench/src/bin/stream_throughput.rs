//! Streaming-throughput bench: records/second through each stage of the
//! streaming layer, std-only (no criterion needed).
//!
//! ```text
//! cargo run -p hdoutlier-bench --release --bin stream_throughput -- \
//!     [n_rows] [n_dims] [--metrics-out <path>] [--bench-json <path>]
//! ```
//!
//! Stages measured independently, then end-to-end:
//! - sketch: `StreamingDiscretizer::observe` (per-dimension GK inserts)
//! - window: `WindowCounter::push` (insert + evict postings maintenance)
//! - score:  `OnlineScorer::score_record` (grid assign + projection match
//!   + drift accounting)
//!
//! With `--metrics-out` the scorer's per-record latency histogram
//! (`hdoutlier.stream.record_latency_us`) is enabled for the scoring
//! stages, its percentiles are printed, and the full registry snapshot is
//! written as NDJSON. Without the flag the timing gate stays off, so the
//! wall-clock numbers measure the same code the `stream` subcommand runs
//! by default.
//!
//! With `--bench-json` a schema-stable `BENCH_stream.json` datapoint is
//! written (stage throughputs, latency percentiles, git metadata) for the
//! repo's perf trajectory; the timing gate is enabled so the percentiles
//! are populated, which the datapoint records in its `config.timing` knob.
//!
//! With `--assert-against <BENCH_stream.json>` the run becomes a regression
//! gate: the end-to-end us/record is compared to the baseline datapoint and
//! the process exits 1 when it exceeds `baseline * (1 + --tolerance)`
//! (tolerance defaults to 0.5 — generous because absolute wall-clock varies
//! across machines; the gate exists to catch order-of-magnitude slips in the
//! default hot path, e.g. accidental per-record I/O or timing syscalls).

use hdoutlier_bench::bench_json::{BenchReport, Percentiles};
use hdoutlier_core::{OutlierDetector, SearchMethod};
use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
use hdoutlier_json::Json;
use hdoutlier_obs as obs;
use hdoutlier_stream::{OnlineScorer, StreamingDiscretizer, WindowCounter};
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_path = |flag: &str| match args.iter().position(|a| a == flag) {
        Some(i) if i + 1 < args.len() => {
            let path = args.remove(i + 1);
            args.remove(i);
            Some(path)
        }
        Some(_) => {
            eprintln!("{flag} requires a path");
            std::process::exit(2);
        }
        None => None,
    };
    let metrics_out = take_path("--metrics-out");
    let bench_json = take_path("--bench-json");
    let assert_against = take_path("--assert-against");
    let tolerance: f64 = match take_path("--tolerance") {
        None => 0.5,
        Some(raw) => match raw.parse() {
            Ok(t) if t > 0.0 => t,
            _ => {
                eprintln!("--tolerance must be a positive fraction, got {raw:?}");
                std::process::exit(2);
            }
        },
    };
    obs::set_timing(metrics_out.is_some() || bench_json.is_some());
    let mut bench = bench_json.as_ref().map(|_| BenchReport::new("stream"));
    let n_rows: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let n_dims: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let phi = 5u32;
    let window = 10_000usize;
    if let Some(b) = bench.as_mut() {
        b.config("n_rows", n_rows as f64)
            .config("n_dims", n_dims as f64)
            .config("phi", phi as f64)
            .config("window", window as f64)
            .config("timing", 1.0);
    }

    println!("streaming throughput: {n_rows} rows x {n_dims} dims, phi={phi}, window={window}");

    // Train a model on a planted batch, then replay the batch as a stream
    // (cycling so n_rows is independent of the training size).
    let planted = planted_outliers(&PlantedConfig {
        n_rows: 20_000,
        n_dims,
        n_outliers: 20,
        strong_groups: Some(3),
        seed: 2001,
        ..PlantedConfig::default()
    });
    let ds = &planted.dataset;
    let model = OutlierDetector::builder()
        .phi(phi)
        .k(2)
        .m(10)
        .search(SearchMethod::BruteForce)
        .build()
        .fit(ds)
        .expect("fit");

    let row = |i: usize| ds.row(i % ds.n_rows());

    // Stage 1: quantile sketches.
    let mut disc = StreamingDiscretizer::new(n_dims, phi, 0.01).expect("discretizer");
    let t = Instant::now();
    for i in 0..n_rows {
        disc.observe(row(i)).expect("observe");
    }
    report("sketch.observe", n_rows, t.elapsed(), &mut bench);
    let spec = disc.grid_spec().expect("grid");

    // Stage 2: sliding-window counting (push only; queries are the batch
    // engines' job and already benched).
    let mut counter = WindowCounter::new(window, n_dims, phi).expect("window");
    let cells: Vec<Vec<u16>> = (0..ds.n_rows())
        .map(|i| spec.assign_row(ds.row(i)).expect("assign"))
        .collect();
    let t = Instant::now();
    for i in 0..n_rows {
        counter.push(&cells[i % cells.len()]).expect("push");
    }
    report("window.push", n_rows, t.elapsed(), &mut bench);

    // Stage 3: online scoring.
    let mut scorer = OnlineScorer::new(model).expect("scorer");
    let t = Instant::now();
    let mut outliers = 0usize;
    for i in 0..n_rows {
        if scorer.score_record(row(i)).expect("score").outlier {
            outliers += 1;
        }
    }
    report("scorer.score_record", n_rows, t.elapsed(), &mut bench);
    println!("  ({outliers} outliers flagged)");

    // End-to-end: what the `hdoutlier stream` hot loop does per record,
    // plus keeping the sketches warm for an eventual re-fit.
    let mut disc = StreamingDiscretizer::new(n_dims, phi, 0.01).expect("discretizer");
    let mut counter = WindowCounter::new(window, n_dims, phi).expect("window");
    let t = Instant::now();
    for i in 0..n_rows {
        let r = row(i);
        disc.observe(r).expect("observe");
        let v = scorer.score_record(r).expect("score");
        counter.push(&v.cells).expect("push");
    }
    let end_to_end = t.elapsed();
    report("end-to-end", n_rows, end_to_end, &mut bench);
    let end_to_end_us = end_to_end.as_secs_f64() * 1e6 / n_rows as f64;
    println!(
        "  (sketch summary sizes: {:?})",
        (0..n_dims.min(4))
            .map(|d| disc.sketch(d).summary_size())
            .collect::<Vec<_>>()
    );

    if let Some(path) = metrics_out {
        let latency = obs::registry()
            .histogram("hdoutlier.stream.record_latency_us")
            .snapshot();
        println!(
            "record latency (us): n={} p50={:.1} p90={:.1} p99={:.1} max={:.1}",
            latency.count, latency.p50, latency.p90, latency.p99, latency.max
        );
        if let Err(e) = std::fs::write(&path, obs::registry().snapshot_ndjson()) {
            eprintln!("failed to write metrics {path}: {e}");
            std::process::exit(1);
        }
        println!("metrics snapshot written to {path}");
    }

    if let (Some(path), Some(mut report)) = (bench_json, bench) {
        let lat = obs::registry()
            .histogram("hdoutlier.stream.record_latency_us")
            .snapshot();
        report.latency_us(Percentiles {
            count: lat.count,
            p50: lat.p50,
            p90: lat.p90,
            p99: lat.p99,
            max: lat.max,
        });
        if let Err(e) = report.write(&path) {
            eprintln!("failed to write bench datapoint {path}: {e}");
            std::process::exit(1);
        }
        println!("bench datapoint written to {path}");
    }

    if let Some(path) = assert_against {
        let baseline = baseline_end_to_end_us(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let limit = baseline * (1.0 + tolerance);
        println!(
            "regression gate: end-to-end {end_to_end_us:.3} us/record vs baseline \
             {baseline:.3} (limit {limit:.3}, tolerance {tolerance})"
        );
        if end_to_end_us > limit {
            eprintln!(
                "REGRESSION: end-to-end {end_to_end_us:.3} us/record exceeds \
                 {limit:.3} ({baseline:.3} from {path} + {:.0}%)",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}

/// Reads the `end-to-end` stage's us/record from a BENCH_stream.json
/// baseline datapoint.
fn baseline_end_to_end_us(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let json = Json::parse(&text).map_err(|e| e.to_string())?;
    json.get("stages")
        .and_then(Json::as_array)
        .and_then(|stages| {
            stages
                .iter()
                .find(|s| s.get("name").and_then(Json::as_str) == Some("end-to-end"))
        })
        .and_then(|s| s.get("us_per_record"))
        .and_then(Json::as_number)
        .ok_or_else(|| "no end-to-end stage with us_per_record".to_string())
}

fn report(stage: &str, n: usize, elapsed: std::time::Duration, bench: &mut Option<BenchReport>) {
    let secs = elapsed.as_secs_f64();
    println!(
        "{stage:>20}: {:>8.0} records/s ({:.2} s total, {:.2} us/record)",
        n as f64 / secs,
        secs,
        secs * 1e6 / n as f64
    );
    if let Some(b) = bench.as_mut() {
        b.stage(stage, n as u64, secs);
    }
}
