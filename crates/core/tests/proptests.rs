//! Property-based tests for the detector's operators and invariants.

use hdoutlier_core::crossover::{optimized, two_point, two_point_at};
use hdoutlier_core::fitness::SparsityFitness;
use hdoutlier_core::mutation::{mutate, MutationConfig};
use hdoutlier_core::projection::{Projection, STAR};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uniform;
use hdoutlier_index::BitmapCounter;
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::SeedableRng;
use proptest::prelude::*;

const D: usize = 8;
const PHI: u32 = 4;

fn projection_strategy(k: usize) -> impl Strategy<Value = Projection> {
    any::<u64>().prop_map(move |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        Projection::random(D, k, PHI, &mut rng)
    })
}

fn fixture() -> (Discretized, BitmapCounter) {
    let ds = uniform(400, D, 1234);
    let disc = Discretized::new(&ds, PHI, DiscretizeStrategy::EquiDepth).unwrap();
    let counter = BitmapCounter::new(&disc);
    (disc, counter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_projection_is_feasible(k in 0usize..=D, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Projection::random(D, k, PHI, &mut rng);
        prop_assert_eq!(p.k(), k);
        prop_assert_eq!(p.d(), D);
        for pos in p.constrained_positions() {
            prop_assert!(p.gene(pos).unwrap() < PHI as u16);
        }
    }

    #[test]
    fn mutation_preserves_k(p in projection_strategy(3), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = MutationConfig::symmetric(1.0, PHI);
        let mut q = p.clone();
        for _ in 0..5 {
            mutate(&mut q, &config, &mut rng);
            prop_assert_eq!(q.k(), 3);
        }
    }

    #[test]
    fn two_point_children_partition_parent_genes(
        a in projection_strategy(3),
        b in projection_strategy(3),
        cut_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let (c, d) = two_point(&a, &b, &mut rng);
        for pos in 0..D {
            // At each position, {c, d} carry exactly {a, b}'s genes.
            let mut got = [c.gene(pos), d.gene(pos)];
            let mut want = [a.gene(pos), b.gene(pos)];
            got.sort();
            want.sort();
            prop_assert_eq!(got, want, "position {}", pos);
        }
    }

    #[test]
    fn two_point_at_is_an_involution(
        a in projection_strategy(2),
        b in projection_strategy(2),
        lo in 0usize..D - 1,
        len in 1usize..4,
    ) {
        let hi = (lo + len).min(D);
        let (c, d) = two_point_at(&a, &b, lo, hi);
        let (a2, b2) = two_point_at(&c, &d, lo, hi);
        prop_assert_eq!(a2, a);
        prop_assert_eq!(b2, b);
    }

    #[test]
    fn optimized_crossover_feasible_and_parent_material(
        a in projection_strategy(3),
        b in projection_strategy(3),
        seed in any::<u64>(),
    ) {
        let (_, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let (c, d) = optimized(&a, &b, &fitness, &mut rng);
        prop_assert!(c.is_feasible(3), "child {} infeasible", c);
        prop_assert!(d.is_feasible(3), "complement {} infeasible", d);
        for child in [&c, &d] {
            for pos in 0..D {
                let g = child.gene(pos);
                prop_assert!(g == a.gene(pos) || g == b.gene(pos) || g.is_none());
            }
        }
    }

    #[test]
    fn fitness_matches_direct_eq1(p in projection_strategy(2)) {
        let (_, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let got = fitness.evaluate(&p);
        let count = fitness.count(&p).unwrap() as u64;
        let want = hdoutlier_stats::sparsity_coefficient(count, 400, PHI, 2);
        prop_assert!((got - want).abs() < 1e-12);
        // Covered rows really do cover the projection's cells.
        let disc = fixture().0;
        for row in fitness.rows(&p) {
            prop_assert!(p.covers(disc.row(row)));
        }
    }

    #[test]
    fn infeasible_strings_score_infinity(k in 0usize..=D, p_seed in any::<u64>()) {
        let (_, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 3);
        let mut rng = StdRng::seed_from_u64(p_seed);
        let p = Projection::random(D, k, PHI, &mut rng);
        if k == 3 {
            prop_assert!(fitness.evaluate(&p).is_finite());
        } else {
            prop_assert_eq!(fitness.evaluate(&p), f64::INFINITY);
        }
    }

    #[test]
    fn projection_string_parse_display_round_trip(p in projection_strategy(3)) {
        // Display for phi <= 9 is one char per position; rebuild from it.
        let s = p.to_string();
        let genes: Vec<u16> = s
            .chars()
            .map(|c| {
                if c == '*' {
                    STAR
                } else {
                    c.to_digit(10).unwrap() as u16 - 1
                }
            })
            .collect();
        prop_assert_eq!(Projection::from_genes(genes), p);
    }

    #[test]
    fn cube_round_trip_via_projection(p in projection_strategy(3)) {
        let cube = p.to_cube().unwrap();
        prop_assert_eq!(Projection::from_cube(&cube, D), p);
        prop_assert_eq!(cube.k(), 3);
    }
}
