//! Oracle tests for [`hdoutlier_core::SparsityFitness`]: the sparsity
//! coefficient the fitness reports is checked against a **naive recount**
//! (a row scan of the discretized matrix, no index) fed through Eq. 1
//! recomputed from first principles. The index, the projection→cube
//! mapping, and the statistics all have to agree for these to pass.
//!
//! Also pins the two starvation edge cases: `n(D) = 0` (the empty-cube
//! coefficient of §2.4) and `f^k` underflow (where Eq. 1 degenerates to
//! `0/0` — the fitness must answer `+∞`, never `NaN`).

use hdoutlier_core::projection::STAR;
use hdoutlier_core::{Projection, SparsityFitness};
use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
use hdoutlier_data::generators::uniform;
use hdoutlier_index::{BitmapCounter, Cube, CubeCounter};
use hdoutlier_stats::SparsityParams;

/// Deterministic xorshift64* so every run sees the same random grids.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The oracle count: scan every discretized row and check the fixed genes
/// by hand. No bitmaps, no cubes.
fn naive_recount(disc: &Discretized, genes: &[u16]) -> usize {
    (0..disc.n_rows())
        .filter(|&r| {
            disc.row(r)
                .iter()
                .zip(genes)
                .all(|(&cell, &g)| g == STAR || cell == g)
        })
        .count()
}

/// Eq. 1 recomputed directly: `S = (n(D) − N·f^k) / sqrt(N·f^k·(1 − f^k))`.
fn oracle_sparsity(count: usize, n: usize, phi: u32, k: usize) -> f64 {
    let fk = (1.0 / phi as f64).powi(k as i32);
    let expected = n as f64 * fk;
    (count as f64 - expected) / (expected * (1.0 - fk)).sqrt()
}

fn assert_close(got: f64, want: f64, context: &str) {
    let tol = 1e-12 * want.abs().max(1.0);
    assert!(
        (got - want).abs() <= tol,
        "{context}: got {got}, oracle says {want}"
    );
}

/// A random feasible projection: `k` distinct dimensions, random cells.
fn random_projection(rng: &mut XorShift, d: usize, phi: u32, k: usize) -> Projection {
    let mut genes = vec![STAR; d];
    let mut fixed = 0;
    while fixed < k {
        let dim = rng.below(d as u64) as usize;
        if genes[dim] == STAR {
            genes[dim] = rng.below(phi as u64) as u16;
            fixed += 1;
        }
    }
    Projection::from_genes(genes)
}

#[test]
fn fitness_matches_the_naive_recount_oracle_on_random_grids() {
    // (rows, dims, phi, k, seed) — small enough to recount by scan, varied
    // enough to hit count 0, count 1, and well-populated cubes.
    let configs = [
        (400usize, 5usize, 4u32, 2usize, 1u64),
        (251, 6, 3, 3, 2),
        (800, 4, 8, 1, 3),
        (120, 7, 5, 4, 4),
    ];
    for (n, d, phi, k, seed) in configs {
        let ds = uniform(n, d, seed);
        let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = BitmapCounter::new(&disc);
        let fitness = SparsityFitness::new(&counter, k);
        let mut rng = XorShift(0xDEADBEEF ^ seed);
        for trial in 0..40 {
            let p = random_projection(&mut rng, d, phi, k);
            let recount = naive_recount(&disc, p.genes());
            let context = format!("n={n} d={d} phi={phi} k={k} trial={trial} {p}");
            assert_eq!(
                fitness.count(&p).unwrap(),
                recount,
                "{context}: index disagrees with row scan"
            );
            assert_close(
                fitness.evaluate(&p),
                oracle_sparsity(recount, n, phi, k),
                &context,
            );
        }
    }
}

#[test]
fn empty_cubes_score_the_papers_empty_cube_coefficient() {
    // 60 rows spread over 6^3 = 216 cube cells: most cubes are empty.
    let (n, d, phi, k) = (60usize, 4usize, 6u32, 3usize);
    let ds = uniform(n, d, 9);
    let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiDepth).unwrap();
    let counter = BitmapCounter::new(&disc);
    let fitness = SparsityFitness::new(&counter, k);
    let params = SparsityParams::new(n as u64, phi, k as u32).unwrap();

    let mut rng = XorShift(0xFEED);
    let mut empties = 0;
    let mut occupied_min = f64::INFINITY;
    for _ in 0..200 {
        let p = random_projection(&mut rng, d, phi, k);
        let recount = naive_recount(&disc, p.genes());
        let s = fitness.evaluate(&p);
        if recount == 0 {
            empties += 1;
            // n(D) = 0 collapses Eq. 1 to −sqrt(N / (φ^k − 1)) (§2.4).
            assert_close(s, params.empty_cube_sparsity(), &format!("{p}"));
            assert_close(s, oracle_sparsity(0, n, phi, k), &format!("{p}"));
            assert!(s < 0.0, "{p}: empty cube must score negative, got {s}");
        } else {
            occupied_min = occupied_min.min(s);
        }
    }
    assert!(empties > 0, "no empty cube sampled in 200 trials");
    // The empty-cube coefficient is the floor of the score scale.
    assert!(
        params.empty_cube_sparsity() < occupied_min,
        "an occupied cube scored below the empty-cube floor"
    );
}

/// A counter for a grid so fine that `f^k = φ^{−k}` underflows `f64`:
/// `64 · ln(65534) ≈ 709.8 > 700`, past the validation cutoff in
/// [`SparsityParams::new`]. No real index is needed — every cube is empty.
struct StarvedCounter;

impl CubeCounter for StarvedCounter {
    fn count(&self, _cube: &Cube) -> usize {
        0
    }
    fn rows(&self, _cube: &Cube) -> Vec<usize> {
        Vec::new()
    }
    fn n_rows(&self) -> usize {
        70
    }
    fn n_dims(&self) -> usize {
        64
    }
    fn phi(&self) -> u32 {
        65534
    }
}

#[test]
fn fk_underflow_scores_infinite_not_nan() {
    // The params layer refuses the degenerate regime outright…
    assert!(SparsityParams::new(70, 65534, 64).is_none());
    assert!(SparsityParams::new(70, 65534, 63).is_some());

    // …and the fitness layer answers +∞ for it: Eq. 1 would be 0/0 = NaN,
    // which would silently poison every heap and sort downstream.
    let counter = StarvedCounter;
    let fitness = SparsityFitness::new(&counter, 64);
    let genes: Vec<u16> = (0..64).map(|_| 0).collect();
    let s = fitness.evaluate(&Projection::from_genes(genes));
    assert!(s.is_infinite() && s > 0.0, "underflow regime scored {s}");

    // One dimension shallower is still representable: a tiny but finite,
    // strictly negative coefficient.
    let fitness = SparsityFitness::new(&counter, 63);
    let mut genes: Vec<u16> = (0..63).map(|_| 0).collect();
    genes.push(STAR);
    let s = fitness.evaluate(&Projection::from_genes(genes));
    assert!(s.is_finite() && s < 0.0, "k = 63 should be finite, got {s}");
}
