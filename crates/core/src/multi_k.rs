//! Detection across several projection dimensionalities at once.
//!
//! §1.1 of the paper lists as a desideratum that "a distance based threshold
//! for an outlier in k-dimensional subspace is not directly comparable to
//! one in (k+1)-dimensional subspace" — and the same holds for the sparsity
//! coefficient itself: `S = −3` at `k = 2` and at `k = 4` correspond to very
//! different tail probabilities because the occupancy laws differ. The
//! housing case study (§3.1) nevertheless mines "3- and 4-dimensional
//! projections" together.
//!
//! This module runs the detector at each `k` in a range and merges the
//! reports on the one scale that *is* comparable across dimensionalities:
//! the **exact significance** `P[Binomial(N, φ^{-k}) ≤ count]` of each
//! projection under the independence null.

use crate::detector::{DetectError, OutlierDetector};
use crate::report::ScoredProjection;
use hdoutlier_data::{Dataset, Discretized};
use hdoutlier_stats::SparsityParams;
use std::collections::BTreeSet;

/// A projection annotated with its dimensionality and exact significance.
#[derive(Debug, Clone)]
pub struct RankedProjection {
    /// The projection with its Eq. 1 score (comparable only within one `k`).
    pub scored: ScoredProjection,
    /// The projection's dimensionality.
    pub k: usize,
    /// Exact significance under the independence null — the cross-`k`
    /// comparable ranking key (smaller = more abnormal).
    pub exact_significance: f64,
}

/// Merged result of a multi-`k` run.
#[derive(Debug, Clone)]
pub struct MultiKReport {
    /// All projections found, ascending by exact significance.
    pub projections: Vec<RankedProjection>,
    /// Union of covered rows, ascending.
    pub outlier_rows: Vec<usize>,
}

impl MultiKReport {
    /// The `m` most significant projections (already sorted).
    pub fn top(&self, m: usize) -> &[RankedProjection] {
        &self.projections[..self.projections.len().min(m)]
    }
}

impl OutlierDetector {
    /// Runs the configured search once per `k` in `ks` and merges the
    /// reports, ranked by exact significance. The detector's own `k`
    /// setting is overridden per run; all other settings (φ, m, search,
    /// seed…) apply to each run unchanged.
    ///
    /// # Errors
    /// Propagates the first per-`k` failure (e.g. a `k` exceeding the
    /// dataset's dimensionality).
    pub fn detect_across_k(
        &self,
        dataset: &Dataset,
        ks: impl IntoIterator<Item = usize>,
    ) -> Result<MultiKReport, DetectError> {
        let phi = self.config().phi.unwrap_or_else(|| {
            crate::params::advise(dataset.n_rows() as u64, self.config().target_sparsity).phi
        });
        let disc = Discretized::new(dataset, phi, self.config().strategy)?;
        let n = dataset.n_rows() as u64;

        let mut projections: Vec<RankedProjection> = Vec::new();
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        for k in ks {
            let mut config = self.config().clone();
            config.k = Some(k);
            let detector = OutlierDetector::with_config(config);
            let report = detector.detect_discretized(&disc)?;
            let params = SparsityParams::new(n, phi, k as u32);
            covered.extend(report.outlier_rows.iter().copied());
            for scored in report.projections {
                let exact_significance = params
                    .map(|p| p.exact_significance(scored.count as u64))
                    .unwrap_or(f64::NAN);
                projections.push(RankedProjection {
                    scored,
                    k,
                    exact_significance,
                });
            }
        }
        projections.sort_by(|a, b| {
            a.exact_significance
                .partial_cmp(&b.exact_significance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.scored.projection.genes().cmp(b.scored.projection.genes()))
        });
        Ok(MultiKReport {
            projections,
            outlier_rows: covered.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::SearchMethod;
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

    fn detector() -> OutlierDetector {
        OutlierDetector::builder()
            .phi(4)
            .m(8)
            .search(SearchMethod::BruteForce)
            .build()
    }

    fn data() -> hdoutlier_data::generators::PlantedOutliers {
        planted_outliers(&PlantedConfig {
            n_rows: 1500,
            n_dims: 8,
            n_outliers: 4,
            strong_groups: Some(2),
            seed: 55,
            ..PlantedConfig::default()
        })
    }

    #[test]
    fn merges_multiple_k_and_ranks_by_exact_significance() {
        let planted = data();
        let report = detector()
            .detect_across_k(&planted.dataset, [2usize, 3])
            .unwrap();
        // Both dimensionalities contribute.
        let ks: BTreeSet<usize> = report.projections.iter().map(|p| p.k).collect();
        assert_eq!(ks, BTreeSet::from([2, 3]));
        // Sorted by exact significance.
        for w in report.projections.windows(2) {
            assert!(w[0].exact_significance <= w[1].exact_significance);
        }
        // The union equals the per-k unions.
        let mut union = BTreeSet::new();
        for k in [2usize, 3] {
            let mut config = detector().config().clone();
            config.k = Some(k);
            let r = OutlierDetector::with_config(config)
                .detect(&planted.dataset)
                .unwrap();
            union.extend(r.outlier_rows);
        }
        assert_eq!(report.outlier_rows, union.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn exact_significance_beats_raw_s_for_cross_k_comparison() {
        // A 2-d singleton at E=94 is far more surprising than a 3-d
        // singleton at E=23 even if their raw S values suggest otherwise —
        // the ranking must reflect the exact tails.
        let planted = data();
        let report = detector()
            .detect_across_k(&planted.dataset, [2usize, 3])
            .unwrap();
        let best_k2 = report
            .projections
            .iter()
            .find(|p| p.k == 2)
            .expect("k=2 present");
        let best_k3 = report
            .projections
            .iter()
            .find(|p| p.k == 3)
            .expect("k=3 present");
        // Consistency: each entry's significance matches its own law.
        for p in [best_k2, best_k3] {
            let params = SparsityParams::new(1500, 4, p.k as u32).unwrap();
            assert_eq!(
                p.exact_significance,
                params.exact_significance(p.scored.count as u64)
            );
        }
    }

    #[test]
    fn top_truncates() {
        let planted = data();
        let report = detector()
            .detect_across_k(&planted.dataset, [2usize])
            .unwrap();
        assert_eq!(report.top(3).len(), 3.min(report.projections.len()));
        assert!(report.top(10_000).len() <= report.projections.len());
    }

    #[test]
    fn propagates_per_k_errors() {
        let planted = data();
        let err = detector().detect_across_k(&planted.dataset, [2usize, 99]);
        assert!(err.is_err());
    }
}
