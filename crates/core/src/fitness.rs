//! Fitness of a projection string: the sparsity coefficient of its cube
//! (paper Eq. 1), evaluated through a cube counter.
//!
//! Fitness is minimized (most negative coefficient = fittest). Infeasible
//! strings — wrong dimensionality for the run — receive `+∞`, the paper's
//! "very low fitness values" for solutions outside the feasible search
//! space (§2.2).

use crate::projection::Projection;
use hdoutlier_index::{Cube, CubeCounter};
use hdoutlier_stats::SparsityParams;
use std::collections::HashMap;
use std::sync::Mutex;

/// Evaluates sparsity coefficients for projections of a fixed dataset.
pub struct SparsityFitness<'a, C: CubeCounter> {
    counter: &'a C,
    /// Target dimensionality `k` of feasible projections.
    k: usize,
    /// Pre-validated parameters per possible sub-dimensionality `1..=k`,
    /// so partial strings (used by the optimized crossover's greedy phase)
    /// are scored with the correct `N·f^j` baseline.
    params_by_k: Vec<Option<SparsityParams>>,
    /// When enabled, every full-k cube whose sparsity this fitness computes
    /// is recorded — including the candidates the optimized crossover
    /// examines internally. The evolutionary search drains this to build its
    /// best-m set, so solutions the algorithm *computed* but never promoted
    /// into the population still count as "kept track of" (paper Fig. 3).
    ///
    /// Behind a `Mutex` (not `RefCell`) so the evolve engine can fan fitness
    /// evaluation out across pool workers; insertion order is irrelevant —
    /// the evolutionary search sorts the drained map deterministically.
    tracked: Mutex<Option<HashMap<Cube, f64>>>,
    /// Tabu set for multi-restart search: genomes whose cube is banned score
    /// `+∞` so the population is pushed toward *new* sparse regions. Bans
    /// apply only at the genome level ([`SparsityFitness::evaluate`]); the
    /// crossover's internal [`SparsityFitness::sparsity_of_cube`] calls
    /// still see true scores, so banned cubes remain usable as stepping
    /// stones.
    banned: Mutex<std::collections::HashSet<Cube>>,
}

impl<'a, C: CubeCounter> SparsityFitness<'a, C> {
    /// Binds a counter and the run's target dimensionality.
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds the counter's dimensionality.
    pub fn new(counter: &'a C, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            k <= counter.n_dims(),
            "k = {k} exceeds dataset dimensionality {}",
            counter.n_dims()
        );
        let n = counter.n_rows() as u64;
        let phi = counter.phi();
        let params_by_k = (0..=k)
            .map(|j| {
                if j == 0 {
                    None
                } else {
                    SparsityParams::new(n, phi, j as u32)
                }
            })
            .collect();
        Self {
            counter,
            k,
            params_by_k,
            tracked: Mutex::new(None),
            banned: Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Bans a cube: genomes resolving to it score `+∞` from now on. Used by
    /// [`crate::evolutionary::multi_restart_search`] to force successive
    /// restarts into unexplored regions.
    pub fn ban(&self, cube: Cube) {
        self.banned.lock().expect("ban set poisoned").insert(cube);
    }

    /// Number of currently banned cubes.
    pub fn banned_len(&self) -> usize {
        self.banned.lock().expect("ban set poisoned").len()
    }

    /// Removes all bans.
    pub fn clear_bans(&self) {
        self.banned.lock().expect("ban set poisoned").clear();
    }

    /// Starts recording every full-k cube scored by this fitness (idempotent;
    /// clears any previous recording).
    pub fn enable_tracking(&self) {
        *self.tracked.lock().expect("tracking map poisoned") = Some(HashMap::new());
    }

    /// Stops recording and returns everything recorded since
    /// [`SparsityFitness::enable_tracking`]. Returns an empty map if
    /// tracking was never enabled.
    pub fn take_tracked(&self) -> HashMap<Cube, f64> {
        self.tracked
            .lock()
            .expect("tracking map poisoned")
            .take()
            .unwrap_or_default()
    }

    /// The run's target dimensionality.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying counter.
    pub fn counter(&self) -> &C {
        self.counter
    }

    /// Sparsity parameters at the target dimensionality.
    pub fn params(&self) -> SparsityParams {
        self.params_by_k[self.k].expect("validated in new")
    }

    /// Full fitness: sparsity coefficient for feasible strings, `+∞`
    /// otherwise.
    pub fn evaluate(&self, projection: &Projection) -> f64 {
        if !projection.is_feasible(self.k) {
            return f64::INFINITY;
        }
        let cube = projection
            .to_cube()
            .expect("feasible projection with k >= 1 has a cube");
        if self
            .banned
            .lock()
            .expect("ban set poisoned")
            .contains(&cube)
        {
            return f64::INFINITY;
        }
        self.sparsity_of_cube(&cube)
    }

    /// Sparsity of an arbitrary cube at *its own* dimensionality, for
    /// partial strings during optimized crossover. Cubes deeper than the
    /// run's `k` are infeasible and score `+∞`.
    pub fn sparsity_of_cube(&self, cube: &Cube) -> f64 {
        match self.params_by_k.get(cube.k()).copied().flatten() {
            Some(params) => {
                let s = params.sparsity(self.counter.count(cube) as u64);
                if cube.k() == self.k {
                    if let Some(tracked) =
                        self.tracked.lock().expect("tracking map poisoned").as_mut()
                    {
                        tracked.insert(cube.clone(), s);
                    }
                }
                s
            }
            None => f64::INFINITY,
        }
    }

    /// Occupancy of a projection's cube; `None` for the all-star projection
    /// (which trivially contains every record).
    pub fn count(&self, projection: &Projection) -> Option<usize> {
        projection.to_cube().map(|c| self.counter.count(&c))
    }

    /// Rows covering a projection.
    pub fn rows(&self, projection: &Projection) -> Vec<usize> {
        match projection.to_cube() {
            Some(cube) => self.counter.rows(&cube),
            None => (0..self.counter.n_rows()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::STAR;
    use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
    use hdoutlier_data::generators::uniform;
    use hdoutlier_index::BitmapCounter;

    fn fixture() -> (BitmapCounter, usize) {
        let ds = uniform(1000, 5, 7);
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        (BitmapCounter::new(&disc), 1000)
    }

    #[test]
    fn feasible_projection_scores_eq1() {
        let (counter, n) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let p = Projection::from_genes(vec![0, STAR, 3, STAR, STAR]);
        let count = fitness.count(&p).unwrap();
        let want = hdoutlier_stats::sparsity_coefficient(count as u64, n as u64, 4, 2);
        assert_eq!(fitness.evaluate(&p), want);
    }

    #[test]
    fn infeasible_projection_is_infinity() {
        let (counter, _) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        // k = 1 and k = 3 strings are infeasible for a k = 2 run.
        assert_eq!(
            fitness.evaluate(&Projection::from_genes(vec![0, STAR, STAR, STAR, STAR])),
            f64::INFINITY
        );
        assert_eq!(
            fitness.evaluate(&Projection::from_genes(vec![0, 1, 2, STAR, STAR])),
            f64::INFINITY
        );
        assert_eq!(fitness.evaluate(&Projection::all_star(5)), f64::INFINITY);
    }

    #[test]
    fn partial_cube_scoring_uses_own_dimensionality() {
        let (counter, n) = fixture();
        let fitness = SparsityFitness::new(&counter, 3);
        let cube = hdoutlier_index::Cube::new([(0, 1)]).unwrap();
        let got = fitness.sparsity_of_cube(&cube);
        let count = counter.count(&cube);
        let want = hdoutlier_stats::sparsity_coefficient(count as u64, n as u64, 4, 1);
        assert_eq!(got, want);
        // Deeper than k is infeasible.
        let deep = hdoutlier_index::Cube::new([(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        assert_eq!(fitness.sparsity_of_cube(&deep), f64::INFINITY);
    }

    #[test]
    fn uniform_data_has_mild_coefficients_at_k1() {
        // Equi-depth on 1000 rows, φ=4: every 1-d range holds exactly 250,
        // so every k=1 sparsity coefficient is ~0.
        let (counter, _) = fixture();
        let fitness = SparsityFitness::new(&counter, 1);
        for dim in 0..5 {
            for r in 0..4u16 {
                let mut genes = vec![STAR; 5];
                genes[dim] = r;
                let s = fitness.evaluate(&Projection::from_genes(genes));
                assert!(s.abs() < 0.1, "dim {dim} range {r}: {s}");
            }
        }
    }

    #[test]
    fn rows_and_count_agree() {
        let (counter, _) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let p = Projection::from_genes(vec![1, STAR, STAR, 2, STAR]);
        assert_eq!(fitness.rows(&p).len(), fitness.count(&p).unwrap());
        // All-star covers everything.
        assert_eq!(fitness.rows(&Projection::all_star(5)).len(), 1000);
        assert_eq!(fitness.count(&Projection::all_star(5)), None);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let (counter, _) = fixture();
        SparsityFitness::new(&counter, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds dataset dimensionality")]
    fn oversized_k_panics() {
        let (counter, _) = fixture();
        SparsityFitness::new(&counter, 6);
    }
}
