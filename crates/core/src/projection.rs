//! The projection-string genome (paper §2.2).
//!
//! A solution is a string with one position per dimension; each position
//! holds either a grid range in `1..=φ` or `*` ("don't care"). The paper's
//! example in 4 dimensions with φ = 10 is `*3*9`: ranges fixed on the second
//! and fourth dimensions. A string is **feasible** for a run when exactly
//! `k` positions are non-star.
//!
//! Internally ranges are 0-based `u16` with [`STAR`] as the sentinel;
//! [`std::fmt::Display`] renders the paper's 1-based notation.

use hdoutlier_index::Cube;
use hdoutlier_rng::Rng;
use std::fmt;

/// Sentinel gene value for `*` ("don't care").
pub const STAR: u16 = u16::MAX;

/// A projection string: one gene per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Projection {
    genes: Vec<u16>,
}

impl Projection {
    /// Builds a projection from raw genes (`STAR` or a 0-based range).
    pub fn from_genes(genes: Vec<u16>) -> Self {
        Self { genes }
    }

    /// The all-star projection of dimensionality `d` (constrains nothing).
    pub fn all_star(d: usize) -> Self {
        Self {
            genes: vec![STAR; d],
        }
    }

    /// A uniformly random feasible projection: exactly `k` of `d` positions
    /// constrained, each to a uniform range in `0..phi`.
    ///
    /// # Panics
    /// Panics if `k > d` or `phi == 0`.
    pub fn random<R: Rng>(d: usize, k: usize, phi: u32, rng: &mut R) -> Self {
        assert!(k <= d, "k = {k} exceeds dimensionality {d}");
        assert!(phi > 0, "phi must be positive");
        let mut genes = vec![STAR; d];
        // Reservoir-free selection of k distinct positions.
        let mut chosen = 0usize;
        for (pos, gene) in genes.iter_mut().enumerate() {
            let remaining = d - pos;
            let needed = k - chosen;
            if needed > 0 && rng.gen_range(0..remaining) < needed {
                *gene = rng.gen_range(0..phi) as u16;
                chosen += 1;
            }
        }
        Self { genes }
    }

    /// Number of positions (total dimensionality `d`).
    pub fn d(&self) -> usize {
        self.genes.len()
    }

    /// Number of constrained (non-star) positions.
    pub fn k(&self) -> usize {
        self.genes.iter().filter(|&&g| g != STAR).count()
    }

    /// The gene at `pos`: `None` for star, `Some(range)` otherwise.
    #[inline]
    pub fn gene(&self, pos: usize) -> Option<u16> {
        match self.genes[pos] {
            STAR => None,
            r => Some(r),
        }
    }

    /// Sets the gene at `pos` (use [`STAR`] to un-constrain).
    pub fn set_gene(&mut self, pos: usize, gene: u16) {
        self.genes[pos] = gene;
    }

    /// Raw gene slice (`STAR` sentinel included).
    pub fn genes(&self) -> &[u16] {
        &self.genes
    }

    /// Positions that are stars.
    pub fn star_positions(&self) -> Vec<usize> {
        (0..self.d()).filter(|&i| self.genes[i] == STAR).collect()
    }

    /// Positions that are constrained.
    pub fn constrained_positions(&self) -> Vec<usize> {
        (0..self.d()).filter(|&i| self.genes[i] != STAR).collect()
    }

    /// Whether the projection is feasible for a run seeking `k`-dimensional
    /// projections.
    pub fn is_feasible(&self, k: usize) -> bool {
        self.k() == k
    }

    /// Converts to the canonical [`Cube`]; `None` if nothing is constrained.
    pub fn to_cube(&self) -> Option<Cube> {
        Cube::new(
            self.genes
                .iter()
                .enumerate()
                .filter(|&(_, &g)| g != STAR)
                .map(|(i, &g)| (i as u32, g)),
        )
    }

    /// Builds the projection covering `cube` in a `d`-dimensional problem.
    ///
    /// # Panics
    /// Panics if the cube references a dimension `>= d`.
    pub fn from_cube(cube: &Cube, d: usize) -> Self {
        let mut genes = vec![STAR; d];
        for (dim, range) in cube.pairs() {
            assert!((dim as usize) < d, "cube dimension {dim} out of bounds");
            genes[dim as usize] = range;
        }
        Self { genes }
    }

    /// Whether a discretized record covers this projection: every
    /// constrained position must match the record's cell (a missing cell —
    /// any value ≥ the grid's φ, e.g.
    /// [`hdoutlier_data::discretize::MISSING_CELL`] — never matches, which
    /// is exactly the paper's missing-data semantics).
    pub fn covers(&self, cells: &[u16]) -> bool {
        debug_assert_eq!(cells.len(), self.d());
        self.genes
            .iter()
            .zip(cells)
            .all(|(&g, &c)| g == STAR || g == c)
    }

    /// Gene view for De Jong convergence: star → 0, range r → r + 1.
    pub fn gene_view(&self) -> Vec<u32> {
        self.genes
            .iter()
            .map(|&g| if g == STAR { 0 } else { g as u32 + 1 })
            .collect()
    }
}

impl fmt::Display for Projection {
    /// The paper's notation: `*` for stars, 1-based range numbers otherwise.
    /// Positions are separated by nothing when every range fits one digit,
    /// by `.` otherwise (φ > 9).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let multi_digit = self.genes.iter().any(|&g| g != STAR && g + 1 > 9);
        for (i, &g) in self.genes.iter().enumerate() {
            if multi_digit && i > 0 {
                write!(f, ".")?;
            }
            match g {
                STAR => write!(f, "*")?,
                r => write!(f, "{}", r + 1)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_rng::rngs::StdRng;
    use hdoutlier_rng::SeedableRng;

    #[test]
    fn paper_notation_example() {
        // *3*9: dims 1 and 3 constrained to 1-based ranges 3 and 9.
        let p = Projection::from_genes(vec![STAR, 2, STAR, 8]);
        assert_eq!(p.to_string(), "*3*9");
        assert_eq!(p.d(), 4);
        assert_eq!(p.k(), 2);
        assert_eq!(p.gene(0), None);
        assert_eq!(p.gene(1), Some(2));
    }

    #[test]
    fn multi_digit_display_uses_separators() {
        let p = Projection::from_genes(vec![STAR, 9, 10]); // ranges 10, 11
        assert_eq!(p.to_string(), "*.10.11");
    }

    #[test]
    fn random_is_feasible_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = Projection::random(10, 3, 7, &mut rng);
            assert_eq!(p.d(), 10);
            assert!(p.is_feasible(3));
            for pos in p.constrained_positions() {
                assert!(p.gene(pos).unwrap() < 7);
            }
        }
    }

    #[test]
    fn random_positions_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            let p = Projection::random(6, 2, 3, &mut rng);
            for pos in p.constrained_positions() {
                counts[pos] += 1;
            }
        }
        // Each position expected in 1/3 of projections → ~2000.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1800..2200).contains(&c), "position {i}: {c}");
        }
    }

    #[test]
    fn random_edge_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Projection::random(5, 0, 4, &mut rng);
        assert_eq!(p.k(), 0);
        let p = Projection::random(5, 5, 4, &mut rng);
        assert_eq!(p.k(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds dimensionality")]
    fn random_k_too_large_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        Projection::random(3, 4, 5, &mut rng);
    }

    #[test]
    fn cube_round_trip() {
        let p = Projection::from_genes(vec![STAR, 2, STAR, 8, STAR]);
        let cube = p.to_cube().unwrap();
        assert_eq!(cube.dims(), &[1, 3]);
        assert_eq!(cube.ranges(), &[2, 8]);
        let back = Projection::from_cube(&cube, 5);
        assert_eq!(back, p);
        assert!(Projection::all_star(4).to_cube().is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_cube_dimension_overflow_panics() {
        let cube = Cube::new([(9, 0)]).unwrap();
        Projection::from_cube(&cube, 5);
    }

    #[test]
    fn covers_semantics() {
        let p = Projection::from_genes(vec![STAR, 2, STAR, 8]);
        assert!(p.covers(&[0, 2, 5, 8]));
        assert!(!p.covers(&[0, 3, 5, 8]));
        // Missing cell never matches a constrained position...
        assert!(!p.covers(&[0, u16::MAX, 5, 8]));
        // ...but is fine on a star position.
        assert!(p.covers(&[u16::MAX, 2, u16::MAX, 8]));
        // All-star covers anything.
        assert!(Projection::all_star(4).covers(&[u16::MAX; 4]));
    }

    #[test]
    fn gene_view_distinguishes_star_from_range_zero() {
        let p = Projection::from_genes(vec![STAR, 0, 1]);
        assert_eq!(p.gene_view(), vec![0, 1, 2]);
    }

    #[test]
    fn star_and_constrained_partition_positions() {
        let p = Projection::from_genes(vec![STAR, 2, STAR, 8]);
        assert_eq!(p.star_positions(), vec![0, 2]);
        assert_eq!(p.constrained_positions(), vec![1, 3]);
        let mut q = p.clone();
        q.set_gene(0, 4);
        q.set_gene(1, STAR);
        assert_eq!(q.star_positions(), vec![1, 2]);
        assert_eq!(q.k(), 2);
    }

    #[test]
    fn hash_and_eq_for_dedup() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Projection::from_genes(vec![STAR, 1]));
        assert!(set.contains(&Projection::from_genes(vec![STAR, 1])));
        assert!(!set.contains(&Projection::from_genes(vec![1, STAR])));
    }
}
