//! A fitted detector: mined projections plus the grid that interprets them,
//! detached from the training data — the train/apply split a production
//! deployment needs.
//!
//! The paper's algorithm is batch: discretize, search, report. A deployment
//! (fraud screening, intrusion detection — the applications §1 motivates)
//! instead mines the sparse projections *offline* and then scores each
//! *incoming* record online: does it land in any of the abnormal cubes?
//! [`FittedModel`] packages exactly that: assign the new record's grid cells
//! through the fitted [`GridSpec`] boundaries, then match them against the
//! mined projections in `O(m·k)` per record, with no access to the training
//! data.

use crate::detector::{DetectError, OutlierDetector};
use crate::report::{OutlierReport, ScoredProjection};
use hdoutlier_data::{DataError, Dataset, Discretized, GridSpec};

/// One projection matched by a scored record.
#[derive(Debug, Clone)]
pub struct MatchedProjection<'a> {
    /// Index into [`FittedModel::projections`].
    pub index: usize,
    /// The matched projection with its training-time score.
    pub projection: &'a ScoredProjection,
}

/// A fitted, data-free outlier model.
#[derive(Debug, Clone)]
pub struct FittedModel {
    grid: GridSpec,
    projections: Vec<ScoredProjection>,
}

impl FittedModel {
    /// Assembles a model from a fitted grid and mined projections.
    pub fn new(grid: GridSpec, projections: Vec<ScoredProjection>) -> Self {
        Self { grid, projections }
    }

    /// The fitted grid boundaries.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The mined abnormal projections, most negative first.
    pub fn projections(&self) -> &[ScoredProjection] {
        &self.projections
    }

    /// Scores one new record: every mined projection whose cube the record
    /// falls into. Missing attributes never match a constrained position
    /// (the paper's §1.2 semantics).
    ///
    /// # Errors
    /// [`DataError::ShapeMismatch`] if the record width differs from the
    /// fitted dimensionality.
    pub fn matches<'a>(&'a self, row: &[f64]) -> Result<Vec<MatchedProjection<'a>>, DataError> {
        let cells = self.grid.assign_row(row)?;
        Ok(self
            .projections
            .iter()
            .enumerate()
            .filter(|(_, s)| s.projection.covers(&cells))
            .map(|(index, projection)| MatchedProjection { index, projection })
            .collect())
    }

    /// Whether the record matches any mined projection.
    pub fn is_outlier(&self, row: &[f64]) -> Result<bool, DataError> {
        Ok(!self.matches(row)?.is_empty())
    }

    /// Outlier score of a record: the most negative sparsity among matched
    /// projections, or `None` if nothing matches.
    pub fn score(&self, row: &[f64]) -> Result<Option<f64>, DataError> {
        Ok(self
            .matches(row)?
            .into_iter()
            .map(|m| m.projection.sparsity)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.min(s)))
            }))
    }

    /// Scores a whole dataset; `results[i]` is the score of row `i`.
    pub fn score_dataset(&self, dataset: &Dataset) -> Result<Vec<Option<f64>>, DataError> {
        dataset.rows().map(|row| self.score(row)).collect()
    }
}

impl OutlierDetector {
    /// Fits a reusable model: runs [`OutlierDetector::detect`] and packages
    /// the resulting projections with the fitted grid boundaries.
    pub fn fit(&self, dataset: &Dataset) -> Result<FittedModel, DetectError> {
        let phi = self.config().phi.unwrap_or_else(|| {
            crate::params::advise(dataset.n_rows() as u64, self.config().target_sparsity).phi
        });
        let disc = Discretized::new(dataset, phi, self.config().strategy)?;
        let report: OutlierReport = self.detect_discretized(&disc)?;
        Ok(FittedModel::new(
            GridSpec::from_discretized(&disc),
            report.projections,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::SearchMethod;
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

    fn fit_on_planted() -> (FittedModel, hdoutlier_data::generators::PlantedOutliers) {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 2000,
            n_dims: 10,
            n_outliers: 5,
            strong_groups: Some(3),
            seed: 1,
            ..PlantedConfig::default()
        });
        let model = OutlierDetector::builder()
            .phi(5)
            .k(2)
            .m(10)
            .search(SearchMethod::BruteForce)
            .build()
            .fit(&planted.dataset)
            .unwrap();
        (model, planted)
    }

    #[test]
    fn training_outliers_score_as_outliers() {
        let (model, planted) = fit_on_planted();
        let mut hits = 0usize;
        for &row in &planted.outlier_rows {
            if model.is_outlier(planted.dataset.row(row)).unwrap() {
                hits += 1;
            }
        }
        assert!(
            hits >= planted.outlier_rows.len() / 2,
            "{hits}/{} planted outliers matched",
            planted.outlier_rows.len()
        );
    }

    #[test]
    fn fresh_contrarian_records_are_flagged_without_retraining() {
        // The deployment scenario: a *new* record violating the same
        // correlation the mined projections describe must be flagged.
        let (model, planted) = fit_on_planted();
        let (lo, hi) = planted.signatures[0];
        let mut fresh = vec![0.0f64; 10];
        fresh[lo] = -1.3; // ~10th percentile of the N(0,1) marginal
        fresh[hi] = 1.3; // ~90th — jointly contrarian under strong correlation
        let matched = model.matches(&fresh).unwrap();
        assert!(
            !matched.is_empty(),
            "fresh contrarian record not flagged (projections: {:?})",
            model
                .projections()
                .iter()
                .map(|s| s.projection.to_string())
                .collect::<Vec<_>>()
        );
        assert!(model.score(&fresh).unwrap().unwrap() < -3.0);
    }

    #[test]
    fn typical_records_are_not_flagged() {
        let (model, _) = fit_on_planted();
        // A record at the marginal medians sits in dense diagonal cells.
        let typical = vec![0.0f64; 10];
        assert!(!model.is_outlier(&typical).unwrap());
        assert_eq!(model.score(&typical).unwrap(), None);
    }

    #[test]
    fn missing_attributes_never_match() {
        let (model, planted) = fit_on_planted();
        let (lo, hi) = planted.signatures[0];
        let mut fresh = vec![0.0f64; 10];
        fresh[lo] = f64::NAN; // the contrarian attribute is unknown
        fresh[hi] = 1.3;
        // Projections constraining `lo` cannot match this record.
        for m in model.matches(&fresh).unwrap() {
            assert_eq!(m.projection.projection.gene(lo), None);
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let (model, _) = fit_on_planted();
        assert!(model.matches(&[0.0; 3]).is_err());
        assert!(model.score(&[0.0; 3]).is_err());
    }

    #[test]
    fn score_dataset_aligns_with_per_row() {
        let (model, planted) = fit_on_planted();
        let scores = model.score_dataset(&planted.dataset).unwrap();
        assert_eq!(scores.len(), planted.dataset.n_rows());
        for (i, s) in scores.iter().enumerate().take(50) {
            assert_eq!(*s, model.score(planted.dataset.row(i)).unwrap());
        }
    }
}
