//! Brute-force projection search (paper Fig. 2).
//!
//! Enumerates every k-dimensional cube — all `C(d, k) · φ^k` combinations of
//! k distinct dimensions with one grid range each — and keeps the m with the
//! most negative sparsity coefficients. The paper builds candidates
//! bottom-up (`R_i = R_{i−1} ⊕ Q_1`); this implementation walks the same
//! tree depth-first so memory stays `O(k)` instead of materializing `R_i`.
//!
//! Two sound accelerations (results are identical to the naive sweep):
//!
//! - **Empty-subtree pruning**: occupancy is monotone (adding a constraint
//!   can only shrink a cube), so once a partial cube is empty every
//!   completion is empty too. Empty cubes can never enter a best-set
//!   restricted to non-empty projections (the paper's own quality metric is
//!   over "the best 20 *non-empty* projections"), so the subtree is skipped
//!   and its size added to the examined count.
//! - **Candidate budget**: an optional cap on examined candidates, which is
//!   how the harness reproduces the paper's observation that brute force
//!   "was unable to terminate in a reasonable amount of time" on the
//!   160-dimensional musk data.

use crate::fitness::SparsityFitness;
use crate::projection::Projection;
use crate::report::ScoredProjection;
use hdoutlier_index::{Cube, CubeCounter};
use hdoutlier_obs as obs;
use hdoutlier_stats::rank::BoundedBest;

/// Profiler frame target: these spans exist for `--profile-out` stack
/// attribution (one relaxed atomic load when profiling is off), not for
/// the event log — the per-node rate would swamp any sink.
const TARGET: &str = "hdoutlier.core";

/// Configuration for [`brute_force_search`].
#[derive(Debug, Clone)]
pub struct BruteForceConfig {
    /// Number of best projections to retain (`m` in Fig. 2).
    pub m: usize,
    /// Only retain projections covering at least one record. The paper
    /// reports quality over non-empty projections; empty ones identify no
    /// outlier. Disabling this also disables empty-subtree pruning.
    pub require_nonempty: bool,
    /// Stop after examining (or provably skipping) this many complete
    /// cubes; the outcome is then marked incomplete.
    pub max_candidates: Option<u64>,
}

impl Default for BruteForceConfig {
    fn default() -> Self {
        Self {
            m: 20,
            require_nonempty: true,
            max_candidates: None,
        }
    }
}

/// Result of a brute-force run.
#[derive(Debug, Clone)]
pub struct BruteForceOutcome {
    /// The best projections, most negative sparsity first.
    pub best: Vec<ScoredProjection>,
    /// Complete cubes accounted for (scored directly or covered by an
    /// empty-subtree skip).
    pub candidates: u64,
    /// Complete cubes whose sparsity was actually computed.
    pub scored: u64,
    /// Whether the whole space was covered (false if the budget tripped).
    pub completed: bool,
}

/// Runs the exhaustive search of Fig. 2.
pub fn brute_force_search<C: CubeCounter>(
    fitness: &SparsityFitness<'_, C>,
    config: &BruteForceConfig,
) -> BruteForceOutcome {
    let d = fitness.counter().n_dims();
    brute_force_over_first_dims(fitness, config, &(0..d).collect::<Vec<_>>())
}

/// The paper's search is single-threaded; this extension partitions the
/// enumeration by the cube's *first* (lowest) dimension — one task per
/// dimension — and fans the tasks out on a [`hdoutlier_pool`] of `threads`
/// workers. Subtrees are disjoint and each task is a pure function of its
/// dimension, so the merged result is **identical at every thread count**
/// (tie ranks at the m-th place are broken by projection genes).
///
/// `config.max_candidates` is split evenly across the *tasks* (not the
/// threads), so even an interrupted run covers the same candidate subset no
/// matter how many workers were live. The split means a budgeted run may
/// cover a slightly different subset than [`brute_force_search`] with the
/// same cap; completed runs are equivalent.
///
/// Requires a `Sync` counter ([`hdoutlier_index::BitmapCounter`] and the
/// memoizing `CachedCounter` both are).
pub fn brute_force_search_parallel<C: CubeCounter + Sync>(
    counter: &C,
    k: usize,
    config: &BruteForceConfig,
    threads: usize,
) -> BruteForceOutcome {
    assert!(threads >= 1, "need at least one thread");
    let d = counter.n_dims();
    let first_dims: Vec<usize> = (0..d).filter(|&dim| dim + k <= d).collect();
    let task_config = per_task_config(config, first_dims.len());
    let outcomes = hdoutlier_pool::map(threads, &first_dims, |_, &dim| {
        let fitness = SparsityFitness::new(counter, k);
        brute_force_over_first_dims(&fitness, &task_config, &[dim])
    });
    merge_outcomes(outcomes, config.m)
}

/// Splits the candidate budget evenly across the per-dimension tasks, so an
/// interrupted run is a function of the task decomposition alone — never of
/// the worker count.
fn per_task_config(config: &BruteForceConfig, n_tasks: usize) -> BruteForceConfig {
    BruteForceConfig {
        max_candidates: config
            .max_candidates
            .map(|b| b.div_ceil(n_tasks.max(1) as u64)),
        ..config.clone()
    }
}

fn merge_outcomes(outcomes: Vec<BruteForceOutcome>, m: usize) -> BruteForceOutcome {
    let mut best: Vec<ScoredProjection> = Vec::new();
    let mut candidates = 0u64;
    let mut scored = 0u64;
    let mut completed = true;
    for o in outcomes {
        best.extend(o.best);
        candidates = candidates.saturating_add(o.candidates);
        scored = scored.saturating_add(o.scored);
        completed &= o.completed;
    }
    best.sort_by(|a, b| {
        a.sparsity
            .partial_cmp(&b.sparsity)
            .expect("finite sparsity")
            .then_with(|| a.projection.genes().cmp(b.projection.genes()))
    });
    best.truncate(m);
    BruteForceOutcome {
        best,
        candidates,
        scored,
        completed,
    }
}

/// Brute force restricted to cubes whose lowest dimension is in
/// `first_dims`; the full search is the union over all dimensions.
fn brute_force_over_first_dims<C: CubeCounter>(
    fitness: &SparsityFitness<'_, C>,
    config: &BruteForceConfig,
    first_dims: &[usize],
) -> BruteForceOutcome {
    let d = fitness.counter().n_dims();
    let phi = fitness.counter().phi() as u16;
    let k = fitness.k();
    let mut walker = Walker {
        fitness,
        config,
        d,
        phi,
        k,
        best: BoundedBest::new(config.m),
        candidates: 0,
        scored: 0,
        budget_hit: false,
    };
    let mut chosen = Vec::with_capacity(k);
    for &dim in first_dims {
        if dim + k > d {
            continue; // not enough higher dims to complete a cube
        }
        let _enumerate = obs::profile_span(TARGET, "enumerate");
        for range in 0..phi {
            chosen.push((dim as u32, range));
            if config.require_nonempty && k > 1 {
                let cube = Cube::new(chosen.iter().copied()).expect("distinct dims");
                if fitness.counter().count(&cube) == 0 {
                    walker.skip_subtree(1, dim);
                    chosen.pop();
                    if walker.budget_hit {
                        break;
                    }
                    continue;
                }
            }
            if k == 1 {
                walker.score_leaf(&chosen);
            } else {
                walker.descend(&mut chosen, dim + 1);
            }
            chosen.pop();
            if walker.budget_hit {
                break;
            }
        }
        if walker.budget_hit {
            break;
        }
    }
    let completed = !walker.budget_hit;
    let best = walker
        .best
        .into_sorted()
        .into_iter()
        .map(|(sparsity, (cube, count))| ScoredProjection {
            projection: Projection::from_cube(&cube, d),
            sparsity,
            count,
        })
        .collect();
    BruteForceOutcome {
        best,
        candidates: walker.candidates,
        scored: walker.scored,
        completed,
    }
}

struct Walker<'f, 'c, C: CubeCounter> {
    fitness: &'f SparsityFitness<'c, C>,
    config: &'f BruteForceConfig,
    d: usize,
    phi: u16,
    k: usize,
    best: BoundedBest<(Cube, usize)>,
    candidates: u64,
    scored: u64,
    budget_hit: bool,
}

impl<C: CubeCounter> Walker<'_, '_, C> {
    /// DFS over dimension choices (ascending) and range choices.
    fn descend(&mut self, chosen: &mut Vec<(u32, u16)>, next_dim: usize) {
        if self.budget_hit {
            return;
        }
        let depth = chosen.len();
        if depth == self.k {
            self.score_leaf(chosen);
            return;
        }
        // Enough dimensions must remain to reach depth k.
        let remaining_needed = self.k - depth;
        for dim in next_dim..=(self.d - remaining_needed) {
            for range in 0..self.phi {
                chosen.push((dim as u32, range));
                // Empty-subtree pruning: legal only when the best-set cannot
                // accept empty cubes anyway.
                if self.config.require_nonempty && chosen.len() < self.k {
                    let cube = Cube::new(chosen.iter().copied()).expect("distinct dims");
                    if self.fitness.counter().count(&cube) == 0 {
                        self.skip_subtree(chosen.len(), dim);
                        chosen.pop();
                        if self.budget_hit {
                            return;
                        }
                        continue;
                    }
                }
                self.descend(chosen, dim + 1);
                chosen.pop();
                if self.budget_hit {
                    return;
                }
            }
        }
    }

    fn score_leaf(&mut self, chosen: &[(u32, u16)]) {
        self.candidates += 1;
        let cube = Cube::new(chosen.iter().copied()).expect("distinct dims");
        let count = {
            let _intersect = obs::profile_span(TARGET, "intersect");
            self.fitness.counter().count(&cube)
        };
        self.scored += 1;
        if count > 0 || !self.config.require_nonempty {
            let sparsity = self.fitness.sparsity_of_cube(&cube);
            self.best.push(sparsity, (cube, count));
        }
        self.check_budget();
    }

    /// Accounts for all completions of an empty partial cube at `depth`
    /// whose last chosen dimension is `last_dim`.
    fn skip_subtree(&mut self, depth: usize, last_dim: usize) {
        let dims_left = self.d - (last_dim + 1);
        let need = self.k - depth;
        let combos = binomial_u64(dims_left as u64, need as u64);
        let completions = combos.saturating_mul((self.phi as u64).saturating_pow(need as u32));
        self.candidates = self.candidates.saturating_add(completions);
        self.check_budget();
    }

    fn check_budget(&mut self) {
        if let Some(cap) = self.config.max_candidates {
            if self.candidates >= cap {
                self.budget_hit = true;
            }
        }
    }
}

/// Brute force with **incremental bitmap intersection**: instead of
/// re-intersecting all `k` postings at every leaf (`O(k·N/64)`), the DFS
/// carries the partial intersection down the tree, so each node costs one
/// AND over `N/64` words and leaves cost a popcount. Results are identical
/// to [`brute_force_search`] over a [`hdoutlier_index::BitmapCounter`]; the
/// `index` Criterion bench measures the speedup (≈ k× at the leaves).
///
/// This path requires the bitmap backend — the generic entry point cannot
/// see inside an arbitrary [`CubeCounter`].
pub fn brute_force_search_incremental(
    counter: &hdoutlier_index::BitmapCounter,
    k: usize,
    config: &BruteForceConfig,
) -> BruteForceOutcome {
    let d = counter.n_dims();
    incremental_over_first_dims(counter, k, config, &(0..d).collect::<Vec<_>>())
}

/// The incremental search fanned out on a [`hdoutlier_pool`] of `threads`
/// workers, one task per first dimension — the fast path behind the CLI's
/// `--threads`. The task decomposition (and the even per-task split of
/// `config.max_candidates`) is independent of the worker count, so the
/// outcome is byte-identical at any `threads >= 1`; see
/// [`brute_force_search_parallel`] for the same contract over a generic
/// counter.
pub fn brute_force_search_incremental_parallel(
    counter: &hdoutlier_index::BitmapCounter,
    k: usize,
    config: &BruteForceConfig,
    threads: usize,
) -> BruteForceOutcome {
    assert!(threads >= 1, "need at least one thread");
    let d = counter.n_dims();
    let first_dims: Vec<usize> = (0..d).filter(|&dim| dim + k <= d).collect();
    let task_config = per_task_config(config, first_dims.len());
    let outcomes = hdoutlier_pool::map(threads, &first_dims, |_, &dim| {
        incremental_over_first_dims(counter, k, &task_config, &[dim])
    });
    merge_outcomes(outcomes, config.m)
}

/// The incremental DFS restricted to cubes whose lowest dimension is in
/// `first_dims`; the full search is the union over all dimensions.
fn incremental_over_first_dims(
    counter: &hdoutlier_index::BitmapCounter,
    k: usize,
    config: &BruteForceConfig,
    first_dims: &[usize],
) -> BruteForceOutcome {
    use hdoutlier_index::Bitmap;

    assert!(k >= 1, "k must be at least 1");
    assert!(
        k <= counter.n_dims(),
        "k = {k} exceeds dataset dimensionality {}",
        counter.n_dims()
    );
    let index = counter.index();
    let d = index.n_dims();
    let phi = index.phi() as u16;
    let params = hdoutlier_stats::SparsityParams::new(index.n_rows() as u64, index.phi(), k as u32)
        .expect("validated k and phi");

    // Root bitmap: everything.
    let mut root = Bitmap::new(index.n_rows());
    for row in 0..index.n_rows() {
        root.set(row);
    }
    let mut state = IncrementalState {
        index,
        config,
        d,
        phi,
        k,
        params,
        best: BoundedBest::new(config.m),
        candidates: 0,
        scored: 0,
        budget_hit: false,
    };
    let mut chosen = Vec::with_capacity(k);
    for &dim in first_dims {
        if dim + k > d {
            continue; // not enough higher dims to complete a cube
        }
        let _enumerate = obs::profile_span(TARGET, "enumerate");
        state.explore(&root, &mut chosen, dim);
        if state.budget_hit {
            break;
        }
    }
    let completed = !state.budget_hit;
    let best = state
        .best
        .into_sorted()
        .into_iter()
        .map(|(sparsity, (pairs, count))| ScoredProjection {
            projection: Projection::from_cube(&Cube::new(pairs).expect("distinct dims"), d),
            sparsity,
            count,
        })
        .collect();
    BruteForceOutcome {
        best,
        candidates: state.candidates,
        scored: state.scored,
        completed,
    }
}

/// The DFS state of one incremental search (one task of the parallel fan-out).
struct IncrementalState<'a> {
    index: &'a hdoutlier_index::GridIndex,
    config: &'a BruteForceConfig,
    d: usize,
    phi: u16,
    k: usize,
    params: hdoutlier_stats::SparsityParams,
    best: BoundedBest<(Vec<(u32, u16)>, usize)>,
    candidates: u64,
    scored: u64,
    budget_hit: bool,
}

impl IncrementalState<'_> {
    fn descend(
        &mut self,
        partial: &hdoutlier_index::Bitmap,
        chosen: &mut Vec<(u32, u16)>,
        next_dim: usize,
    ) {
        if self.budget_hit {
            return;
        }
        let depth = chosen.len();
        let remaining = self.k - depth;
        for dim in next_dim..=(self.d - remaining) {
            self.explore(partial, chosen, dim);
            if self.budget_hit {
                return;
            }
        }
    }

    /// Extends `partial` by every range of `dim`: scores leaves, prunes
    /// empty subtrees, recurses otherwise.
    fn explore(
        &mut self,
        partial: &hdoutlier_index::Bitmap,
        chosen: &mut Vec<(u32, u16)>,
        dim: usize,
    ) {
        use hdoutlier_index::Bitmap;
        for range in 0..self.phi {
            let posting = self.index.posting(dim as u32, range);
            let child = {
                let _intersect = obs::profile_span(TARGET, "intersect");
                Bitmap::intersection(&[partial, posting])
            };
            let count = child.count();
            chosen.push((dim as u32, range));
            if chosen.len() == self.k {
                self.candidates += 1;
                self.scored += 1;
                if count > 0 || !self.config.require_nonempty {
                    let sparsity = self.params.sparsity(count as u64);
                    self.best.push(sparsity, (chosen.clone(), count));
                }
                self.check_budget();
            } else if count == 0 && self.config.require_nonempty {
                // Monotone occupancy: skip the empty subtree, account
                // for its size.
                let dims_left = self.d - (dim + 1);
                let need = self.k - chosen.len();
                let combos = binomial_u64(dims_left as u64, need as u64);
                self.candidates = self.candidates.saturating_add(
                    combos.saturating_mul((self.phi as u64).saturating_pow(need as u32)),
                );
                self.check_budget();
            } else {
                self.descend(&child, chosen, dim + 1);
            }
            chosen.pop();
            if self.budget_hit {
                return;
            }
        }
    }

    fn check_budget(&mut self) {
        if let Some(cap) = self.config.max_candidates {
            if self.candidates >= cap {
                self.budget_hit = true;
            }
        }
    }
}

/// Exact binomial coefficient in u64 (saturating).
fn binomial_u64(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
    use hdoutlier_data::generators::{planted_outliers, uniform, PlantedConfig};
    use hdoutlier_index::BitmapCounter;

    fn fixture(n: usize, d: usize, phi: u32, seed: u64) -> BitmapCounter {
        let ds = uniform(n, d, seed);
        let disc = Discretized::new(&ds, phi, DiscretizeStrategy::EquiDepth).unwrap();
        BitmapCounter::new(&disc)
    }

    #[test]
    fn covers_whole_space_when_unbudgeted() {
        let counter = fixture(200, 5, 3, 1);
        let fitness = SparsityFitness::new(&counter, 2);
        let out = brute_force_search(&fitness, &BruteForceConfig::default());
        assert!(out.completed);
        // C(5,2)·3² = 90 complete cubes.
        assert_eq!(out.candidates, 90);
        assert_eq!(out.best.len(), 20);
        // Best list is sorted most-negative-first.
        for w in out.best.windows(2) {
            assert!(w[0].sparsity <= w[1].sparsity);
        }
        // Every retained projection is feasible and non-empty.
        for s in &out.best {
            assert!(s.projection.is_feasible(2));
            assert!(s.count > 0);
        }
    }

    #[test]
    fn matches_naive_double_loop() {
        // Independent full enumeration as the oracle.
        let counter = fixture(300, 4, 4, 2);
        let fitness = SparsityFitness::new(&counter, 2);
        let out = brute_force_search(
            &fitness,
            &BruteForceConfig {
                m: 5,
                ..BruteForceConfig::default()
            },
        );
        let mut oracle: Vec<(f64, usize)> = Vec::new();
        for d0 in 0..4u32 {
            for d1 in (d0 + 1)..4 {
                for r0 in 0..4u16 {
                    for r1 in 0..4u16 {
                        let cube = Cube::new([(d0, r0), (d1, r1)]).unwrap();
                        let count = counter.count(&cube);
                        if count > 0 {
                            oracle.push((fitness.sparsity_of_cube(&cube), count));
                        }
                    }
                }
            }
        }
        oracle.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(out.best.len(), 5);
        for (got, want) in out.best.iter().zip(&oracle) {
            assert!((got.sparsity - want.0).abs() < 1e-12);
        }
    }

    #[test]
    fn budget_interrupts_and_flags_incomplete() {
        let counter = fixture(100, 8, 4, 3);
        let fitness = SparsityFitness::new(&counter, 3);
        let out = brute_force_search(
            &fitness,
            &BruteForceConfig {
                max_candidates: Some(500),
                ..BruteForceConfig::default()
            },
        );
        assert!(!out.completed);
        assert!(out.candidates >= 500);
        // Full space would be C(8,3)·4³ = 3584.
        assert!(out.candidates < 3584);
    }

    #[test]
    fn finds_planted_sparse_combination() {
        // Planted contrarian records live in near-empty cubes; brute force
        // must rank one of their cubes at the very top.
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 2000,
            n_dims: 6,
            n_outliers: 4,
            seed: 5,
            ..PlantedConfig::default()
        });
        let disc = Discretized::new(&planted.dataset, 5, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = BitmapCounter::new(&disc);
        let fitness = SparsityFitness::new(&counter, 2);
        let out = brute_force_search(
            &fitness,
            &BruteForceConfig {
                m: 10,
                ..BruteForceConfig::default()
            },
        );
        // The top projections must surface the planted outliers. (The exact
        // top-1 can be any singleton cube — all count-1 cubes tie on Eq. 1 —
        // so the assertion is over the union of the best set.)
        let covered: Vec<usize> = out
            .best
            .iter()
            .flat_map(|s| fitness.rows(&s.projection))
            .collect();
        assert!(
            covered.iter().any(|&r| planted.is_outlier(r)),
            "best projections cover {covered:?}, none planted"
        );
        // And the top sparsity must be decidedly negative.
        assert!(out.best[0].sparsity < -3.0, "{}", out.best[0].sparsity);
    }

    #[test]
    fn allows_empty_projections_when_configured() {
        // 50 rows, φ=5, k=3: expected occupancy 0.4 — most cubes are empty.
        let counter = fixture(50, 5, 5, 4);
        let fitness = SparsityFitness::new(&counter, 3);
        let out = brute_force_search(
            &fitness,
            &BruteForceConfig {
                m: 5,
                require_nonempty: false,
                max_candidates: None,
            },
        );
        assert!(out.completed);
        // With empties allowed, the most negative coefficient is the
        // empty-cube value and at least one retained cube is empty.
        assert!(out.best.iter().any(|s| s.count == 0));
        let empty = hdoutlier_stats::empty_cube_coefficient(50, 5, 3);
        assert!((out.best[0].sparsity - empty).abs() < 1e-9);
        // All candidates scored (no pruning allowed in this mode).
        assert_eq!(out.candidates, out.scored);
    }

    #[test]
    fn pruning_accounts_for_skipped_candidates_exactly() {
        // With pruning on, candidates (scored + skipped) must still equal
        // the full space size when the run completes.
        let counter = fixture(30, 6, 6, 6); // sparse: plenty of empty subtrees
        let fitness = SparsityFitness::new(&counter, 3);
        let out = brute_force_search(&fitness, &BruteForceConfig::default());
        assert!(out.completed);
        // C(6,3)·6³ = 4320.
        assert_eq!(out.candidates, 4320);
        assert!(out.scored < out.candidates, "pruning should have fired");
    }

    #[test]
    fn m_larger_than_space_returns_everything_nonempty() {
        let counter = fixture(100, 3, 2, 7);
        let fitness = SparsityFitness::new(&counter, 2);
        let out = brute_force_search(
            &fitness,
            &BruteForceConfig {
                m: 1000,
                ..BruteForceConfig::default()
            },
        );
        // C(3,2)·2² = 12 cubes, all non-empty on 100 uniform rows.
        assert_eq!(out.best.len(), 12);
    }

    #[test]
    fn incremental_matches_generic_exactly() {
        for &(n, d, phi, k, seed) in &[
            (400usize, 7usize, 4u32, 3usize, 9u64),
            (150, 5, 3, 2, 10),
            (60, 6, 5, 4, 11), // sparse regime: pruning fires constantly
            (200, 4, 2, 1, 12),
        ] {
            let counter = fixture(n, d, phi, seed);
            let fitness = SparsityFitness::new(&counter, k);
            let config = BruteForceConfig {
                m: 12,
                ..BruteForceConfig::default()
            };
            let generic = brute_force_search(&fitness, &config);
            let fast = brute_force_search_incremental(&counter, k, &config);
            assert_eq!(fast.completed, generic.completed);
            assert_eq!(fast.candidates, generic.candidates, "({n},{d},{phi},{k})");
            assert_eq!(fast.best.len(), generic.best.len());
            for (a, b) in fast.best.iter().zip(&generic.best) {
                assert!(
                    (a.sparsity - b.sparsity).abs() < 1e-12,
                    "({n},{d},{phi},{k}): {} vs {}",
                    a.sparsity,
                    b.sparsity
                );
                assert_eq!(a.count, b.count);
            }
        }
    }

    #[test]
    fn incremental_budget_and_empty_mode() {
        let counter = fixture(100, 8, 4, 13);
        let out = brute_force_search_incremental(
            &counter,
            3,
            &BruteForceConfig {
                m: 10,
                require_nonempty: true,
                max_candidates: Some(500),
            },
        );
        assert!(!out.completed);
        assert!(out.candidates >= 500);
        // require_nonempty = false: everything scored, no pruning.
        let counter = fixture(50, 5, 5, 14);
        let out = brute_force_search_incremental(
            &counter,
            3,
            &BruteForceConfig {
                m: 5,
                require_nonempty: false,
                max_candidates: None,
            },
        );
        assert!(out.completed);
        assert_eq!(out.candidates, out.scored);
        assert!(out.best.iter().any(|s| s.count == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds dataset dimensionality")]
    fn incremental_validates_k() {
        let counter = fixture(10, 3, 2, 15);
        brute_force_search_incremental(&counter, 4, &BruteForceConfig::default());
    }

    #[test]
    fn parallel_matches_serial_scores() {
        let counter = fixture(400, 7, 4, 9);
        let fitness = SparsityFitness::new(&counter, 3);
        let config = BruteForceConfig {
            m: 15,
            ..BruteForceConfig::default()
        };
        let serial = brute_force_search(&fitness, &config);
        for threads in [1usize, 2, 3, 8] {
            let parallel = brute_force_search_parallel(&counter, 3, &config, threads);
            assert!(parallel.completed);
            assert_eq!(parallel.candidates, serial.candidates, "threads {threads}");
            let s: Vec<f64> = serial.best.iter().map(|x| x.sparsity).collect();
            let p: Vec<f64> = parallel.best.iter().map(|x| x.sparsity).collect();
            assert_eq!(s.len(), p.len());
            for (a, b) in s.iter().zip(&p) {
                assert!((a - b).abs() < 1e-12, "threads {threads}: {s:?} vs {p:?}");
            }
        }
    }

    #[test]
    fn parallel_is_deterministic() {
        let counter = fixture(300, 6, 3, 10);
        let config = BruteForceConfig {
            m: 8,
            ..BruteForceConfig::default()
        };
        let a = brute_force_search_parallel(&counter, 2, &config, 4);
        let b = brute_force_search_parallel(&counter, 2, &config, 4);
        assert_eq!(
            a.best
                .iter()
                .map(|s| s.projection.clone())
                .collect::<Vec<_>>(),
            b.best
                .iter()
                .map(|s| s.projection.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_k1_and_thread_overflow() {
        // k = 1 and more threads than dimensions.
        let counter = fixture(100, 3, 4, 11);
        let config = BruteForceConfig {
            m: 20,
            ..BruteForceConfig::default()
        };
        let out = brute_force_search_parallel(&counter, 1, &config, 16);
        assert!(out.completed);
        assert_eq!(out.candidates, 12); // 3 dims × 4 ranges
        assert_eq!(out.best.len(), 12);
    }

    #[test]
    fn parallel_budget_interrupts() {
        let counter = fixture(100, 10, 4, 12);
        let out = brute_force_search_parallel(
            &counter,
            3,
            &BruteForceConfig {
                m: 10,
                require_nonempty: true,
                max_candidates: Some(100),
            },
            4,
        );
        assert!(!out.completed);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let counter = fixture(10, 3, 2, 13);
        brute_force_search_parallel(&counter, 1, &BruteForceConfig::default(), 0);
    }

    #[test]
    fn incremental_parallel_is_thread_count_invariant() {
        // The core determinism contract: identical outcome at any thread
        // count, with and without a budget.
        let counter = fixture(300, 8, 4, 21);
        for budget in [None, Some(600)] {
            let config = BruteForceConfig {
                m: 10,
                require_nonempty: true,
                max_candidates: budget,
            };
            let baseline = brute_force_search_incremental_parallel(&counter, 3, &config, 1);
            for threads in [2usize, 4, 8] {
                let got = brute_force_search_incremental_parallel(&counter, 3, &config, threads);
                assert_eq!(got.candidates, baseline.candidates, "budget {budget:?}");
                assert_eq!(got.scored, baseline.scored);
                assert_eq!(got.completed, baseline.completed);
                assert_eq!(
                    got.best
                        .iter()
                        .map(|s| s.projection.clone())
                        .collect::<Vec<_>>(),
                    baseline
                        .best
                        .iter()
                        .map(|s| s.projection.clone())
                        .collect::<Vec<_>>(),
                    "budget {budget:?}, threads {threads}"
                );
                for (a, b) in got.best.iter().zip(&baseline.best) {
                    assert_eq!(a.sparsity.to_bits(), b.sparsity.to_bits());
                    assert_eq!(a.count, b.count);
                }
            }
        }
    }

    #[test]
    fn incremental_parallel_matches_serial_incremental() {
        // Unbudgeted, the pooled decomposition covers the same space and
        // retains the same best set as the single-walker incremental search.
        let counter = fixture(250, 6, 4, 22);
        let config = BruteForceConfig {
            m: 12,
            ..BruteForceConfig::default()
        };
        let serial = brute_force_search_incremental(&counter, 2, &config);
        let pooled = brute_force_search_incremental_parallel(&counter, 2, &config, 4);
        assert_eq!(pooled.candidates, serial.candidates);
        assert_eq!(pooled.best.len(), serial.best.len());
        for (a, b) in pooled.best.iter().zip(&serial.best) {
            assert!((a.sparsity - b.sparsity).abs() < 1e-12);
            assert_eq!(a.count, b.count);
        }
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial_u64(5, 2), 10);
        assert_eq!(binomial_u64(160, 4), 26_294_360);
        assert_eq!(binomial_u64(3, 5), 0);
        assert_eq!(binomial_u64(0, 0), 1);
        assert_eq!(binomial_u64(200, 100), u64::MAX); // saturates
    }
}
