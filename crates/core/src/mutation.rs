//! Mutation operators (paper Fig. 6).
//!
//! Two types, applied independently per string each generation:
//!
//! - **Type I** (probability `p1`): swap a star with a non-star — convert a
//!   random star position to a random range `1..=φ` and a random non-star
//!   position to `*`. The projection's dimensionality is preserved.
//! - **Type II** (probability `p2`): re-randomize the range of one non-star
//!   position.
//!
//! The paper uses `p1 = p2`; both are configurable for the ablation bench.

use crate::projection::{Projection, STAR};
use hdoutlier_rng::Rng;

/// Mutation configuration.
#[derive(Debug, Clone, Copy)]
pub struct MutationConfig {
    /// Probability of a Type-I (star/non-star swap) mutation.
    pub p1: f64,
    /// Probability of a Type-II (range re-randomization) mutation.
    pub p2: f64,
    /// Number of grid ranges (`φ`); new range values are uniform in `0..phi`.
    pub phi: u32,
}

impl MutationConfig {
    /// The paper's setting: equal Type-I and Type-II rates.
    pub fn symmetric(p: f64, phi: u32) -> Self {
        Self { p1: p, p2: p, phi }
    }
}

/// Applies Fig. 6 to one projection in place.
pub fn mutate<R: Rng>(projection: &mut Projection, config: &MutationConfig, rng: &mut R) {
    debug_assert!(config.phi > 0);
    // Type I: swap a star with a non-star (no-op if either set is empty).
    if rng.gen::<f64>() < config.p1 {
        let stars = projection.star_positions();
        let constrained = projection.constrained_positions();
        if !stars.is_empty() && !constrained.is_empty() {
            let to_fill = stars[rng.gen_range(0..stars.len())];
            let to_clear = constrained[rng.gen_range(0..constrained.len())];
            projection.set_gene(to_fill, rng.gen_range(0..config.phi) as u16);
            projection.set_gene(to_clear, STAR);
        }
    }
    // Type II: re-randomize one constrained position.
    if rng.gen::<f64>() < config.p2 {
        let constrained = projection.constrained_positions();
        if !constrained.is_empty() {
            let pos = constrained[rng.gen_range(0..constrained.len())];
            projection.set_gene(pos, rng.gen_range(0..config.phi) as u16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_rng::rngs::StdRng;
    use hdoutlier_rng::SeedableRng;

    #[test]
    fn preserves_dimensionality() {
        let mut rng = StdRng::seed_from_u64(31);
        let config = MutationConfig::symmetric(1.0, 5);
        for _ in 0..200 {
            let mut p = Projection::random(8, 3, 5, &mut rng);
            mutate(&mut p, &config, &mut rng);
            assert_eq!(p.k(), 3, "mutation changed dimensionality: {p}");
            for pos in p.constrained_positions() {
                assert!(p.gene(pos).unwrap() < 5);
            }
        }
    }

    #[test]
    fn zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(32);
        let config = MutationConfig::symmetric(0.0, 5);
        let p0 = Projection::random(8, 3, 5, &mut rng);
        let mut p = p0.clone();
        for _ in 0..50 {
            mutate(&mut p, &config, &mut rng);
        }
        assert_eq!(p, p0);
    }

    #[test]
    fn type1_moves_constrained_positions() {
        // With only Type I enabled, the set of constrained positions must
        // eventually change, while k stays fixed.
        let mut rng = StdRng::seed_from_u64(33);
        let config = MutationConfig {
            p1: 1.0,
            p2: 0.0,
            phi: 4,
        };
        let p0 = Projection::random(10, 2, 4, &mut rng);
        let mut p = p0.clone();
        let mut moved = false;
        for _ in 0..20 {
            mutate(&mut p, &config, &mut rng);
            assert_eq!(p.k(), 2);
            if p.constrained_positions() != p0.constrained_positions() {
                moved = true;
            }
        }
        assert!(moved, "Type I never moved a position in 20 tries");
    }

    #[test]
    fn type2_changes_values_not_positions() {
        let mut rng = StdRng::seed_from_u64(34);
        let config = MutationConfig {
            p1: 0.0,
            p2: 1.0,
            phi: 9,
        };
        let p0 = Projection::random(10, 3, 9, &mut rng);
        let mut p = p0.clone();
        let mut changed = false;
        for _ in 0..30 {
            mutate(&mut p, &config, &mut rng);
            assert_eq!(
                p.constrained_positions(),
                p0.constrained_positions(),
                "Type II moved a position"
            );
            if p != p0 {
                changed = true;
            }
        }
        assert!(changed, "Type II never changed a value");
    }

    #[test]
    fn degenerate_projections_survive() {
        let mut rng = StdRng::seed_from_u64(35);
        let config = MutationConfig::symmetric(1.0, 3);
        // All-star: no constrained position to swap or re-randomize.
        let mut p = Projection::all_star(4);
        mutate(&mut p, &config, &mut rng);
        assert_eq!(p, Projection::all_star(4));
        // Fully constrained: no star to swap into.
        let mut p = Projection::from_genes(vec![0, 1, 2, 0]);
        mutate(&mut p, &config, &mut rng);
        assert_eq!(p.k(), 4);
    }
}
