//! Post-processing (paper §2.3) and interpretable reporting.
//!
//! "In the postprocessing phase, we find all the sets of data points which
//! contain the abnormal projections reported by the algorithm. These points
//! are the outliers." Beyond the row set 𝒪, the report keeps the projections
//! themselves, because interpretability — *why* a point is an outlier — is
//! one of the paper's desiderata (§1.1).

use crate::fitness::SparsityFitness;
use crate::projection::Projection;
use hdoutlier_data::Discretized;
use hdoutlier_index::CubeCounter;
use hdoutlier_stats::significance_of;
use std::collections::BTreeSet;

/// One projection with its Eq. 1 score and occupancy.
#[derive(Debug, Clone)]
pub struct ScoredProjection {
    /// The projection string.
    pub projection: Projection,
    /// Sparsity coefficient `S(D)` (negative = sparse).
    pub sparsity: f64,
    /// Number of records covering the projection.
    pub count: usize,
}

impl ScoredProjection {
    /// The probabilistic level of significance of this projection under the
    /// normal-approximation reading of §1.3 (`Φ(S)`; smaller = stronger).
    pub fn significance(&self) -> f64 {
        significance_of(self.sparsity)
    }

    /// Exact significance under the independence null:
    /// `P[Binomial(N, f^k) <= count]` — reliable where §1.3's normal-table
    /// reading is not (deep tails, starved cubes).
    pub fn exact_significance(&self, params: hdoutlier_stats::SparsityParams) -> f64 {
        params.exact_significance(self.count as u64)
    }
}

/// The detector's full output.
#[derive(Debug, Clone)]
pub struct OutlierReport {
    /// Best projections, most negative sparsity first.
    pub projections: Vec<ScoredProjection>,
    /// Rows covered per projection (aligned with `projections`).
    pub rows_by_projection: Vec<Vec<usize>>,
    /// The union 𝒪 of all covered rows, ascending.
    pub outlier_rows: Vec<usize>,
    /// Bookkeeping from the search.
    pub stats: SearchStats,
}

/// Search bookkeeping carried into the report.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Complete cubes accounted for (brute force) or fitness evaluations
    /// (evolutionary).
    pub work: u64,
    /// GA generations (0 for brute force).
    pub generations: usize,
    /// Whether the search ran to its natural end (full coverage or De Jong
    /// convergence) rather than hitting a cap.
    pub completed: bool,
    /// Wall-clock search time.
    pub elapsed: std::time::Duration,
}

impl OutlierReport {
    /// Builds the report from scored projections (the post-processing phase).
    pub fn from_scored<C: CubeCounter>(
        scored: Vec<ScoredProjection>,
        fitness: &SparsityFitness<'_, C>,
        stats: SearchStats,
    ) -> Self {
        let rows_by_projection: Vec<Vec<usize>> =
            scored.iter().map(|s| fitness.rows(&s.projection)).collect();
        let union: BTreeSet<usize> = rows_by_projection.iter().flatten().copied().collect();
        Self {
            projections: scored,
            rows_by_projection,
            outlier_rows: union.into_iter().collect(),
            stats,
        }
    }

    /// Keeps only projections at or below a sparsity threshold (the §3.1
    /// arrhythmia experiment uses "all the sparse projections … which
    /// correspond to a sparsity coefficient of −3 or less"), recomputing 𝒪.
    pub fn filtered_by_sparsity(&self, threshold: f64) -> OutlierReport {
        let keep: Vec<usize> = (0..self.projections.len())
            .filter(|&i| self.projections[i].sparsity <= threshold)
            .collect();
        let projections = keep.iter().map(|&i| self.projections[i].clone()).collect();
        let rows_by_projection: Vec<Vec<usize>> = keep
            .iter()
            .map(|&i| self.rows_by_projection[i].clone())
            .collect();
        let union: BTreeSet<usize> = rows_by_projection.iter().flatten().copied().collect();
        OutlierReport {
            projections,
            rows_by_projection,
            outlier_rows: union.into_iter().collect(),
            stats: self.stats.clone(),
        }
    }

    /// Mean sparsity of the reported projections — Table 1's "quality"
    /// column ("average sparsity coefficients of the best 20 (non-empty)
    /// projections"). `None` when empty.
    pub fn mean_sparsity(&self) -> Option<f64> {
        if self.projections.is_empty() {
            return None;
        }
        Some(
            self.projections.iter().map(|s| s.sparsity).sum::<f64>()
                / self.projections.len() as f64,
        )
    }

    /// Per-point outlier scores: each outlier row paired with the most
    /// negative sparsity coefficient among the reported projections covering
    /// it, sorted most negative first (row index as the tiebreak).
    ///
    /// This turns the paper's set-valued answer 𝒪 into a ranking, which is
    /// what downstream consumers (alert queues, top-n dashboards) usually
    /// want, and makes the detector comparable point-for-point with the
    /// score-based baselines.
    pub fn ranked_outliers(&self) -> Vec<(usize, f64)> {
        let mut best: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (s, rows) in self.projections.iter().zip(&self.rows_by_projection) {
            for &row in rows {
                best.entry(row)
                    .and_modify(|v| *v = v.min(s.sparsity))
                    .or_insert(s.sparsity);
            }
        }
        let mut ranked: Vec<(usize, f64)> = best.into_iter().collect();
        ranked.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite sparsity")
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    /// Human-readable explanation of why `projection_idx` flags its rows,
    /// with attribute names and value intervals from the grid — e.g.
    /// `CRIM in [1.13, 9.97] AND DIS in [1.13, 1.96] (S = -3.42, 1 record)`.
    pub fn explain(&self, projection_idx: usize, disc: &Discretized) -> String {
        let s = &self.projections[projection_idx];
        let mut parts = Vec::new();
        if let Some(cube) = s.projection.to_cube() {
            for (dim, range) in cube.pairs() {
                let g = disc.grid_range(dim as usize, range);
                parts.push(format!(
                    "{} in [{:.4}, {:.4}]",
                    disc.name(dim as usize),
                    g.lo,
                    g.hi
                ));
            }
        }
        format!(
            "{} (S = {:.2}, significance {:.2e}, {} record{})",
            parts.join(" AND "),
            s.sparsity,
            s.significance(),
            s.count,
            if s.count == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::discretize::DiscretizeStrategy;
    use hdoutlier_data::generators::uniform;
    use hdoutlier_index::BitmapCounter;

    fn fixture() -> (Discretized, BitmapCounter) {
        let mut ds = uniform(200, 4, 51);
        ds.set_names(vec!["alpha", "beta", "gamma", "delta"])
            .unwrap();
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = BitmapCounter::new(&disc);
        (disc, counter)
    }

    fn scored(fitness: &SparsityFitness<'_, BitmapCounter>) -> Vec<ScoredProjection> {
        use crate::projection::STAR;
        [[0u16, 1], [2, 3]]
            .iter()
            .map(|&[r0, r1]| {
                let projection = Projection::from_genes(vec![r0, STAR, r1, STAR]);
                let sparsity = fitness.evaluate(&projection);
                let count = fitness.count(&projection).unwrap();
                ScoredProjection {
                    projection,
                    sparsity,
                    count,
                }
            })
            .collect()
    }

    #[test]
    fn union_of_rows_is_sorted_and_deduplicated() {
        let (_, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let report = OutlierReport::from_scored(scored(&fitness), &fitness, SearchStats::default());
        assert_eq!(report.projections.len(), 2);
        assert_eq!(report.rows_by_projection.len(), 2);
        let total: usize = report.rows_by_projection.iter().map(Vec::len).sum();
        assert!(report.outlier_rows.len() <= total);
        for w in report.outlier_rows.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Every per-projection row is in the union.
        for rows in &report.rows_by_projection {
            for r in rows {
                assert!(report.outlier_rows.binary_search(r).is_ok());
            }
        }
    }

    #[test]
    fn filter_by_sparsity() {
        let (_, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let report = OutlierReport::from_scored(scored(&fitness), &fitness, SearchStats::default());
        // A threshold of −1000 removes everything.
        let none = report.filtered_by_sparsity(-1000.0);
        assert!(none.projections.is_empty());
        assert!(none.outlier_rows.is_empty());
        assert!(none.mean_sparsity().is_none());
        // A threshold of +1000 keeps everything.
        let all = report.filtered_by_sparsity(1000.0);
        assert_eq!(all.projections.len(), 2);
        assert_eq!(all.outlier_rows, report.outlier_rows);
    }

    #[test]
    fn mean_sparsity_is_the_arithmetic_mean() {
        let (_, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let scored = scored(&fitness);
        let want = (scored[0].sparsity + scored[1].sparsity) / 2.0;
        let report = OutlierReport::from_scored(scored, &fitness, SearchStats::default());
        assert!((report.mean_sparsity().unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn explanation_uses_names_and_intervals() {
        let (disc, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let report = OutlierReport::from_scored(scored(&fitness), &fitness, SearchStats::default());
        let text = report.explain(0, &disc);
        assert!(text.contains("alpha in ["), "{text}");
        assert!(text.contains("gamma in ["), "{text}");
        assert!(text.contains(" AND "), "{text}");
        assert!(text.contains("S = "), "{text}");
    }

    #[test]
    fn ranked_outliers_orders_by_best_covering_sparsity() {
        let (_, counter) = fixture();
        let fitness = SparsityFitness::new(&counter, 2);
        let report = OutlierReport::from_scored(scored(&fitness), &fitness, SearchStats::default());
        let ranked = report.ranked_outliers();
        // One entry per outlier row, all rows accounted for.
        assert_eq!(ranked.len(), report.outlier_rows.len());
        let rows: Vec<usize> = ranked.iter().map(|&(r, _)| r).collect();
        let mut sorted_rows = rows.clone();
        sorted_rows.sort_unstable();
        assert_eq!(sorted_rows, report.outlier_rows);
        // Scores descend in outlyingness (ascend in S) and each equals the
        // minimum sparsity over covering projections.
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for &(row, score) in &ranked {
            let want = report
                .projections
                .iter()
                .zip(&report.rows_by_projection)
                .filter(|(_, rows)| rows.contains(&row))
                .map(|(s, _)| s.sparsity)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(score, want);
        }
    }

    #[test]
    fn significance_is_consistent_with_stats_crate() {
        let s = ScoredProjection {
            projection: Projection::all_star(2),
            sparsity: -3.0,
            count: 0,
        };
        assert!((s.significance() - hdoutlier_stats::significance_of(-3.0)).abs() < 1e-15);
    }

    #[test]
    fn exact_significance_matches_binomial_tail() {
        let params = hdoutlier_stats::SparsityParams::new(1000, 5, 2).unwrap();
        let s = ScoredProjection {
            projection: Projection::all_star(2),
            sparsity: params.sparsity(3),
            count: 3,
        };
        let exact = s.exact_significance(params);
        assert_eq!(exact, params.occupancy_law().cdf(3));
        // E = 40 and a count of 3: a genuinely extreme cube — both the
        // exact and the normal reading put it deep in the tail.
        assert!(exact > 0.0 && exact < 1e-8);
        assert!(s.significance() > 0.0 && s.significance() < 1e-6);
    }
}
