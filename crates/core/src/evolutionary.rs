//! The evolutionary outlier search (paper Fig. 3).
//!
//! Adapts the projection-string problem onto the generic engine of
//! `hdoutlier-evolve`: rank-roulette selection (Fig. 4), optimized or
//! two-point crossover (Fig. 5), Type I/II mutation (Fig. 6), De Jong
//! convergence, and a deduplicated best-m set maintained across the whole
//! run ("the m best projection solutions were kept track of at each stage").

use crate::crossover::{recombine, CrossoverKind};
use crate::fitness::SparsityFitness;
use crate::mutation::{mutate, MutationConfig};
use crate::projection::Projection;
use crate::report::ScoredProjection;
use hdoutlier_evolve::{Engine, EngineConfig, EvolutionaryProblem, SelectionScheme};
use hdoutlier_index::CubeCounter;
use hdoutlier_rng::rngs::StdRng;

/// Configuration of one evolutionary run.
#[derive(Debug, Clone)]
pub struct EvolutionaryConfig {
    /// Number of best projections to report (`m`).
    pub m: usize,
    /// Population size (`p`).
    pub population: usize,
    /// Which crossover mechanism to use (Table 1 compares both).
    pub crossover: CrossoverKind,
    /// Type-I mutation probability (`p1`). The paper sets `p1 = p2`.
    pub p1: f64,
    /// Type-II mutation probability (`p2`).
    pub p2: f64,
    /// Selection scheme; the paper's is rank roulette.
    pub selection: SelectionScheme,
    /// De Jong convergence threshold (0.95 in the paper).
    pub convergence_threshold: f64,
    /// Safety cap on generations.
    pub max_generations: usize,
    /// Only report projections covering at least one record.
    pub require_nonempty: bool,
    /// Harvest the candidate cubes the optimized crossover evaluates
    /// internally into the best-set (default), not just population members.
    /// The paper's Fig. 3 tracks only population members; the internal
    /// candidates come for free (their counts are already computed) and
    /// measurably improve the best-m — `repro ablation` quantifies the gap.
    pub track_internal_candidates: bool,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for fitness evaluation (the engine's only parallel
    /// stage). The reported best-set is identical at any thread count.
    pub threads: usize,
}

impl Default for EvolutionaryConfig {
    fn default() -> Self {
        Self {
            m: 20,
            population: 100,
            crossover: CrossoverKind::Optimized,
            p1: 0.15,
            p2: 0.15,
            selection: SelectionScheme::RankRoulette,
            convergence_threshold: 0.95,
            max_generations: 500,
            require_nonempty: true,
            track_internal_candidates: true,
            seed: 0,
            threads: 1,
        }
    }
}

/// Result of one evolutionary run.
#[derive(Debug, Clone)]
pub struct EvolutionaryOutcome {
    /// The deduplicated best projections, most negative sparsity first.
    pub best: Vec<ScoredProjection>,
    /// Generations executed.
    pub generations: usize,
    /// Total fitness evaluations.
    pub evaluations: u64,
    /// Whether the run ended by De Jong convergence (vs. the generation cap).
    pub converged: bool,
}

struct ProjectionProblem<'a, C: CubeCounter> {
    fitness: &'a SparsityFitness<'a, C>,
    d: usize,
    k: usize,
    phi: u32,
    crossover: CrossoverKind,
    mutation: MutationConfig,
}

impl<C: CubeCounter> EvolutionaryProblem for ProjectionProblem<'_, C> {
    type Genome = Projection;

    fn random_genome(&self, rng: &mut StdRng) -> Projection {
        Projection::random(self.d, self.k, self.phi, rng)
    }

    fn fitness(&self, genome: &Projection) -> f64 {
        // Feasible genomes are recorded by the fitness's tracker; infeasible
        // ones score +inf and are never candidates.
        self.fitness.evaluate(genome)
    }

    fn crossover(
        &self,
        a: &Projection,
        b: &Projection,
        rng: &mut StdRng,
    ) -> (Projection, Projection) {
        recombine(self.crossover, a, b, self.fitness, rng)
    }

    fn mutate(&self, genome: &mut Projection, rng: &mut StdRng) {
        mutate(genome, &self.mutation, rng);
    }

    fn gene_view(&self, genome: &Projection) -> Vec<u32> {
        // De Jong convergence must be checked on the k constrained slots,
        // not the raw d-position string: with k ≪ d every raw position is
        // ≥ 95 % star in any population, so the raw view "converges" on the
        // seed generation. Encoding slot i as its i-th (dim, range) pair
        // makes convergence mean what it should: the population agrees on
        // the projection itself.
        genome
            .constrained_positions()
            .into_iter()
            .map(|pos| pos as u32 * (self.phi + 1) + genome.gene(pos).expect("constrained") as u32)
            .collect()
    }
}

/// Runs the evolutionary outlier search of Fig. 3.
///
/// # Panics
/// Panics if the population size or `m` is zero.
pub fn evolutionary_search<C: CubeCounter + Sync>(
    fitness: &SparsityFitness<'_, C>,
    config: &EvolutionaryConfig,
) -> EvolutionaryOutcome {
    assert!(config.m > 0, "m must be positive");
    if config.track_internal_candidates {
        fitness.enable_tracking();
    }
    let problem = ProjectionProblem {
        fitness,
        d: fitness.counter().n_dims(),
        k: fitness.k(),
        phi: fitness.counter().phi(),
        crossover: config.crossover,
        mutation: MutationConfig {
            p1: config.p1,
            p2: config.p2,
            phi: fitness.counter().phi(),
        },
    };
    let engine = Engine::new(
        &problem,
        EngineConfig {
            population: config.population,
            selection: config.selection,
            convergence_threshold: config.convergence_threshold,
            max_generations: config.max_generations,
            stall_generations: None,
            elitism: 0,
            seed: config.seed,
            threads: config.threads.max(1),
        },
    );
    // Without internal tracking, collect population-level evaluations only
    // (the literal Fig. 3 BestSet semantics) through the observer.
    let population_seen: std::cell::RefCell<std::collections::HashMap<Projection, f64>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
    let stats = engine.run(|genome, f| {
        if !config.track_internal_candidates && f.is_finite() {
            population_seen
                .borrow_mut()
                .entry(genome.clone())
                .or_insert(f);
        }
    });

    // Assemble the deduplicated best-m from every full-k cube the fitness
    // scored during the run (population members and, by default, the
    // candidates the optimized crossover examined internally).
    let d = fitness.counter().n_dims();
    let tracked: std::collections::HashMap<hdoutlier_index::Cube, f64> =
        if config.track_internal_candidates {
            fitness.take_tracked()
        } else {
            population_seen
                .into_inner()
                .into_iter()
                .filter_map(|(p, f)| p.to_cube().map(|c| (c, f)))
                .collect()
        };
    let mut scored: Vec<ScoredProjection> = tracked
        .into_iter()
        .map(|(cube, sparsity)| {
            let count = fitness.counter().count(&cube);
            ScoredProjection {
                projection: Projection::from_cube(&cube, d),
                sparsity,
                count,
            }
        })
        .filter(|s| !config.require_nonempty || s.count > 0)
        .collect();
    // Total order: sparsity first, genes as the tiebreak — `seen` is a
    // HashMap, and without the tiebreak equal-sparsity projections would be
    // reported in nondeterministic order.
    scored.sort_by(|a, b| {
        a.sparsity
            .partial_cmp(&b.sparsity)
            .expect("finite sparsity only")
            .then_with(|| a.projection.genes().cmp(b.projection.genes()))
    });
    scored.truncate(config.m);

    EvolutionaryOutcome {
        best: scored,
        generations: stats.generations_run,
        evaluations: stats.evaluations,
        converged: stats.converged,
    }
}

/// Configuration for [`multi_restart_search`].
#[derive(Debug, Clone)]
pub struct MultiRestartConfig {
    /// Per-restart GA settings; restart `i` runs with `base.seed + i`.
    pub base: EvolutionaryConfig,
    /// Number of restarts.
    pub restarts: u64,
    /// Ban each restart's reported cubes before the next restart (tabu),
    /// pushing the population toward regions not yet harvested. With this
    /// off the function is a plain seed sweep.
    pub ban_found: bool,
    /// Keep only projections at or below this sparsity in the final union
    /// (`None` keeps everything the restarts reported).
    pub threshold: Option<f64>,
}

/// Union of one run per restart.
#[derive(Debug, Clone)]
pub struct MultiRestartOutcome {
    /// Distinct projections found, most negative sparsity first.
    pub found: Vec<ScoredProjection>,
    /// Total fitness evaluations across restarts.
    pub evaluations: u64,
    /// Restarts executed.
    pub restarts: u64,
}

/// Restarted evolutionary search with an optional tabu on already-found
/// cubes — an engineering extension of the paper's method for workloads
/// (like the §3.1 arrhythmia experiment) that ask for *all* sparse
/// projections rather than the best m. One converged GA run harvests one
/// region of the projection space; banning its finds forces the next
/// restart to look elsewhere.
///
/// Bans are cleared before returning so the fitness can be reused.
pub fn multi_restart_search<C: CubeCounter + Sync>(
    fitness: &SparsityFitness<'_, C>,
    config: &MultiRestartConfig,
) -> MultiRestartOutcome {
    let mut union: std::collections::HashMap<Projection, ScoredProjection> =
        std::collections::HashMap::new();
    let mut evaluations = 0u64;
    for restart in 0..config.restarts {
        let out = evolutionary_search(
            fitness,
            &EvolutionaryConfig {
                seed: config.base.seed.wrapping_add(restart),
                ..config.base.clone()
            },
        );
        evaluations += out.evaluations;
        for s in out.best {
            if config.threshold.is_none_or(|t| s.sparsity <= t) {
                if config.ban_found {
                    if let Some(cube) = s.projection.to_cube() {
                        fitness.ban(cube);
                    }
                }
                union.entry(s.projection.clone()).or_insert(s);
            }
        }
    }
    fitness.clear_bans();
    let mut found: Vec<ScoredProjection> = union.into_values().collect();
    found.sort_by(|a, b| {
        a.sparsity
            .partial_cmp(&b.sparsity)
            .expect("finite sparsity")
            .then_with(|| a.projection.genes().cmp(b.projection.genes()))
    });
    MultiRestartOutcome {
        found,
        evaluations,
        restarts: config.restarts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{brute_force_search, BruteForceConfig};
    use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
    use hdoutlier_index::BitmapCounter;

    fn planted_counter(
        n_dims: usize,
        seed: u64,
    ) -> (BitmapCounter, hdoutlier_data::generators::PlantedOutliers) {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 1500,
            n_dims,
            n_outliers: 5,
            seed,
            ..PlantedConfig::default()
        });
        let disc = Discretized::new(&planted.dataset, 5, DiscretizeStrategy::EquiDepth).unwrap();
        (BitmapCounter::new(&disc), planted)
    }

    #[test]
    fn finds_planted_outliers() {
        let (counter, planted) = planted_counter(10, 41);
        let fitness = SparsityFitness::new(&counter, 2);
        let out = evolutionary_search(
            &fitness,
            &EvolutionaryConfig {
                m: 10,
                seed: 7,
                ..EvolutionaryConfig::default()
            },
        );
        assert!(!out.best.is_empty());
        // The best set as a whole must surface planted outliers (the exact
        // top-1 can be any singleton cube — they all tie on Eq. 1).
        let covered: Vec<usize> = out
            .best
            .iter()
            .flat_map(|s| fitness.rows(&s.projection))
            .collect();
        assert!(
            covered.iter().any(|&r| planted.is_outlier(r)),
            "best projections cover {covered:?}, none planted"
        );
        assert!(out.best[0].sparsity < -3.0);
    }

    #[test]
    fn best_set_is_deduplicated_and_sorted() {
        let (counter, _) = planted_counter(8, 42);
        let fitness = SparsityFitness::new(&counter, 2);
        let out = evolutionary_search(
            &fitness,
            &EvolutionaryConfig {
                m: 15,
                seed: 1,
                ..EvolutionaryConfig::default()
            },
        );
        let mut seen = std::collections::HashSet::new();
        for s in &out.best {
            assert!(
                seen.insert(s.projection.clone()),
                "duplicate {}",
                s.projection
            );
            assert!(s.count > 0);
            assert!(s.projection.is_feasible(2));
        }
        for w in out.best.windows(2) {
            assert!(w[0].sparsity <= w[1].sparsity);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (counter, _) = planted_counter(8, 43);
        let fitness = SparsityFitness::new(&counter, 2);
        let config = EvolutionaryConfig {
            m: 5,
            seed: 9,
            max_generations: 30,
            ..EvolutionaryConfig::default()
        };
        let a = evolutionary_search(&fitness, &config);
        let b = evolutionary_search(&fitness, &config);
        assert_eq!(a.generations, b.generations);
        assert_eq!(
            a.best
                .iter()
                .map(|s| s.projection.clone())
                .collect::<Vec<_>>(),
            b.best
                .iter()
                .map(|s| s.projection.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn optimized_crossover_matches_brute_force_quality() {
        // The paper's headline claim (Table 1): Gen° reaches (close to) the
        // brute-force optimum.
        let (counter, _) = planted_counter(10, 44);
        let fitness = SparsityFitness::new(&counter, 2);
        let brute = brute_force_search(
            &fitness,
            &BruteForceConfig {
                m: 5,
                ..BruteForceConfig::default()
            },
        );
        let evo = evolutionary_search(
            &fitness,
            &EvolutionaryConfig {
                m: 5,
                population: 120,
                seed: 3,
                ..EvolutionaryConfig::default()
            },
        );
        let brute_best = brute.best[0].sparsity;
        let evo_best = evo.best[0].sparsity;
        assert!(
            evo_best <= brute_best * 0.95 + 1e-9,
            "evolutionary {evo_best} vs brute {brute_best}"
        );
    }

    #[test]
    fn optimized_beats_two_point_on_average_quality() {
        // The other Table-1 claim: Gen° ≥ Gen in solution quality. The gap
        // only shows in the paper's own hard regime — very high `d` with
        // E = N/φ^k large enough that near-empty cubes are rare and must be
        // *found*, not stumbled upon (musk: 476 × 160, φ = 3, k* = 3).
        // Averaged over seeds to keep the test robust.
        let sim = hdoutlier_data::generators::uci_like::musk(3);
        let disc = Discretized::new(&sim.dataset, 3, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = hdoutlier_index::CachedCounter::new(BitmapCounter::new(&disc));
        let fitness = SparsityFitness::new(&counter, 3);
        let mean_quality = |kind: CrossoverKind| -> f64 {
            let mut total = 0.0;
            let mut n = 0usize;
            for seed in 0..3 {
                let out = evolutionary_search(
                    &fitness,
                    &EvolutionaryConfig {
                        m: 20,
                        crossover: kind,
                        seed,
                        p1: 0.1,
                        p2: 0.1,
                        max_generations: 100,
                        ..EvolutionaryConfig::default()
                    },
                );
                total += out.best.iter().map(|s| s.sparsity).sum::<f64>();
                n += out.best.len();
            }
            total / n as f64
        };
        let optimized = mean_quality(CrossoverKind::Optimized);
        let two_point = mean_quality(CrossoverKind::TwoPoint);
        assert!(
            optimized < two_point - 0.3,
            "optimized {optimized} vs two-point {two_point}"
        );
    }

    #[test]
    fn respects_m_and_nonempty() {
        let (counter, _) = planted_counter(8, 46);
        let fitness = SparsityFitness::new(&counter, 3);
        let out = evolutionary_search(
            &fitness,
            &EvolutionaryConfig {
                m: 3,
                seed: 2,
                ..EvolutionaryConfig::default()
            },
        );
        assert!(out.best.len() <= 3);
        assert!(out.best.iter().all(|s| s.count > 0));
        assert!(out.evaluations > 0);
    }

    #[test]
    fn multi_restart_discovers_at_least_as_much_as_its_best_restart() {
        let (counter, _) = planted_counter(14, 48);
        let fitness = SparsityFitness::new(&counter, 2);
        let base = EvolutionaryConfig {
            m: 30,
            max_generations: 40,
            seed: 100,
            ..EvolutionaryConfig::default()
        };
        let single = evolutionary_search(&fitness, &base);
        let multi = multi_restart_search(
            &fitness,
            &MultiRestartConfig {
                base: base.clone(),
                restarts: 4,
                ban_found: true,
                threshold: None,
            },
        );
        assert!(multi.found.len() >= single.best.len().min(30));
        assert!(multi.evaluations >= single.evaluations);
        assert_eq!(multi.restarts, 4);
        // Distinct projections only.
        let mut seen = std::collections::HashSet::new();
        for s in &multi.found {
            assert!(seen.insert(s.projection.clone()));
        }
        // Sorted most-negative first.
        for w in multi.found.windows(2) {
            assert!(w[0].sparsity <= w[1].sparsity);
        }
        // Bans were cleared on exit.
        assert_eq!(fitness.banned_len(), 0);
    }

    #[test]
    fn multi_restart_threshold_filters() {
        let (counter, _) = planted_counter(10, 49);
        let fitness = SparsityFitness::new(&counter, 2);
        let multi = multi_restart_search(
            &fitness,
            &MultiRestartConfig {
                base: EvolutionaryConfig {
                    m: 50,
                    max_generations: 30,
                    ..EvolutionaryConfig::default()
                },
                restarts: 2,
                ban_found: false,
                threshold: Some(-3.0),
            },
        );
        assert!(multi.found.iter().all(|s| s.sparsity <= -3.0));
    }

    #[test]
    fn banned_cubes_score_infinity_at_genome_level_only() {
        let (counter, _) = planted_counter(8, 50);
        let fitness = SparsityFitness::new(&counter, 2);
        let p = Projection::random(8, 2, 5, &mut hdoutlier_evolve::engine::seeded_rng(1));
        let cube = p.to_cube().unwrap();
        let honest = fitness.evaluate(&p);
        assert!(honest.is_finite());
        fitness.ban(cube.clone());
        assert_eq!(fitness.evaluate(&p), f64::INFINITY);
        // Cube-level scoring is unaffected (crossover's view).
        assert_eq!(fitness.sparsity_of_cube(&cube), honest);
        fitness.clear_bans();
        assert_eq!(fitness.evaluate(&p), honest);
    }

    #[test]
    #[should_panic(expected = "m must be positive")]
    fn zero_m_panics() {
        let (counter, _) = planted_counter(8, 47);
        let fitness = SparsityFitness::new(&counter, 2);
        evolutionary_search(
            &fitness,
            &EvolutionaryConfig {
                m: 0,
                ..EvolutionaryConfig::default()
            },
        );
    }
}
