//! Recombination operators (paper §2.2, Fig. 5).
//!
//! Two mechanisms, exactly as evaluated in Table 1:
//!
//! - **Unbiased two-point crossover** (the baseline, superscript-free "Gen"
//!   column): pick a cut position and exchange suffixes. Children often
//!   carry the wrong number of constrained positions — the paper's example
//!   `3*2*1 × 1*33*` cut after position 4 yields a 4-dimensional and a
//!   2-dimensional child — and such infeasible strings are washed out by
//!   their `+∞` fitness.
//! - **Optimized crossover** ("Gen°"): classifies positions into Type I
//!   (both parents `*`), Type II (neither `*`, `k'` of them) and Type III
//!   (exactly one `*`, `2(k−k')` of them), exhaustively searches the `2^k'`
//!   Type-II recombinations for the most negative partial sparsity, then
//!   greedily extends through Type-III positions until `k` positions are
//!   set. The second child is **complementary**: every position is derived
//!   from the opposite parent of the one the first child used, so the pair
//!   of children partitions the parents' genetic material and both are
//!   k-dimensional.

use crate::fitness::SparsityFitness;
use crate::projection::{Projection, STAR};
use hdoutlier_index::{Cube, CubeCounter};
use hdoutlier_rng::Rng;

/// Which recombination the evolutionary search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossoverKind {
    /// Suffix exchange at a random cut (may create infeasible children).
    TwoPoint,
    /// The paper's fitness-guided recombination (Fig. 5).
    Optimized,
}

/// Two-point crossover at specific cut points: exchanges the segment of
/// positions `lo..hi` (0-based half-open). Exposed so the paper's worked
/// examples are testable: `3*2*1 × 1*33*` with `(lo, hi) = (3, 5)` yields
/// `3*23*` / `1*3*1`, and with `(3, 4)` yields `3*231` / `1*3**`.
pub fn two_point_at(
    a: &Projection,
    b: &Projection,
    lo: usize,
    hi: usize,
) -> (Projection, Projection) {
    assert_eq!(a.d(), b.d(), "dimensionality mismatch");
    assert!(lo < hi && hi <= a.d(), "cuts must satisfy lo < hi <= d");
    let mut c = a.genes().to_vec();
    let mut d = b.genes().to_vec();
    c[lo..hi].copy_from_slice(&b.genes()[lo..hi]);
    d[lo..hi].copy_from_slice(&a.genes()[lo..hi]);
    (Projection::from_genes(c), Projection::from_genes(d))
}

/// Two-point crossover at a uniformly random segment.
pub fn two_point<R: Rng>(a: &Projection, b: &Projection, rng: &mut R) -> (Projection, Projection) {
    if a.d() < 2 {
        return (a.clone(), b.clone());
    }
    let lo = rng.gen_range(0..a.d());
    let hi = rng.gen_range(lo + 1..=a.d());
    two_point_at(a, b, lo, hi)
}

/// Cap on the exhaustive Type-II enumeration: beyond `2^MAX_EXHAUSTIVE_BITS`
/// assignments the enumeration switches to a deterministic prefix of the
/// mask space. `k'` is "typically quite small" (§2.2) so this rarely binds.
const MAX_EXHAUSTIVE_BITS: usize = 16;

/// The optimized crossover of Fig. 5 (`Recombine`).
///
/// Returns `(s, s')` where `s` is the fitness-optimized recombination and
/// `s'` its complement. For feasible k-dimensional parents both children are
/// k-dimensional.
pub fn optimized<C: CubeCounter, R: Rng>(
    s1: &Projection,
    s2: &Projection,
    fitness: &SparsityFitness<'_, C>,
    rng: &mut R,
) -> (Projection, Projection) {
    assert_eq!(s1.d(), s2.d(), "dimensionality mismatch");
    let d = s1.d();
    let k = fitness.k();

    // Classify positions.
    let mut type2: Vec<usize> = Vec::new(); // R: neither star
    let mut type3: Vec<usize> = Vec::new(); // exactly one star
    for pos in 0..d {
        match (s1.gene(pos), s2.gene(pos)) {
            (Some(_), Some(_)) => type2.push(pos),
            (None, None) => {}
            _ => type3.push(pos),
        }
    }

    // Which parent (1 or 2) child s derives each position from; positions
    // not in the map are derived "neutrally" (both parents star).
    let mut derived_from_s1: Vec<Option<bool>> = vec![None; d];

    // --- Phase 1: exhaustive search over Type-II assignments. ---
    let kp = type2.len();
    let mut child = Projection::all_star(d);
    if kp > 0 {
        let total_masks: u64 = 1u64 << kp.min(MAX_EXHAUSTIVE_BITS);
        let mut best_mask = 0u64;
        let mut best_score = f64::INFINITY;
        for mask in 0..total_masks {
            let pairs = type2.iter().enumerate().map(|(bit, &pos)| {
                let from_s1 = (mask >> bit) & 1 == 0;
                let gene = if from_s1 {
                    s1.gene(pos).expect("type II")
                } else {
                    s2.gene(pos).expect("type II")
                };
                (pos as u32, gene)
            });
            let cube = Cube::new(pairs).expect("distinct positions");
            let score = fitness.sparsity_of_cube(&cube);
            if score < best_score {
                best_score = score;
                best_mask = mask;
            }
        }
        for (bit, &pos) in type2.iter().enumerate() {
            let from_s1 = (best_mask >> bit) & 1 == 0;
            let gene = if from_s1 {
                s1.gene(pos).expect("type II")
            } else {
                s2.gene(pos).expect("type II")
            };
            child.set_gene(pos, gene);
            derived_from_s1[pos] = Some(from_s1);
        }
    }

    // --- Phase 2: greedy extension through Type-III positions. ---
    // Candidates: (position, gene, comes-from-s1). Each Type-III position
    // contributes exactly one candidate (its non-star parent's value).
    let mut candidates: Vec<(usize, u16, bool)> = type3
        .iter()
        .map(|&pos| match (s1.gene(pos), s2.gene(pos)) {
            (Some(g), None) => (pos, g, true),
            (None, Some(g)) => (pos, g, false),
            _ => unreachable!("type III has exactly one star"),
        })
        .collect();
    while child.k() < k && !candidates.is_empty() {
        let mut best_idx = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, &(pos, gene, _)) in candidates.iter().enumerate() {
            let pairs = child
                .constrained_positions()
                .into_iter()
                .map(|p| (p as u32, child.gene(p).expect("constrained")))
                .chain(std::iter::once((pos as u32, gene)));
            let cube = Cube::new(pairs).expect("distinct positions");
            let score = fitness.sparsity_of_cube(&cube);
            if score < best_score {
                best_score = score;
                best_idx = i;
            }
        }
        let (pos, gene, from_s1) = candidates.swap_remove(best_idx);
        child.set_gene(pos, gene);
        derived_from_s1[pos] = Some(from_s1);
    }
    // Un-taken Type-III candidates: s derived those positions from the
    // *star* parent (it kept them as don't-cares).
    for &(pos, _, from_s1) in &candidates {
        derived_from_s1[pos] = Some(!from_s1);
    }

    // --- Complementary child: derive every position from the other parent. ---
    let mut complement = Projection::all_star(d);
    #[allow(clippy::needless_range_loop)] // three parallel structures; indices are clearest
    for pos in 0..d {
        if let Some(from_s1) = derived_from_s1[pos] {
            let gene = if from_s1 {
                // s took from s1 ⇒ s' takes from s2.
                s2.gene(pos).map_or(STAR, |g| g)
            } else {
                s1.gene(pos).map_or(STAR, |g| g)
            };
            complement.set_gene(pos, gene);
        }
    }

    let _ = rng; // reserved: tie-breaking hooks keep the signature uniform
    (child, complement)
}

/// Dispatches on [`CrossoverKind`].
pub fn recombine<C: CubeCounter, R: Rng>(
    kind: CrossoverKind,
    s1: &Projection,
    s2: &Projection,
    fitness: &SparsityFitness<'_, C>,
    rng: &mut R,
) -> (Projection, Projection) {
    match kind {
        CrossoverKind::TwoPoint => two_point(s1, s2, rng),
        CrossoverKind::Optimized => optimized(s1, s2, fitness, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::discretize::{DiscretizeStrategy, Discretized};
    use hdoutlier_data::generators::uniform;
    use hdoutlier_data::Dataset;
    use hdoutlier_index::BitmapCounter;
    use hdoutlier_rng::rngs::StdRng;
    use hdoutlier_rng::SeedableRng;

    fn proj(s: &str) -> Projection {
        // Parse the paper's single-digit notation.
        Projection::from_genes(
            s.chars()
                .map(|c| {
                    if c == '*' {
                        STAR
                    } else {
                        c.to_digit(10).expect("digit") as u16 - 1
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn paper_two_point_example() {
        // §2.2: 3*2*1 × 1*33*, crossover after the third position
        // (exchanging positions 4..5) → 3*23* and 1*3*1.
        let a = proj("3*2*1");
        let b = proj("1*33*");
        let (c, d) = two_point_at(&a, &b, 3, 5);
        assert_eq!(c, proj("3*23*"));
        assert_eq!(d, proj("1*3*1"));
        // Crossover after the fourth position (exchanging position 4 only)
        // → 3*231 (4-dim) and 1*3** (2-dim): infeasible for k = 3 runs.
        let (c, d) = two_point_at(&a, &b, 3, 4);
        assert_eq!(c, proj("3*231"));
        assert_eq!(d, proj("1*3**"));
        assert_eq!(c.k(), 4);
        assert_eq!(d.k(), 2);
        assert!(!c.is_feasible(3));
        assert!(!d.is_feasible(3));
    }

    #[test]
    #[should_panic(expected = "cuts must satisfy")]
    fn two_point_bad_cut_panics() {
        two_point_at(&proj("1*"), &proj("*1"), 1, 1);
    }

    #[test]
    fn random_two_point_exchanges_one_segment() {
        let a = proj("11111");
        let b = proj("22222");
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let (c, _) = two_point(&a, &b, &mut rng);
            // c must be 1s with one contiguous run of 2s.
            let genes: Vec<u16> = (0..5).map(|i| c.gene(i).unwrap()).collect();
            let first_two = genes.iter().position(|&g| g == 1).expect("has a 2-run");
            let after = genes[first_two..]
                .iter()
                .position(|&g| g == 0)
                .map_or(5, |p| first_two + p);
            assert!(genes[..first_two].iter().all(|&g| g == 0));
            assert!(genes[first_two..after].iter().all(|&g| g == 1));
            assert!(genes[after..].iter().all(|&g| g == 0));
        }
    }

    fn fixture(k: usize) -> (BitmapCounter, usize) {
        let ds = uniform(600, 6, 11);
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        (BitmapCounter::new(&disc), k)
    }

    #[test]
    fn optimized_children_are_feasible() {
        let (counter, k) = fixture(3);
        let fitness = SparsityFitness::new(&counter, k);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..50 {
            let a = Projection::random(6, 3, 4, &mut rng);
            let b = Projection::random(6, 3, 4, &mut rng);
            let (c, d) = optimized(&a, &b, &fitness, &mut rng);
            assert!(c.is_feasible(3), "child {c} of {a} × {b}");
            assert!(d.is_feasible(3), "complement {d} of {a} × {b}");
        }
    }

    #[test]
    fn optimized_children_only_use_parent_material() {
        let (counter, _) = fixture(3);
        let fitness = SparsityFitness::new(&counter, 3);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..50 {
            let a = Projection::random(6, 3, 4, &mut rng);
            let b = Projection::random(6, 3, 4, &mut rng);
            let (c, d) = optimized(&a, &b, &fitness, &mut rng);
            for child in [&c, &d] {
                for pos in 0..6 {
                    let g = child.gene(pos);
                    assert!(
                        g == a.gene(pos) || g == b.gene(pos) || g.is_none(),
                        "position {pos} of {child} not from {a} or {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn complementary_child_derives_from_opposite_parent() {
        let (counter, _) = fixture(3);
        let fitness = SparsityFitness::new(&counter, 3);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..50 {
            let a = Projection::random(6, 3, 4, &mut rng);
            let b = Projection::random(6, 3, 4, &mut rng);
            let (c, d) = optimized(&a, &b, &fitness, &mut rng);
            for pos in 0..6 {
                match (a.gene(pos), b.gene(pos)) {
                    // Type II with distinct values: the children must take
                    // opposite values.
                    (Some(ga), Some(gb)) if ga != gb => {
                        let (gc, gd) = (c.gene(pos).unwrap(), d.gene(pos).unwrap());
                        assert_ne!(gc, gd);
                        assert!((gc == ga && gd == gb) || (gc == gb && gd == ga));
                    }
                    // Type III: exactly one child carries the value.
                    (Some(g), None) | (None, Some(g)) => {
                        let cc = c.gene(pos) == Some(g);
                        let dd = d.gene(pos) == Some(g);
                        assert!(cc ^ dd, "position {pos}: value must go to one child");
                    }
                    // Type I: both stay star.
                    (None, None) => {
                        assert_eq!(c.gene(pos), None);
                        assert_eq!(d.gene(pos), None);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn optimized_type2_enumeration_picks_the_sparsest_combination() {
        // Craft data where dim0-range0 ∧ dim1-range1 is empty, but either
        // parent's own combination is populated. Parents: [0,0,*..] and
        // [1,1,*..]; best recombination of the Type-II positions {0,1} must
        // be (0 from s1, 1 from s2) or (1 from s2, 0 from s1) — the empty combo.
        // Data: values on dims 0,1 arranged so grid cells (0,1) never co-occur.
        let mut rows = Vec::new();
        for i in 0..100 {
            let a = (i % 4) as f64; // dim0 cell = i % 4 under φ=4 equi-depth
            let b = ((i + 1) % 4) as f64; // dim1 cell shifted: (0, 1) never co-occurs
            rows.push(vec![a, b, (i % 7) as f64]);
        }
        let ds = Dataset::from_rows(rows).unwrap();
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = BitmapCounter::new(&disc);
        // Sanity: cell (0,1) on dims (0,1) — i%4==0 and (i+1)%4==1 ⇒ both i≡0:
        // that's i ≡ 0 (mod 4)... then (i+1)%4 == 1, so it DOES co-occur.
        // Use (0, 2) instead: i%4==0 ∧ (i+1)%4==2 ⇒ i≡0 ∧ i≡1 — empty.
        let empty_cube = Cube::new([(0u32, 0u16), (1u32, 2u16)]).unwrap();
        assert_eq!(counter.count(&empty_cube), 0);
        let fitness = SparsityFitness::new(&counter, 2);
        let s1 = Projection::from_genes(vec![0, 1, STAR]); // (0,0),(1,1): occupied
        let s2 = Projection::from_genes(vec![1, 2, STAR]); // (0,1),(1,2): occupied
        let mut rng = StdRng::seed_from_u64(24);
        let (child, complement) = optimized(&s1, &s2, &fitness, &mut rng);
        // Both parents' own combinations hold 25 records each; the two
        // cross-parent recombinations ((0,2) and (1,1)) are both empty, so
        // the child must be one of them and the complement the other.
        let want_a = Projection::from_genes(vec![0, 2, STAR]);
        let want_b = Projection::from_genes(vec![1, 1, STAR]);
        assert!(
            (child == want_a && complement == want_b) || (child == want_b && complement == want_a),
            "got {child} / {complement}"
        );
        assert_eq!(
            fitness.evaluate(&child),
            fitness.sparsity_of_cube(&empty_cube)
        );
    }

    #[test]
    fn optimized_handles_disjoint_parents() {
        // k' = 0: all constrained positions are Type III; the greedy phase
        // must still assemble feasible complementary children.
        let (counter, _) = fixture(2);
        let fitness = SparsityFitness::new(&counter, 2);
        let s1 = Projection::from_genes(vec![0, 1, STAR, STAR, STAR, STAR]);
        let s2 = Projection::from_genes(vec![STAR, STAR, 2, 3, STAR, STAR]);
        let mut rng = StdRng::seed_from_u64(25);
        let (c, d) = optimized(&s1, &s2, &fitness, &mut rng);
        assert!(c.is_feasible(2));
        assert!(d.is_feasible(2));
        // Together the children carry all four parent genes.
        let mut genes: Vec<(usize, u16)> = Vec::new();
        for p in [&c, &d] {
            for pos in p.constrained_positions() {
                genes.push((pos, p.gene(pos).unwrap()));
            }
        }
        genes.sort_unstable();
        assert_eq!(genes, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn optimized_handles_identical_parents() {
        let (counter, _) = fixture(2);
        let fitness = SparsityFitness::new(&counter, 2);
        let s = Projection::from_genes(vec![2, STAR, 1, STAR, STAR, STAR]);
        let mut rng = StdRng::seed_from_u64(26);
        let (c, d) = optimized(&s, &s, &fitness, &mut rng);
        assert_eq!(c, s);
        assert_eq!(d, s);
    }

    #[test]
    fn optimized_is_at_least_as_fit_as_the_best_parent_type2_only() {
        // With only Type-II differences (same constrained positions), the
        // exhaustive phase guarantees the child is no worse than either
        // parent (both parents' gene assignments are in the enumerated set).
        let (counter, _) = fixture(2);
        let fitness = SparsityFitness::new(&counter, 2);
        let mut rng = StdRng::seed_from_u64(27);
        for _ in 0..30 {
            let positions = {
                let p = Projection::random(6, 2, 4, &mut rng);
                p.constrained_positions()
            };
            let mut g1 = vec![STAR; 6];
            let mut g2 = vec![STAR; 6];
            for &pos in &positions {
                g1[pos] = rng.gen_range(0..4) as u16;
                g2[pos] = rng.gen_range(0..4) as u16;
            }
            let s1 = Projection::from_genes(g1);
            let s2 = Projection::from_genes(g2);
            let (child, _) = optimized(&s1, &s2, &fitness, &mut rng);
            let best_parent = fitness.evaluate(&s1).min(fitness.evaluate(&s2));
            assert!(
                fitness.evaluate(&child) <= best_parent + 1e-12,
                "{s1} × {s2} → {child}"
            );
        }
    }

    #[test]
    fn recombine_dispatch() {
        let (counter, _) = fixture(2);
        let fitness = SparsityFitness::new(&counter, 2);
        let mut rng = StdRng::seed_from_u64(28);
        let a = Projection::random(6, 2, 4, &mut rng);
        let b = Projection::random(6, 2, 4, &mut rng);
        let (c, _) = recombine(CrossoverKind::Optimized, &a, &b, &fitness, &mut rng);
        assert!(c.is_feasible(2));
        let (c, d) = recombine(CrossoverKind::TwoPoint, &a, &b, &fitness, &mut rng);
        assert_eq!(c.d(), 6);
        assert_eq!(d.d(), 6);
    }
}
