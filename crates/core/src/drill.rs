//! Record-level drill-down: for one record, enumerate and rank every
//! subspace view of it.
//!
//! The searches answer "which cubes are abnormally sparse?"; an analyst
//! triaging a specific alert asks the transposed question — "in which views
//! is *this record* abnormal?" For a fixed record the answer space is tiny:
//! a dimension subset `A` determines exactly one cube (the record's own
//! cells on `A`), so the complete k-dimensional profile is just `C(d, k)`
//! cubes, enumerable directly rather than searched. Views are ranked by
//! exact significance so different `k` are comparable (§1.1's
//! comparability desideratum).

use hdoutlier_data::discretize::MISSING_CELL;
use hdoutlier_data::Discretized;
use hdoutlier_index::{Cube, CubeCounter};
use hdoutlier_stats::SparsityParams;

/// One view of the record: the cube its cells define on a dimension subset.
#[derive(Debug, Clone)]
pub struct RecordView {
    /// The cube (the record's own cells on the chosen dimensions).
    pub cube: Cube,
    /// Occupancy of the cube (at least 1 — the record itself).
    pub count: usize,
    /// Sparsity coefficient at the cube's dimensionality.
    pub sparsity: f64,
    /// Exact significance `P[occupancy <= count]` — the cross-k ranking key.
    pub exact_significance: f64,
}

/// Complete profile of one record across the requested dimensionalities,
/// ascending by exact significance (most abnormal views first).
///
/// Dimensions on which the record is missing are skipped (a missing value
/// belongs to no range — §1.2 semantics). The cost is
/// `Σ_k C(d_present, k)` counter queries; keep `ks` small (1–3) for wide
/// data.
///
/// # Panics
/// Panics if `row` is out of bounds or any `k` exceeds the number of
/// present attributes.
pub fn record_profile<C: CubeCounter>(
    counter: &C,
    disc: &Discretized,
    row: usize,
    ks: &[usize],
) -> Vec<RecordView> {
    let cubes = enumerate_view_cubes(counter, disc, row, ks);
    let views = cubes
        .iter()
        .map(|entry| score_view(counter, entry))
        .collect();
    sort_views(views)
}

/// [`record_profile`] with the counter queries fanned out over pool
/// workers. The view list is enumerated serially (cheap combinatorics);
/// only the `C(d, k)` occupancy counts run on the pool, and they come back
/// in enumeration order, so the profile is bit-identical at any thread
/// count.
pub fn record_profile_threaded<C: CubeCounter + Sync>(
    counter: &C,
    disc: &Discretized,
    row: usize,
    ks: &[usize],
    threads: usize,
) -> Vec<RecordView> {
    if threads <= 1 {
        return record_profile(counter, disc, row, ks);
    }
    let cubes = enumerate_view_cubes(counter, disc, row, ks);
    let views = hdoutlier_pool::map(threads, &cubes, |_, entry| score_view(counter, entry));
    sort_views(views)
}

/// Every view cube of the record at the requested dimensionalities, paired
/// with the sparsity parameters of its `k`, in deterministic enumeration
/// order.
fn enumerate_view_cubes<C: CubeCounter>(
    counter: &C,
    disc: &Discretized,
    row: usize,
    ks: &[usize],
) -> Vec<(SparsityParams, Cube)> {
    assert!(row < disc.n_rows(), "row {row} out of bounds");
    let cells = disc.row(row);
    let present: Vec<(u32, u16)> = cells
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != MISSING_CELL)
        .map(|(d, &c)| (d as u32, c))
        .collect();
    let n = counter.n_rows() as u64;
    let phi = counter.phi();

    let mut cubes = Vec::new();
    for &k in ks {
        assert!(
            k >= 1 && k <= present.len(),
            "k = {k} out of range for {} present attributes",
            present.len()
        );
        let params = SparsityParams::new(n, phi, k as u32).expect("validated");
        let mut chosen: Vec<(u32, u16)> = Vec::with_capacity(k);
        subsets(&present, k, &mut chosen, &mut |pairs| {
            cubes.push((
                params,
                Cube::new(pairs.iter().copied()).expect("distinct dims"),
            ));
        });
    }
    cubes
}

/// Scores one enumerated view: the only counter query of the profile path.
fn score_view<C: CubeCounter>(counter: &C, entry: &(SparsityParams, Cube)) -> RecordView {
    let (params, cube) = entry;
    let count = counter.count(cube);
    debug_assert!(count >= 1, "a record always covers its own cube");
    RecordView {
        cube: cube.clone(),
        count,
        sparsity: params.sparsity(count as u64),
        exact_significance: params.exact_significance(count as u64),
    }
}

fn sort_views(mut views: Vec<RecordView>) -> Vec<RecordView> {
    views.sort_by(|a, b| {
        a.exact_significance
            .partial_cmp(&b.exact_significance)
            .expect("finite significance")
            .then_with(|| a.cube.dims().cmp(b.cube.dims()))
    });
    views
}

fn subsets<F: FnMut(&[(u32, u16)])>(
    items: &[(u32, u16)],
    k: usize,
    chosen: &mut Vec<(u32, u16)>,
    visit: &mut F,
) {
    if chosen.len() == k {
        visit(chosen);
        return;
    }
    let start = chosen.last().map_or(0, |last| {
        items.iter().position(|x| x == last).expect("member") + 1
    });
    let remaining = k - chosen.len();
    if items.len() - start < remaining {
        return;
    }
    for i in start..items.len() {
        chosen.push(items[i]);
        subsets(items, k, chosen, visit);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::discretize::DiscretizeStrategy;
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
    use hdoutlier_data::Dataset;
    use hdoutlier_index::BitmapCounter;

    fn fixture() -> (
        hdoutlier_data::generators::PlantedOutliers,
        Discretized,
        BitmapCounter,
    ) {
        let planted = planted_outliers(&PlantedConfig {
            n_rows: 1500,
            n_dims: 8,
            n_outliers: 3,
            strong_groups: Some(2),
            seed: 71,
            ..PlantedConfig::default()
        });
        let disc = Discretized::new(&planted.dataset, 5, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = BitmapCounter::new(&disc);
        (planted, disc, counter)
    }

    #[test]
    fn planted_outliers_top_view_is_their_signature_pair() {
        let (planted, disc, counter) = fixture();
        for (&row, &(lo, hi)) in planted.outlier_rows.iter().zip(&planted.signatures) {
            let profile = record_profile(&counter, &disc, row, &[2]);
            let top = &profile[0];
            let mut want = [lo as u32, hi as u32];
            want.sort_unstable();
            assert_eq!(
                top.cube.dims(),
                &want,
                "row {row}: top view {} (S = {:.2})",
                top.cube,
                top.sparsity
            );
            assert!(top.sparsity < -3.0);
        }
    }

    #[test]
    fn profile_is_complete_and_sorted() {
        let (_, disc, counter) = fixture();
        let profile = record_profile(&counter, &disc, 0, &[1, 2]);
        // C(8,1) + C(8,2) views.
        assert_eq!(profile.len(), 8 + 28);
        for w in profile.windows(2) {
            assert!(w[0].exact_significance <= w[1].exact_significance);
        }
        for v in &profile {
            assert!(v.count >= 1, "record covers its own cube");
        }
    }

    #[test]
    fn typical_record_has_no_significant_views() {
        let (planted, disc, counter) = fixture();
        // A bulk record whose views should all be unremarkable.
        let bulk_row = (0..1500)
            .find(|&r| !planted.is_outlier(r))
            .expect("bulk exists");
        let profile = record_profile(&counter, &disc, bulk_row, &[2]);
        // Most views are not extreme; allow a couple of mild ones.
        let extreme = profile
            .iter()
            .filter(|v| v.exact_significance < 1e-6)
            .count();
        assert!(extreme <= 2, "{extreme} extreme views for a bulk record");
    }

    #[test]
    fn missing_dimensions_are_skipped() {
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, (i * 7 % 60) as f64, (i * 11 % 60) as f64])
            .collect();
        rows[5][1] = f64::NAN;
        let ds = Dataset::from_rows(rows).unwrap();
        let disc = Discretized::new(&ds, 3, DiscretizeStrategy::EquiDepth).unwrap();
        let counter = BitmapCounter::new(&disc);
        // Row 5 has 2 present attributes: C(2,1) + C(2,2) = 3 views, none
        // involving dim 1.
        let profile = record_profile(&counter, &disc, 5, &[1, 2]);
        assert_eq!(profile.len(), 3);
        for v in &profile {
            assert!(!v.cube.dims().contains(&1));
        }
    }

    #[test]
    fn threaded_profile_is_bit_identical_to_serial() {
        let (_, disc, counter) = fixture();
        let serial = record_profile(&counter, &disc, 3, &[1, 2]);
        for threads in [1, 2, 8] {
            let got = record_profile_threaded(&counter, &disc, 3, &[1, 2], threads);
            assert_eq!(got.len(), serial.len());
            for (g, s) in got.iter().zip(&serial) {
                assert_eq!(g.cube, s.cube, "threads = {threads}");
                assert_eq!(g.count, s.count);
                assert_eq!(g.sparsity.to_bits(), s.sparsity.to_bits());
                assert_eq!(
                    g.exact_significance.to_bits(),
                    s.exact_significance.to_bits()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_row_panics() {
        let (_, disc, counter) = fixture();
        record_profile(&counter, &disc, 99_999, &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_k_panics() {
        let (_, disc, counter) = fixture();
        record_profile(&counter, &disc, 0, &[9]);
    }
}
