//! The friendly front door: configure once, call
//! [`OutlierDetector::detect`] on a [`Dataset`], get an interpretable
//! [`OutlierReport`].
//!
//! Wiring order (the paper's pipeline):
//! dataset → equi-depth grid (§1.3) → posting index → sparsity fitness
//! (Eq. 1) → brute-force (Fig. 2) or evolutionary (Figs. 3–6) search →
//! post-processing into outlier rows (§2.3).

use crate::brute::BruteForceConfig;
use crate::crossover::CrossoverKind;
use crate::evolutionary::{evolutionary_search, EvolutionaryConfig};
use crate::fitness::SparsityFitness;
use crate::params::{advise, DEFAULT_TARGET_SPARSITY};
use crate::report::{OutlierReport, SearchStats};
use hdoutlier_data::{DataError, Dataset, DiscretizeStrategy, Discretized};
use hdoutlier_evolve::SelectionScheme;
use hdoutlier_index::{BitmapCounter, CachedCounter, CubeCounter};
use hdoutlier_obs as obs;
use std::fmt;
use std::time::Instant;

/// Event target for the detector pipeline.
const TARGET: &str = "hdoutlier.core";

/// Runs one pipeline phase, recording its duration into
/// `hdoutlier.core.<name>_us` and emitting an Info event. Phases run once
/// per detect call, so the two clock reads are always paid — the metric is
/// populated even when no sink is installed.
fn phase<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    // The span reports the phase as an Info event and, when a trace buffer
    // is installed, as a Chrome-trace slice; the histogram keeps its own
    // clock because it is populated even with events and tracing off.
    let span = obs::span(obs::Level::Info, TARGET, name);
    let start = Instant::now();
    let out = f();
    let us = start.elapsed().as_micros() as u64;
    obs::registry()
        .histogram(&format!("hdoutlier.core.{name}_us"))
        .record(us as f64);
    drop(span);
    out
}

/// Which search locates the sparse projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMethod {
    /// Exhaustive enumeration (Fig. 2). Only viable at low `d`/`k`.
    BruteForce,
    /// The genetic algorithm (Fig. 3).
    Evolutionary,
}

/// Errors from [`OutlierDetector::detect`].
#[derive(Debug)]
pub enum DetectError {
    /// Dataset problems (empty, bad shape, φ out of range…).
    Data(DataError),
    /// The requested `k` exceeds the dataset's dimensionality.
    KTooLarge {
        /// Requested projection dimensionality.
        k: usize,
        /// Dataset dimensionality.
        d: usize,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Data(e) => write!(f, "data error: {e}"),
            DetectError::KTooLarge { k, d } => {
                write!(
                    f,
                    "projection dimensionality k = {k} exceeds dataset dimensionality {d}"
                )
            }
        }
    }
}

impl std::error::Error for DetectError {}

impl From<DataError> for DetectError {
    fn from(e: DataError) -> Self {
        DetectError::Data(e)
    }
}

/// Full configuration; build through [`OutlierDetector::builder`].
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Grid ranges per dimension; `None` = §2.4 advisor.
    pub phi: Option<u32>,
    /// Projection dimensionality; `None` = Eq. 2 with `target_sparsity`.
    pub k: Option<usize>,
    /// Number of best projections to report.
    pub m: usize,
    /// Target sparsity for the parameter advisor.
    pub target_sparsity: f64,
    /// If set, drop reported projections with sparsity above this threshold
    /// (the §3.1 arrhythmia experiment keeps only `S ≤ −3`).
    pub sparsity_threshold: Option<f64>,
    /// Search strategy.
    pub search: SearchMethod,
    /// Grid strategy (equi-depth is the paper's; equi-width is the ablation).
    pub strategy: DiscretizeStrategy,
    /// GA population size.
    pub population: usize,
    /// GA crossover mechanism.
    pub crossover: CrossoverKind,
    /// GA mutation probability (`p1 = p2`, as in the paper).
    pub mutation_rate: f64,
    /// GA selection scheme.
    pub selection: SelectionScheme,
    /// GA generation cap.
    pub max_generations: usize,
    /// Brute-force candidate budget (`None` = unlimited).
    pub max_candidates: Option<u64>,
    /// Worker threads for the search fan-outs (brute-force partitions and
    /// GA fitness evaluation). The task decomposition is thread-count
    /// invariant, so any value >= 1 yields identical reports; 1 runs the
    /// paper's serial algorithm inline.
    pub threads: usize,
    /// Only report projections covering at least one record.
    pub require_nonempty: bool,
    /// RNG seed (GA only).
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            phi: None,
            k: None,
            m: 20,
            target_sparsity: DEFAULT_TARGET_SPARSITY,
            sparsity_threshold: None,
            search: SearchMethod::Evolutionary,
            strategy: DiscretizeStrategy::EquiDepth,
            population: 100,
            crossover: CrossoverKind::Optimized,
            mutation_rate: 0.15,
            selection: SelectionScheme::RankRoulette,
            max_generations: 500,
            max_candidates: None,
            threads: 1,
            require_nonempty: true,
            seed: 0,
        }
    }
}

/// The configured detector.
#[derive(Debug, Clone)]
pub struct OutlierDetector {
    config: DetectorConfig,
}

impl OutlierDetector {
    /// Starts a builder with defaults.
    pub fn builder() -> DetectorBuilder {
        DetectorBuilder {
            config: DetectorConfig::default(),
        }
    }

    /// Wraps an explicit configuration.
    pub fn with_config(config: DetectorConfig) -> Self {
        Self { config }
    }

    /// The effective configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs the full pipeline on a dataset.
    pub fn detect(&self, dataset: &Dataset) -> Result<OutlierReport, DetectError> {
        let phi = self
            .config
            .phi
            .unwrap_or_else(|| advise(dataset.n_rows() as u64, self.config.target_sparsity).phi);
        let disc = phase("discretize", || {
            Discretized::new(dataset, phi, self.config.strategy)
        })?;
        self.detect_discretized(&disc)
    }

    /// Runs the search on an already-discretized dataset (lets callers reuse
    /// a grid across configurations).
    pub fn detect_discretized(&self, disc: &Discretized) -> Result<OutlierReport, DetectError> {
        let k = match self.config.k {
            Some(k) => k,
            None => advise(disc.n_rows() as u64, self.config.target_sparsity).k as usize,
        };
        if k > disc.n_dims() {
            return Err(DetectError::KTooLarge {
                k,
                d: disc.n_dims(),
            });
        }
        obs::event(
            obs::Level::Info,
            TARGET,
            "detect",
            &[
                ("rows", obs::Value::U64(disc.n_rows() as u64)),
                ("dims", obs::Value::U64(disc.n_dims() as u64)),
                ("k", obs::Value::U64(k as u64)),
                ("m", obs::Value::U64(self.config.m as u64)),
                (
                    "method",
                    obs::Value::Str(match self.config.search {
                        SearchMethod::BruteForce => "brute",
                        SearchMethod::Evolutionary => "evolutionary",
                    }),
                ),
            ],
        );
        let counter = phase("index", || BitmapCounter::new(disc));
        let report = match self.config.search {
            SearchMethod::BruteForce => self.run_brute(&counter, k),
            SearchMethod::Evolutionary => {
                // The GA revisits strings constantly; memoize counts.
                let cached = CachedCounter::new(counter);
                self.run_evolutionary(&cached, k)
            }
        };
        Ok(match self.config.sparsity_threshold {
            Some(t) => report.filtered_by_sparsity(t),
            None => report,
        })
    }

    fn run_brute(&self, counter: &BitmapCounter, k: usize) -> OutlierReport {
        let fitness = SparsityFitness::new(counter, k);
        let start = Instant::now();
        let config = BruteForceConfig {
            m: self.config.m,
            require_nonempty: self.config.require_nonempty,
            max_candidates: self.config.max_candidates,
        };
        // Debug-level span: the trace profile gets the search slice without
        // doubling the rich Info "search" event below at default filtering.
        let search_span = obs::span(obs::Level::Debug, TARGET, "search");
        // Every thread count routes through the same pooled per-dimension
        // decomposition of the incremental-intersection fast path, so the
        // report is byte-identical whether one worker runs the tasks in
        // sequence or eight race through them.
        let outcome = crate::brute::brute_force_search_incremental_parallel(
            counter,
            k,
            &config,
            self.config.threads.max(1),
        );
        drop(search_span);
        let stats = SearchStats {
            work: outcome.candidates,
            generations: 0,
            completed: outcome.completed,
            elapsed: start.elapsed(),
        };
        let us = stats.elapsed.as_micros() as u64;
        obs::registry()
            .histogram("hdoutlier.core.search_us")
            .record(us as f64);
        obs::event(
            obs::Level::Info,
            TARGET,
            "search",
            &[
                ("method", obs::Value::Str("brute")),
                ("candidates", obs::Value::U64(stats.work)),
                ("completed", obs::Value::Bool(stats.completed)),
                ("elapsed_us", obs::Value::U64(us)),
            ],
        );
        phase("postprocess", || {
            OutlierReport::from_scored(outcome.best, &fitness, stats)
        })
    }

    fn run_evolutionary<C: CubeCounter + Sync>(&self, counter: &C, k: usize) -> OutlierReport {
        let fitness = SparsityFitness::new(counter, k);
        let start = Instant::now();
        let search_span = obs::span(obs::Level::Debug, TARGET, "search");
        let outcome = evolutionary_search(
            &fitness,
            &EvolutionaryConfig {
                m: self.config.m,
                population: self.config.population,
                crossover: self.config.crossover,
                p1: self.config.mutation_rate,
                p2: self.config.mutation_rate,
                selection: self.config.selection,
                convergence_threshold: 0.95,
                max_generations: self.config.max_generations,
                require_nonempty: self.config.require_nonempty,
                track_internal_candidates: true,
                seed: self.config.seed,
                threads: self.config.threads.max(1),
            },
        );
        drop(search_span);
        let stats = SearchStats {
            work: outcome.evaluations,
            generations: outcome.generations,
            completed: outcome.converged,
            elapsed: start.elapsed(),
        };
        let us = stats.elapsed.as_micros() as u64;
        obs::registry()
            .histogram("hdoutlier.core.search_us")
            .record(us as f64);
        obs::event(
            obs::Level::Info,
            TARGET,
            "search",
            &[
                ("method", obs::Value::Str("evolutionary")),
                ("evaluations", obs::Value::U64(stats.work)),
                ("generations", obs::Value::U64(stats.generations as u64)),
                ("converged", obs::Value::Bool(stats.completed)),
                ("elapsed_us", obs::Value::U64(us)),
            ],
        );
        phase("postprocess", || {
            OutlierReport::from_scored(outcome.best, &fitness, stats)
        })
    }
}

/// Fluent builder for [`OutlierDetector`].
///
/// Every setter (including [`search`](DetectorBuilder::search)) takes `self`
/// **by value** and returns it — the standard consuming-builder idiom. Move
/// semantics are deliberate: they let a whole configuration be one
/// expression (`OutlierDetector::builder().phi(5).k(2).build()`) with no
/// borrow of a temporary, and they make a half-configured builder impossible
/// to reuse by accident after `build`. A `&mut self` variant would return
/// `&mut DetectorBuilder` and the one-expression form would then borrow a
/// dropped temporary. Callers that configure conditionally don't need to
/// clone anything — rebind the moved value (`builder = builder.phi(p)`), or
/// use [`maybe`](DetectorBuilder::maybe) to fold an `Option` in without
/// breaking the chain.
#[derive(Debug, Clone)]
pub struct DetectorBuilder {
    config: DetectorConfig,
}

impl DetectorBuilder {
    /// Applies `set` when `value` is present — keeps a chain of optional
    /// settings (typical for CLI flags) in one expression instead of a
    /// ladder of `if let Some(x) { builder = builder.x(x) }` rebindings.
    ///
    /// ```
    /// use hdoutlier_core::OutlierDetector;
    /// let phi: Option<u32> = None;
    /// let detector = OutlierDetector::builder()
    ///     .maybe(phi, |b, p| b.phi(p))
    ///     .m(10)
    ///     .build();
    /// assert_eq!(detector.config().phi, None);
    /// ```
    pub fn maybe<T>(self, value: Option<T>, set: impl FnOnce(Self, T) -> Self) -> Self {
        match value {
            Some(v) => set(self, v),
            None => self,
        }
    }

    /// Sets φ (grid ranges per dimension).
    pub fn phi(mut self, phi: u32) -> Self {
        self.config.phi = Some(phi);
        self
    }

    /// Sets the projection dimensionality `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = Some(k);
        self
    }

    /// Sets the number of projections to report (`m`).
    pub fn m(mut self, m: usize) -> Self {
        self.config.m = m;
        self
    }

    /// Sets the advisor's target sparsity (default −3).
    pub fn target_sparsity(mut self, s: f64) -> Self {
        self.config.target_sparsity = s;
        self
    }

    /// Keeps only projections with sparsity ≤ `threshold` in the report.
    pub fn sparsity_threshold(mut self, threshold: f64) -> Self {
        self.config.sparsity_threshold = Some(threshold);
        self
    }

    /// Chooses the search method.
    ///
    /// Takes `self` by value like every other setter — see the type-level
    /// docs for why the builder moves instead of borrowing.
    pub fn search(mut self, method: SearchMethod) -> Self {
        self.config.search = method;
        self
    }

    /// Chooses the discretization strategy.
    pub fn strategy(mut self, strategy: DiscretizeStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sets the GA population size.
    pub fn population(mut self, p: usize) -> Self {
        self.config.population = p;
        self
    }

    /// Chooses the crossover mechanism.
    pub fn crossover(mut self, kind: CrossoverKind) -> Self {
        self.config.crossover = kind;
        self
    }

    /// Sets `p1 = p2` mutation probability.
    pub fn mutation_rate(mut self, p: f64) -> Self {
        self.config.mutation_rate = p;
        self
    }

    /// Chooses the selection scheme.
    pub fn selection(mut self, scheme: SelectionScheme) -> Self {
        self.config.selection = scheme;
        self
    }

    /// Caps GA generations.
    pub fn max_generations(mut self, g: usize) -> Self {
        self.config.max_generations = g;
        self
    }

    /// Caps brute-force candidates.
    pub fn max_candidates(mut self, c: u64) -> Self {
        self.config.max_candidates = Some(c);
        self
    }

    /// Uses `t` pool workers for the search fan-outs (identical reports at
    /// any `t >= 1`).
    pub fn threads(mut self, t: usize) -> Self {
        self.config.threads = t;
        self
    }

    /// Whether empty projections may be reported (default: no).
    pub fn require_nonempty(mut self, yes: bool) -> Self {
        self.config.require_nonempty = yes;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finalizes the detector.
    pub fn build(self) -> OutlierDetector {
        OutlierDetector {
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdoutlier_data::generators::{planted_outliers, PlantedConfig};

    fn planted() -> hdoutlier_data::generators::PlantedOutliers {
        planted_outliers(&PlantedConfig {
            n_rows: 1200,
            n_dims: 10,
            n_outliers: 5,
            seed: 61,
            ..PlantedConfig::default()
        })
    }

    #[test]
    fn brute_force_end_to_end_finds_planted() {
        let p = planted();
        let report = OutlierDetector::builder()
            .phi(5)
            .k(2)
            .m(10)
            .search(SearchMethod::BruteForce)
            .build()
            .detect(&p.dataset)
            .unwrap();
        assert_eq!(report.projections.len(), 10);
        assert!(report.stats.completed);
        assert!(report.stats.work > 0);
        let recall = p.recall(&report.outlier_rows).unwrap();
        assert!(recall >= 0.6, "recall {recall}");
    }

    #[test]
    fn evolutionary_end_to_end_finds_planted() {
        let p = planted();
        let report = OutlierDetector::builder()
            .phi(5)
            .k(2)
            .m(10)
            .seed(5)
            .search(SearchMethod::Evolutionary)
            .build()
            .detect(&p.dataset)
            .unwrap();
        assert!(!report.projections.is_empty());
        let recall = p.recall(&report.outlier_rows).unwrap();
        assert!(recall >= 0.4, "recall {recall}");
        assert!(report.stats.work > 0);
    }

    #[test]
    fn auto_parameters_follow_the_advisor() {
        let p = planted();
        let detector = OutlierDetector::builder()
            .search(SearchMethod::Evolutionary)
            .max_generations(20)
            .build();
        // No phi/k set: must not panic and must produce a valid report.
        let report = detector.detect(&p.dataset).unwrap();
        for s in &report.projections {
            let advice = crate::params::advise(1200, -3.0);
            assert!(s.projection.is_feasible(advice.k as usize));
        }
    }

    #[test]
    fn sparsity_threshold_filters_report() {
        let p = planted();
        let all = OutlierDetector::builder()
            .phi(5)
            .k(2)
            .m(20)
            .search(SearchMethod::BruteForce)
            .build()
            .detect(&p.dataset)
            .unwrap();
        let strict = OutlierDetector::builder()
            .phi(5)
            .k(2)
            .m(20)
            .search(SearchMethod::BruteForce)
            .sparsity_threshold(-3.0)
            .build()
            .detect(&p.dataset)
            .unwrap();
        assert!(strict.projections.len() <= all.projections.len());
        assert!(strict.projections.iter().all(|s| s.sparsity <= -3.0));
    }

    #[test]
    fn k_too_large_is_an_error() {
        let p = planted();
        let err = OutlierDetector::builder()
            .phi(5)
            .k(99)
            .build()
            .detect(&p.dataset)
            .unwrap_err();
        assert!(matches!(err, DetectError::KTooLarge { k: 99, d: 10 }));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn bad_phi_propagates_data_error() {
        let p = planted();
        let err = OutlierDetector::builder()
            .phi(0)
            .k(2)
            .build()
            .detect(&p.dataset)
            .unwrap_err();
        assert!(matches!(err, DetectError::Data(_)));
    }

    #[test]
    fn detect_is_deterministic() {
        let p = planted();
        let detector = OutlierDetector::builder()
            .phi(4)
            .k(2)
            .m(5)
            .seed(17)
            .max_generations(40)
            .build();
        let a = detector.detect(&p.dataset).unwrap();
        let b = detector.detect(&p.dataset).unwrap();
        assert_eq!(a.outlier_rows, b.outlier_rows);
        assert_eq!(
            a.projections
                .iter()
                .map(|s| s.projection.clone())
                .collect::<Vec<_>>(),
            b.projections
                .iter()
                .map(|s| s.projection.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn brute_force_report_is_identical_at_any_thread_count() {
        let p = planted();
        let run = |threads: usize| {
            OutlierDetector::builder()
                .phi(5)
                .k(2)
                .m(10)
                .threads(threads)
                .search(SearchMethod::BruteForce)
                .build()
                .detect(&p.dataset)
                .unwrap()
        };
        let one = run(1);
        for threads in [2usize, 8] {
            let r = run(threads);
            assert_eq!(r.outlier_rows, one.outlier_rows, "threads {threads}");
            assert_eq!(
                r.projections
                    .iter()
                    .map(|s| s.projection.clone())
                    .collect::<Vec<_>>(),
                one.projections
                    .iter()
                    .map(|s| s.projection.clone())
                    .collect::<Vec<_>>()
            );
            for (a, b) in r.projections.iter().zip(&one.projections) {
                assert_eq!(a.sparsity.to_bits(), b.sparsity.to_bits());
            }
        }
    }

    #[test]
    fn maybe_applies_only_present_values() {
        let detector = OutlierDetector::builder()
            .maybe(Some(7u32), |b, p| b.phi(p))
            .maybe(None::<usize>, |b, k| b.k(k))
            .build();
        assert_eq!(detector.config().phi, Some(7));
        assert_eq!(detector.config().k, None);
    }

    #[test]
    fn reusing_a_grid_matches_detect() {
        let p = planted();
        let detector = OutlierDetector::builder()
            .phi(4)
            .k(2)
            .m(5)
            .search(SearchMethod::BruteForce)
            .build();
        let direct = detector.detect(&p.dataset).unwrap();
        let disc = Discretized::new(&p.dataset, 4, DiscretizeStrategy::EquiDepth).unwrap();
        let reused = detector.detect_discretized(&disc).unwrap();
        assert_eq!(direct.outlier_rows, reused.outlier_rows);
    }
}
