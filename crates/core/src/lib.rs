#![warn(missing_docs)]

//! The Aggarwal–Yu subspace outlier detector (SIGMOD 2001).
//!
//! Outliers are defined as records that appear in a **k-dimensional grid
//! cube whose occupancy is abnormally low** — quantified by the sparsity
//! coefficient of Eq. 1 — in some projection of the data. Two search
//! strategies locate the m most negative cubes:
//!
//! - [`brute`]: exhaustive enumeration of all `C(d, k) · φ^k` cubes
//!   (paper Fig. 2), feasible only at low dimensionality;
//! - [`evolutionary`]: the genetic algorithm of Figs. 3–6 over projection
//!   strings like `*3*9`, with the paper's **optimized crossover** (and the
//!   baseline two-point crossover it is evaluated against), Type I/II
//!   mutations, rank-roulette selection and De Jong convergence.
//!
//! The friendly entry point is [`detector::OutlierDetector`]:
//!
//! ```
//! use hdoutlier_core::detector::{OutlierDetector, SearchMethod};
//! use hdoutlier_data::generators::{planted_outliers, PlantedConfig};
//!
//! let planted = planted_outliers(&PlantedConfig {
//!     n_rows: 500, n_dims: 8, n_outliers: 3, ..PlantedConfig::default()
//! });
//! let report = OutlierDetector::builder()
//!     .phi(4)
//!     .k(2)
//!     .m(10)
//!     .search(SearchMethod::BruteForce)
//!     .build()
//!     .detect(&planted.dataset)
//!     .unwrap();
//! assert!(!report.projections.is_empty());
//! ```
//!
//! Module map: [`projection`] (the string genome), [`fitness`] (Eq. 1 over a
//! cube counter), [`brute`] / [`evolutionary`] (the two searches),
//! [`crossover`] and [`mutation`] (the GA operators), [`report`]
//! (post-processing into interpretable outlier reports), [`params`]
//! (the φ/k advisor of §2.4), [`detector`] (the builder API) and [`model`]
//! (fitted models that score new records without the training data).

pub mod brute;
pub mod crossover;
pub mod detector;
pub mod drill;
pub mod evolutionary;
pub mod fitness;
pub mod model;
pub mod multi_k;
pub mod mutation;
pub mod params;
pub mod projection;
pub mod report;

pub use detector::{DetectorConfig, OutlierDetector, SearchMethod};
pub use drill::{record_profile, record_profile_threaded, RecordView};
pub use fitness::SparsityFitness;
pub use model::FittedModel;
pub use multi_k::MultiKReport;
pub use projection::Projection;
pub use report::{OutlierReport, ScoredProjection};
