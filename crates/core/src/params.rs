//! The projection-parameter advisor (paper §2.4).
//!
//! Balances two pressures: `φ` must be large enough that a grid range is a
//! "reasonable notion of locality", yet `φ^k` small enough that a cube
//! holding a single point still has a decidedly negative sparsity
//! coefficient. Given `φ` and a target coefficient `s` (−3 by default, the
//! paper's 99.9 %-significance reference point), Eq. 2 fixes
//! `k* = ⌊log_φ(N/s² + 1)⌋`.

use hdoutlier_stats::{empty_cube_coefficient, recommended_k};

/// Advice produced by [`advise`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParameterAdvice {
    /// Grid ranges per dimension.
    pub phi: u32,
    /// Projection dimensionality `k*` per Eq. 2.
    pub k: u32,
    /// The sparsity coefficient an *empty* cube gets at `(φ, k)` — the most
    /// negative value any projection can attain. §2.4 notes the floor in
    /// Eq. 2 usually makes this "slightly more negative" than the target.
    pub empty_cube_sparsity: f64,
}

/// Target sparsity used when the caller does not specify one.
pub const DEFAULT_TARGET_SPARSITY: f64 = -3.0;

/// Picks `(φ, k)` for a dataset of `n_records` records.
///
/// `phi` is chosen so each 1-d range holds at least ~25 records (locality
/// needs enough mass to be meaningful) but stays within `[3, 10]` — the
/// paper's examples use φ up to 10. `k` then follows Eq. 2 for
/// `target_sparsity`; if even `k = 1` is not significant the advisor falls
/// back to `k = 1` with a warning flag via `None` from [`recommended_k`]
/// being coerced — callers that care should inspect `empty_cube_sparsity`.
pub fn advise(n_records: u64, target_sparsity: f64) -> ParameterAdvice {
    let phi = suggest_phi(n_records);
    let k = recommended_k(n_records, phi, target_sparsity).unwrap_or(1);
    ParameterAdvice {
        phi,
        k,
        empty_cube_sparsity: empty_cube_coefficient(n_records, phi, k),
    }
}

/// The φ heuristic: `min(10, max(3, N / 25))`.
pub fn suggest_phi(n_records: u64) -> u32 {
    (n_records / 25).clamp(3, 10) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_bounds() {
        assert_eq!(suggest_phi(10), 3); // tiny data: few, fat ranges
        assert_eq!(suggest_phi(100), 4);
        assert_eq!(suggest_phi(250), 10);
        assert_eq!(suggest_phi(1_000_000), 10); // capped at the paper's max
    }

    #[test]
    fn advice_is_consistent_with_eq2() {
        let a = advise(10_000, -3.0);
        assert_eq!(a.phi, 10);
        assert_eq!(a.k, 3); // log10(10000/9 + 1) ≈ 3.046
                            // Empty cube at (10, 3) on 10k records: −sqrt(10000/999) ≈ −3.16,
                            // at or below the −3 target (the floor makes it more negative).
        assert!(a.empty_cube_sparsity <= -3.0);
        assert!((a.empty_cube_sparsity - empty_cube_coefficient(10_000, 10, 3)).abs() < 1e-12);
    }

    #[test]
    fn tiny_datasets_fall_back_to_k1() {
        // N = 5, φ = 3: Eq. 2 gives k* < 1 (even a 1-d empty range is only
        // −sqrt(5/2) ≈ −1.58 σ); the advisor falls back to k = 1 and the
        // weak empty-cube coefficient exposes the fallback.
        let a = advise(5, -3.0);
        assert_eq!(a.k, 1);
        assert!(a.empty_cube_sparsity > -3.0);
    }

    #[test]
    fn arrhythmia_scale_matches_paper_regime() {
        // 452 records: the paper mines 2-d projections at small φ.
        let a = advise(452, -3.0);
        assert!(a.phi >= 3);
        assert!((1..=3).contains(&a.k), "k = {}", a.k);
        // At the advised parameters, a single-point cube is still clearly
        // sparse (§2.4's requirement).
        let one_point = hdoutlier_stats::sparsity_coefficient(1, 452, a.phi, a.k);
        assert!(one_point < -1.5, "single-point sparsity {one_point}");
    }

    #[test]
    fn stronger_targets_shrink_k() {
        let weak = advise(100_000, -2.0);
        let strong = advise(100_000, -5.0);
        assert!(strong.k <= weak.k);
    }
}
