#![warn(missing_docs)]

//! A minimal JSON value: writer plus a recursive-descent parser.
//!
//! The writer serializes reports, models, and streaming checkpoints; the
//! parser loads them back. Both handle the full JSON grammar the workspace
//! produces — there is no intent to be a general-purpose JSON library. The
//! crate is dependency-free so every layer (CLI reports, `hdoutlier-stream`
//! checkpoints, bench baselines) shares one implementation.

pub mod normalize;

use std::fmt;
use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (NaN/inf serialize as `null`, per common convention).
    Number(f64),
    /// String (escaped on render).
    String(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Adds a field to an object.
    ///
    /// # Errors
    /// [`JsonError`] when `self` is not an object. Chains keep reading
    /// naturally because [`FieldChain`] implements `field` on the returned
    /// `Result`; put one `?` at the end of the chain.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Result<Self, JsonError> {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => {
                return Err(JsonError {
                    message: format!("field {key:?} on a non-object ({})", type_name(other)),
                    offset: 0,
                })
            }
        }
        Ok(self)
    }

    /// Renders compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn type_name(j: &Json) -> &'static str {
    match j {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Number(_) => "number",
        Json::String(_) => "string",
        Json::Array(_) => "array",
        Json::Object(_) => "object",
    }
}

/// Keeps `.field(..).field(..)` chains flowing through the fallible builder:
/// every link after the first operates on the `Result`, short-circuiting on
/// the first error, so call sites need a single `?` at the end.
pub trait FieldChain {
    /// Adds a field to the object inside `Ok`, or passes the error through.
    ///
    /// # Errors
    /// The carried error, or [`JsonError`] when the value is not an object.
    fn field(self, key: &str, value: impl Into<Json>) -> Result<Json, JsonError>;
}

impl FieldChain for Result<Json, JsonError> {
    fn field(self, key: &str, value: impl Into<Json>) -> Result<Json, JsonError> {
        self?.field(key, value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the failure was noticed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing content after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError {
                message: format!("cannot parse number {text:?}"),
                offset: start,
            })
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Number(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Number(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42usize).render(), "42");
        assert_eq!(Json::from(-1.5).render(), "-1.5");
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .field("name", "outliers")
            .field("rows", vec![1usize, 2, 3])
            .field(
                "nested",
                Json::object()
                    .field("ok", true)
                    .field("x", Json::Null)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(
            j.render(),
            r#"{"name":"outliers","rows":[1,2,3],"nested":{"ok":true,"x":null}}"#
        );
    }

    #[test]
    fn pretty_is_parseable_shape() {
        let j = Json::object()
            .field("a", vec![1usize])
            .field("b", Json::Array(vec![]))
            .field("c", Json::object())
            .unwrap();
        let p = j.pretty();
        assert!(p.contains("\"a\": [\n"));
        assert!(p.contains("\"b\": []"));
        assert!(p.contains("\"c\": {}"));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(3.0).render(), "3");
        assert_eq!(Json::from(1e20).render(), "100000000000000000000");
    }

    #[test]
    fn field_on_non_object_is_an_error_that_short_circuits() {
        let err = Json::Array(vec![]).field("k", 1usize).unwrap_err();
        assert!(err.message.contains("non-object"), "{err}");
        assert!(err.message.contains("array"), "{err}");
        // The error survives further chaining untouched.
        let chained = Json::from(1.0)
            .field("a", 2usize)
            .field("b", 3usize)
            .unwrap_err();
        assert!(chained.message.contains("\"a\""), "{chained}");
    }

    #[test]
    fn parser_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_number(), Some(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap().as_number(), Some(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parser_structures_and_lookup() {
        let j = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(j.get("c").and_then(Json::as_str), Some("x"));
        let arr = j.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_number(), Some(2.0));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(j.get("nope"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn parser_string_escapes() {
        let j = Json::parse(r#""a\"b\\c\nd\teA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nd\teA"));
        // Unicode content passes through.
        let j = Json::parse("\"héllo→\"").unwrap();
        assert_eq!(j.as_str(), Some("héllo→"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12\"",
            "1 2",
            "{,}",
        ] {
            let e = Json::parse(bad);
            assert!(e.is_err(), "{bad:?} parsed as {e:?}");
        }
        let err = Json::parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let original = Json::object()
            .field("name", "say \"hi\"\nplease")
            .field("values", vec![1.5f64, -2.25, 0.0])
            .field("flag", true)
            .field("missing", Json::Null)
            .field(
                "nested",
                Json::object().field("deep", vec![7usize]).unwrap(),
            )
            .unwrap();
        for text in [original.render(), original.pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.render(), original.render());
        }
    }
}
