//! Stable normalization of reports for golden-file comparison.
//!
//! A `--json` report is *almost* deterministic: the pipelines are seeded and
//! the pool merges are order-invariant, but wall-clock fields
//! (`elapsed_ms`), timestamps, and host identity differ between runs. The
//! scenario harness byte-compares reports against checked-in goldens, so
//! those fields must be scrubbed to a canonical value first — and the scrub
//! must be **idempotent**, so normalizing an already-normalized report (or
//! a golden file read back from disk) is a no-op.
//!
//! The rule: any field whose key is in the volatile set has its value
//! replaced by the canonical zero of its type — numbers become `0`, strings
//! become `""`, anything else becomes `null`. Everything else is recursed
//! into unchanged. Canonical zeros are fixed points of the scrub, which is
//! what makes the whole transform idempotent by construction.

use crate::Json;

/// Field names treated as volatile in every report this workspace emits:
/// wall-clock durations, absolute timestamps, and host identity.
pub const VOLATILE_KEYS: &[&str] = &[
    "elapsed_ms",
    "elapsed_us",
    "duration_us",
    "timestamp",
    "ts_us",
    "start_ts_us",
    "uptime_seconds",
    "host",
    "hostname",
    "generated_at",
];

/// Normalizes a report with the default [`VOLATILE_KEYS`].
pub fn normalize_report(json: &Json) -> Json {
    normalize_with(json, VOLATILE_KEYS)
}

/// Normalizes a report, scrubbing every field whose key is in `volatile`.
/// Key matching is exact and applies at any nesting depth, inside arrays
/// included. The scrub is idempotent: `normalize_with(&normalize_with(j,
/// v), v) == normalize_with(j, v)` for every `j`.
pub fn normalize_with(json: &Json, volatile: &[&str]) -> Json {
    match json {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .map(|(k, v)| {
                    let value = if volatile.iter().any(|name| name == k) {
                        scrub(v)
                    } else {
                        normalize_with(v, volatile)
                    };
                    (k.clone(), value)
                })
                .collect(),
        ),
        Json::Array(items) => {
            Json::Array(items.iter().map(|v| normalize_with(v, volatile)).collect())
        }
        other => other.clone(),
    }
}

/// The canonical zero for a volatile value: numbers flatten to `0`, strings
/// to `""`, and structured or other values to `null`. Every output of this
/// function maps to itself, so a second scrub changes nothing.
fn scrub(value: &Json) -> Json {
    match value {
        Json::Number(_) => Json::Number(0.0),
        Json::String(_) => Json::String(String::new()),
        _ => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldChain;

    #[test]
    fn volatile_numbers_zero_and_strings_empty() {
        let j = Json::object()
            .field("elapsed_ms", 12.75)
            .field("host", "worker-3")
            .field("work", 42u32)
            .unwrap();
        let n = normalize_report(&j);
        assert_eq!(n.get("elapsed_ms"), Some(&Json::Number(0.0)));
        assert_eq!(n.get("host"), Some(&Json::String(String::new())));
        // Non-volatile fields are untouched.
        assert_eq!(n.get("work"), Some(&Json::Number(42.0)));
    }

    #[test]
    fn scrub_reaches_into_nested_objects_and_arrays() {
        let inner = Json::object().field("elapsed_ms", 3.25).unwrap();
        let j = Json::object()
            .field("stats", Json::object().field("elapsed_ms", 9.5).unwrap())
            .field("runs", Json::Array(vec![inner]))
            .unwrap();
        let n = normalize_report(&j);
        assert_eq!(
            n.get("stats").and_then(|s| s.get("elapsed_ms")),
            Some(&Json::Number(0.0))
        );
        let runs = n.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs[0].get("elapsed_ms"), Some(&Json::Number(0.0)));
    }

    #[test]
    fn structured_volatile_values_collapse_to_null() {
        let j = Json::object()
            .field("host", Json::object().field("name", "x").unwrap())
            .field("timestamp", Json::Array(vec![Json::Number(1.0)]))
            .unwrap();
        let n = normalize_report(&j);
        assert_eq!(n.get("host"), Some(&Json::Null));
        assert_eq!(n.get("timestamp"), Some(&Json::Null));
    }

    #[test]
    fn volatile_key_lookup_is_exact() {
        // `elapsed_ms_total` is not in the set; only exact names scrub.
        let j = Json::object().field("elapsed_ms_total", 7u32).unwrap();
        let n = normalize_report(&j);
        assert_eq!(n.get("elapsed_ms_total"), Some(&Json::Number(7.0)));
    }

    #[test]
    fn custom_volatile_sets_are_honored() {
        let j = Json::object()
            .field("elapsed_ms", 5u32)
            .field("custom", "x")
            .unwrap();
        let n = normalize_with(&j, &["custom"]);
        assert_eq!(n.get("elapsed_ms"), Some(&Json::Number(5.0)));
        assert_eq!(n.get("custom"), Some(&Json::String(String::new())));
    }

    #[test]
    fn normalizing_twice_is_a_fixed_point() {
        let j = Json::object()
            .field("elapsed_ms", 1.5)
            .field(
                "nested",
                Json::object()
                    .field("host", "h")
                    .field("values", Json::Array(vec![Json::Number(1.0), Json::Null]))
                    .unwrap(),
            )
            .unwrap();
        let once = normalize_report(&j);
        let twice = normalize_report(&once);
        assert_eq!(once, twice);
        assert_eq!(once.render(), twice.render());
    }
}
