//! Seeded property tests for the golden-report normalizer: for arbitrary
//! JSON documents — volatile keys sprinkled at every depth — normalization
//! is idempotent, leaves non-volatile content untouched, and survives a
//! render/parse round trip byte-identically.

use hdoutlier_json::normalize::{normalize_report, normalize_with, VOLATILE_KEYS};
use hdoutlier_json::Json;
use hdoutlier_rng::rngs::StdRng;
use hdoutlier_rng::{Rng, SeedableRng};

/// Generates an arbitrary JSON value of bounded depth. Volatile keys from
/// the default set are deliberately mixed in among plain keys so the scrub
/// path is exercised at every level.
fn arbitrary(rng: &mut StdRng, depth: usize) -> Json {
    let kind = if depth == 0 {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(0..6)
    };
    match kind {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0..2) == 0),
        2 => Json::Number(match rng.gen_range(0..4) {
            0 => 0.0,
            1 => -(rng.gen_range(0..1_000_000) as f64) / 128.0,
            2 => rng.gen_range(0..u32::MAX as usize) as f64,
            _ => rng.gen::<f64>() * 1e9,
        }),
        3 => {
            let len = rng.gen_range(0..12);
            Json::String(
                (0..len)
                    .map(|_| rng.gen_range(b' '..b'~') as char)
                    .collect(),
            )
        }
        4 => {
            let len = rng.gen_range(0..5);
            Json::Array((0..len).map(|_| arbitrary(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..6);
            Json::Object(
                (0..len)
                    .map(|i| {
                        // Roughly a third of keys are volatile.
                        let key = if rng.gen_range(0..3) == 0 {
                            VOLATILE_KEYS[rng.gen_range(0..VOLATILE_KEYS.len())].to_string()
                        } else {
                            format!("key_{i}_{}", rng.gen_range(0..100))
                        };
                        (key, arbitrary(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn normalize_is_idempotent_on_arbitrary_documents() {
    let mut rng = StdRng::seed_from_u64(0x5ce9a410);
    for case in 0..500 {
        let doc = arbitrary(&mut rng, 4);
        let once = normalize_report(&doc);
        let twice = normalize_report(&once);
        assert_eq!(once, twice, "case {case}: {}", doc.render());
        // Byte-level too: rendering a fixed point is a fixed point.
        assert_eq!(once.pretty(), twice.pretty(), "case {case}");
    }
}

#[test]
fn normalize_round_trips_through_render_and_parse() {
    let mut rng = StdRng::seed_from_u64(0xfeed5eed);
    for case in 0..200 {
        let doc = arbitrary(&mut rng, 3);
        let normalized = normalize_report(&doc);
        let rendered = normalized.pretty();
        let reparsed = Json::parse(&rendered).unwrap_or_else(|e| panic!("case {case}: {e}"));
        // A golden file read back from disk normalizes to itself.
        assert_eq!(
            normalize_report(&reparsed).pretty(),
            rendered,
            "case {case}"
        );
    }
}

#[test]
fn documents_without_volatile_keys_are_unchanged() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..200 {
        let doc = arbitrary(&mut rng, 3);
        // With an empty volatile set nothing may change, whatever the doc.
        assert_eq!(normalize_with(&doc, &[]), doc);
    }
}
