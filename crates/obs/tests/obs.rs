//! Integration tests for the observability crate: concurrency behaviour
//! and the public-surface contracts the rest of the workspace relies on.

use hdoutlier_obs as obs;
use std::sync::Arc;
use std::thread;

#[test]
fn counter_is_atomic_under_thread_fanout() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = obs::Registry::new();
    let counter = registry.counter("hdoutlier.test.fanout");
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_is_consistent_under_thread_fanout() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5_000;
    let registry = obs::Registry::new();
    let hist = registry.histogram_with_bounds("hdoutlier.test.lat", &[10.0, 100.0, 1000.0]);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = hist.clone();
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record((t * PER_THREAD + i) as f64 % 1500.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, (THREADS * PER_THREAD) as u64);
    let bucket_total: u64 = hist.buckets().iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, snap.count);
    assert_eq!(snap.min, 0.0);
    assert_eq!(snap.max, 1499.0);
}

#[test]
fn histogram_quantiles_match_known_distribution() {
    let registry = obs::Registry::new();
    let hist = registry.histogram_with_bounds("hdoutlier.test.q", &[1.0, 2.0, 4.0, 8.0, 16.0]);
    // 1000 samples uniform over (0, 10]: ranks put p50 at bound 8 clamped
    // by the data layout below.
    for i in 1..=1000u32 {
        hist.record(f64::from(i) / 100.0); // 0.01 ..= 10.0
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, 1000);
    // Rank 500 → value 5.0 → bucket (4, 8] → reported as 8.0.
    assert_eq!(snap.p50, 8.0);
    // Rank 900 → value 9.0 → bucket (8, 16] → bound 16 clamps to max 10.
    assert_eq!(snap.p90, 10.0);
    assert_eq!(snap.p99, 10.0);
    assert_eq!(snap.min, 0.01);
    assert_eq!(snap.max, 10.0);
}

#[test]
fn ndjson_sink_escapes_hostile_strings() {
    let sink = obs::CaptureSink::default();
    let fields = [
        ("path", obs::Value::Str("C:\\data\\\"quoted\"\nline")),
        ("tab", obs::Value::Str("a\tb")),
        ("ctl", obs::Value::Str("\u{0}bell\u{7}")),
    ];
    obs::Sink::emit(
        &sink,
        &obs::EventRecord {
            ts_us: 1,
            level: obs::Level::Warn,
            target: "hdoutlier.test",
            name: "esc\"aped",
            fields: &fields,
        },
    );
    let lines = sink.lines();
    assert_eq!(lines.len(), 1);
    let line = &lines[0];
    assert!(line.contains("\"event\":\"esc\\\"aped\""), "{line}");
    assert!(
        line.contains("\"path\":\"C:\\\\data\\\\\\\"quoted\\\"\\nline\""),
        "{line}"
    );
    assert!(line.contains("\"tab\":\"a\\tb\""), "{line}");
    assert!(line.contains("\"ctl\":\"\\u0000bell\\u0007\""), "{line}");
    // No raw control bytes survive.
    assert!(line.chars().all(|c| c as u32 >= 0x20), "{line}");
}

#[test]
fn level_parsing_is_case_insensitive() {
    assert_eq!("INFO".parse::<obs::Level>().unwrap(), obs::Level::Info);
    assert_eq!("Trace".parse::<obs::Level>().unwrap(), obs::Level::Trace);
    assert!("noisy".parse::<obs::Level>().is_err());
}

#[test]
fn global_registry_handles_are_shared() {
    // The global registry is process-wide and append-only; use a unique
    // name so parallel tests cannot collide on kind.
    let name = "hdoutlier.test.obs_integration.shared";
    let a = obs::registry().counter(name);
    let b = obs::registry().counter(name);
    let before = a.get();
    b.add(3);
    assert_eq!(a.get(), before + 3);
    assert!(obs::registry().snapshot().iter().any(|m| m.name == name));
}

#[test]
fn scrape_while_recording_is_consistent() {
    // A live /metrics scrape renders from the same registry the hot path
    // is writing to. Hammer a private registry from writer threads while a
    // reader renders Prometheus text in a loop: every render must parse
    // into internally consistent series (cumulative buckets monotone,
    // +Inf bucket == _count), never torn or panicking.
    static SCRAPED: obs::Registry = obs::Registry::new();
    const WRITERS: usize = 4;
    const PER_THREAD: u64 = 20_000;
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            thread::spawn(|| {
                let c = SCRAPED.counter("hdoutlier.test.race.events");
                let h = SCRAPED.histogram_with_bounds("hdoutlier.test.race.lat", &[1.0, 10.0]);
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record((i % 20) as f64);
                }
            })
        })
        .collect();
    let reader = thread::spawn(|| {
        let mut renders = 0u32;
        for _ in 0..200 {
            let text = SCRAPED.render_prometheus();
            let buckets: Vec<u64> = text
                .lines()
                .filter(|l| l.starts_with("hdoutlier_test_race_lat_bucket"))
                .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
                .collect();
            if buckets.is_empty() {
                continue; // histogram not registered yet
            }
            assert!(
                buckets.windows(2).all(|w| w[0] <= w[1]),
                "non-cumulative buckets: {buckets:?}"
            );
            let count: u64 = text
                .lines()
                .find(|l| l.starts_with("hdoutlier_test_race_lat_count"))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(*buckets.last().unwrap(), count, "+Inf bucket != count");
            renders += 1;
        }
        renders
    });
    for w in writers {
        w.join().unwrap();
    }
    assert!(reader.join().unwrap() > 0, "reader never saw the histogram");
    // Quiesced totals line up exactly.
    let text = SCRAPED.render_prometheus();
    assert!(
        text.contains(&format!(
            "hdoutlier_test_race_events_total {}",
            WRITERS as u64 * PER_THREAD
        )),
        "{text}"
    );
}

#[test]
fn labeled_exposition_escapes_hostile_label_values() {
    // Prometheus label values must escape backslash, double quote, and
    // newline — and nothing else may leak a raw control byte into the
    // exposition.
    let registry = obs::Registry::new();
    let requests = registry.counter_vec("hdoutlier.test.esc.requests", &["route", "status"]);
    requests.with(&["/a\\b\"c\nd", "200"]).add(3);
    let text = registry.render_prometheus();
    assert!(
        text.contains(
            "hdoutlier_test_esc_requests_total{route=\"/a\\\\b\\\"c\\nd\",status=\"200\"} 3"
        ),
        "{text}"
    );
    assert!(text.lines().all(|l| l.chars().all(|c| c as u32 >= 0x20)));
}

#[test]
fn labeled_exposition_orders_series_deterministically() {
    // Children render sorted by label values regardless of intern order,
    // and one family emits exactly one HELP/TYPE header — so consecutive
    // scrapes of a quiesced registry are byte-identical.
    let registry = obs::Registry::new();
    let requests = registry.counter_vec("hdoutlier.test.order.req", &["route", "status"]);
    let latency =
        registry.histogram_vec_with_bounds("hdoutlier.test.order.lat", &["route"], &[1.0, 10.0]);
    for (route, status) in [("/z", "500"), ("/a", "200"), ("/m", "404"), ("/a", "503")] {
        requests.with(&[route, status]).inc();
    }
    latency.with(&["/z"]).record(5.0);
    latency.with(&["/a"]).record(0.5);

    let text = registry.render_prometheus();
    assert_eq!(text, registry.render_prometheus(), "scrape not stable");
    let series: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("hdoutlier_test_order_req_total{"))
        .collect();
    assert_eq!(
        series,
        [
            "hdoutlier_test_order_req_total{route=\"/a\",status=\"200\"} 1",
            "hdoutlier_test_order_req_total{route=\"/a\",status=\"503\"} 1",
            "hdoutlier_test_order_req_total{route=\"/m\",status=\"404\"} 1",
            "hdoutlier_test_order_req_total{route=\"/z\",status=\"500\"} 1",
        ]
    );
    assert_eq!(
        text.matches("# TYPE hdoutlier_test_order_req_total counter")
            .count(),
        1
    );
    assert_eq!(
        text.matches("# TYPE hdoutlier_test_order_lat histogram")
            .count(),
        1
    );
    // Labeled histogram series keep `le` as the last label and stay
    // grouped per label set.
    assert!(
        text.contains("hdoutlier_test_order_lat_bucket{route=\"/a\",le=\"1\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("hdoutlier_test_order_lat_count{route=\"/z\"} 1"),
        "{text}"
    );
}

#[test]
fn scrape_race_on_labeled_family_stays_consistent() {
    // The labeled sibling of scrape_while_recording_is_consistent: writer
    // threads hammer distinct label sets of one family (interning new
    // children mid-race) while a reader renders; every render must show
    // internally consistent per-label-set histogram series.
    static LABELED: obs::Registry = obs::Registry::new();
    const WRITERS: usize = 4;
    const PER_THREAD: u64 = 10_000;
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            thread::spawn(move || {
                let c = LABELED.counter_vec("hdoutlier.test.lrace.req", &["route", "status"]);
                let h = LABELED.histogram_vec_with_bounds(
                    "hdoutlier.test.lrace.lat",
                    &["route"],
                    &[1.0, 10.0],
                );
                let route = ["/a", "/b", "/c", "/d"][t];
                let counter = c.with(&[route, "200"]);
                let hist = h.with(&[route]);
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record((i % 20) as f64);
                }
            })
        })
        .collect();
    let reader = thread::spawn(|| {
        let mut renders = 0u32;
        for _ in 0..200 {
            let text = LABELED.render_prometheus();
            for route in ["/a", "/b", "/c", "/d"] {
                let prefix = format!("hdoutlier_test_lrace_lat_bucket{{route=\"{route}\",");
                let buckets: Vec<u64> = text
                    .lines()
                    .filter(|l| l.starts_with(&prefix))
                    .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
                    .collect();
                if buckets.is_empty() {
                    continue; // this child not interned yet
                }
                assert!(
                    buckets.windows(2).all(|w| w[0] <= w[1]),
                    "non-cumulative buckets for {route}: {buckets:?}"
                );
                let count: u64 = text
                    .lines()
                    .find(|l| {
                        l.starts_with(&format!(
                            "hdoutlier_test_lrace_lat_count{{route=\"{route}\""
                        ))
                    })
                    .and_then(|l| l.rsplit(' ').next())
                    .unwrap()
                    .parse()
                    .unwrap();
                assert_eq!(*buckets.last().unwrap(), count, "+Inf != count for {route}");
                renders += 1;
            }
        }
        renders
    });
    for w in writers {
        w.join().unwrap();
    }
    assert!(reader.join().unwrap() > 0, "reader never saw a child");
    let text = LABELED.render_prometheus();
    for route in ["/a", "/b", "/c", "/d"] {
        assert!(
            text.contains(&format!(
                "hdoutlier_test_lrace_req_total{{route=\"{route}\",status=\"200\"}} {PER_THREAD}"
            )),
            "{text}"
        );
    }
}

#[test]
fn metrics_server_serves_live_registry_over_tcp() {
    use std::io::{Read, Write};
    static SERVED: obs::Registry = obs::Registry::new();
    SERVED.counter("hdoutlier.test.live.hits").add(11);
    let server = obs::MetricsServer::serve("127.0.0.1:0", &SERVED).expect("bind");
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("response");
    assert!(body.contains("hdoutlier_test_live_hits_total 11"), "{body}");
    server.shutdown();
}

#[test]
fn span_guard_emits_elapsed_into_capture() {
    // Serializes against other dispatcher users in this binary only; unit
    // tests inside the crate use their own lock, so keep this tolerant:
    // assert on our own event's presence, not on total line counts.
    let capture = Arc::new(obs::CaptureSink::default());
    obs::install(capture.clone(), obs::Level::Debug);
    {
        let _span = obs::span(obs::Level::Debug, "hdoutlier.test", "spanned_work");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    obs::uninstall();
    let lines = capture.lines();
    let ours: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"spanned_work\""))
        .collect();
    assert_eq!(ours.len(), 1, "{lines:?}");
    assert!(ours[0].contains("\"elapsed_us\":"), "{}", ours[0]);
}
