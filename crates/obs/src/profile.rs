//! Continuous profiling: a span-stack sampling profiler.
//!
//! Every thread that opens a [`crate::Span`] (or the lighter
//! [`profile_span`]) while a [`ProfileSession`] is live publishes its
//! current span stack to a per-thread slot in a global registry. A sampler
//! thread wakes at a configurable rate, snapshots every slot, and
//! accumulates collapsed-stack counts. The result renders as:
//!
//! - **folded-stack text** ([`ProfileReport::to_folded`]) — one line per
//!   distinct stack, `hdoutlier.core.search;hdoutlier.core.intersect 412`,
//!   the format `inferno`, `flamegraph.pl`, and speedscope ingest;
//! - an **SVG flamegraph** ([`ProfileReport::to_svg`]) rendered in-tree,
//!   no external tool required;
//! - **JSON** ([`ProfileReport::to_json`]) for programmatic consumers.
//!
//! When the counting allocator ([`crate::CountingAllocator`]) is installed,
//! per-thread allocation byte deltas are attributed to the stack observed
//! at each tick, giving the folded output a bytes-weighted twin
//! ([`ProfileReport::to_folded_bytes`]).
//!
//! # Design constraints
//!
//! - **Disabled cost**: [`profile_enabled`] is one relaxed atomic load, and
//!   it is the only thing span creation pays while no session is live.
//! - **No locks on the hot path**: a thread publishes its stack through a
//!   seqlock-style slot (version counter odd while writing, frame words as
//!   plain relaxed atomics). The sampler validates the version before and
//!   after copying; a torn read is retried a few times, then skipped and
//!   counted — never blocked on.
//! - **Memory safety without trust**: stacks store small integer frame ids,
//!   not pointers. Ids index a write-once intern table of
//!   `(&'static str, &'static str)` pairs, so even a stale or mixed read
//!   can at worst miscount one sample; it can never fabricate a reference.
//! - **Bounded state**: slots are recycled through a free list when their
//!   thread exits (the scoped worker pool creates threads per call), stack
//!   depth is capped at [`MAX_DEPTH`] (deeper pushes are counted, not
//!   stored), and the intern table is fixed-size (overflow frames collapse
//!   into one sentinel).
//!
//! Only spans opened *after* a session starts appear on the sampled
//! stacks: enabling a session does not retroactively publish frames that
//! were created while profiling was off.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Maximum stored stack depth per thread. Pushes beyond it are counted in
/// the slot's `truncated` tally and the sample keeps the outermost frames.
pub const MAX_DEPTH: usize = 64;

// ---------------------------------------------------------------------------
// Frame interning: (target, name) -> small id, write-once, lock-free.
// ---------------------------------------------------------------------------

const INTERN_BUCKETS: usize = 512;
const PROBE_LIMIT: usize = 32;

const STATE_EMPTY: u32 = 0;
const STATE_CLAIMED: u32 = 1;
const STATE_READY: u32 = 2;

/// The id returned when the intern table is full; rendered as
/// `hdoutlier.profile.overflow`.
const OVERFLOW_ID: u32 = u32::MAX;

struct InternSlot {
    state: AtomicU32,
    target: AtomicPtr<u8>,
    target_len: AtomicUsize,
    name: AtomicPtr<u8>,
    name_len: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)] // used only as an array initializer
const EMPTY_INTERN: InternSlot = InternSlot {
    state: AtomicU32::new(STATE_EMPTY),
    target: AtomicPtr::new(std::ptr::null_mut()),
    target_len: AtomicUsize::new(0),
    name: AtomicPtr::new(std::ptr::null_mut()),
    name_len: AtomicUsize::new(0),
};

static INTERN: [InternSlot; INTERN_BUCKETS] = [EMPTY_INTERN; INTERN_BUCKETS];

/// Interns a frame. `'static` strings have stable addresses, so the pointer
/// pair identifies a call-site frame; equal ids mean equal frames (distinct
/// `'static` copies of identical text would take distinct ids, which only
/// splits a line in the folded output, never corrupts it).
fn intern(target: &'static str, name: &'static str) -> u32 {
    let tp = target.as_ptr() as *mut u8;
    let np = name.as_ptr() as *mut u8;
    // Fibonacci-style pointer-pair hash; buckets is a power of two.
    let h = (tp as usize)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((np as usize).wrapping_mul(0xff51_afd7_ed55_8ccd));
    for probe in 0..PROBE_LIMIT {
        let idx = h.wrapping_add(probe) & (INTERN_BUCKETS - 1);
        let slot = &INTERN[idx];
        loop {
            match slot.state.load(Ordering::Acquire) {
                STATE_READY => {
                    if slot.target.load(Ordering::Relaxed) == tp
                        && slot.target_len.load(Ordering::Relaxed) == target.len()
                        && slot.name.load(Ordering::Relaxed) == np
                        && slot.name_len.load(Ordering::Relaxed) == name.len()
                    {
                        return idx as u32;
                    }
                    break; // occupied by another frame: next probe
                }
                STATE_EMPTY => {
                    if slot
                        .state
                        .compare_exchange(
                            STATE_EMPTY,
                            STATE_CLAIMED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        slot.target.store(tp, Ordering::Relaxed);
                        slot.target_len.store(target.len(), Ordering::Relaxed);
                        slot.name.store(np, Ordering::Relaxed);
                        slot.name_len.store(name.len(), Ordering::Relaxed);
                        slot.state.store(STATE_READY, Ordering::Release);
                        return idx as u32;
                    }
                    // Lost the claim race; re-read the state.
                }
                _ => std::hint::spin_loop(), // claimant finishes in a few stores
            }
        }
    }
    OVERFLOW_ID
}

/// Resolves an id back to its frame. `None` for the overflow sentinel, ids
/// that were never interned, or torn ids read from a racing stack — callers
/// render those as a placeholder rather than trusting them.
fn resolve(id: u32) -> Option<(&'static str, &'static str)> {
    let idx = id as usize;
    if idx >= INTERN_BUCKETS {
        return None;
    }
    let slot = &INTERN[idx];
    if slot.state.load(Ordering::Acquire) != STATE_READY {
        return None;
    }
    // SAFETY: the pointer/len words were stored exactly once, from a live
    // `&'static str`, before the Release store of STATE_READY that the
    // Acquire load above synchronizes with; they are never written again.
    unsafe {
        let target = std::str::from_utf8_unchecked(std::slice::from_raw_parts(
            slot.target.load(Ordering::Relaxed),
            slot.target_len.load(Ordering::Relaxed),
        ));
        let name = std::str::from_utf8_unchecked(std::slice::from_raw_parts(
            slot.name.load(Ordering::Relaxed),
            slot.name_len.load(Ordering::Relaxed),
        ));
        Some((target, name))
    }
}

// ---------------------------------------------------------------------------
// Per-thread stack slots.
// ---------------------------------------------------------------------------

/// One thread's published span stack plus its allocation tally.
pub(crate) struct ThreadSlot {
    /// Seqlock version: odd while the owning thread is mutating.
    version: AtomicU32,
    /// Logical depth; may exceed [`MAX_DEPTH`] (excess frames unstored).
    depth: AtomicU32,
    frames: [AtomicU32; MAX_DEPTH],
    /// Pushes that arrived with the frame array already full.
    truncated: AtomicU64,
    /// Bytes allocated by this thread while profiling was enabled
    /// (maintained by the counting allocator; monotone).
    pub(crate) alloc_bytes: AtomicU64,
}

impl ThreadSlot {
    fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array initializer
        const ZERO: AtomicU32 = AtomicU32::new(0);
        ThreadSlot {
            version: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: [ZERO; MAX_DEPTH],
            truncated: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
        }
    }
}

/// Every slot ever created. Slots are never removed (the sampler may hold
/// a clone), but their *indices* recycle through [`FREE_SLOTS`] when the
/// owning thread exits, so total slot count is bounded by peak concurrent
/// threads, not threads-ever-created.
static SLOTS: Mutex<Vec<Arc<ThreadSlot>>> = Mutex::new(Vec::new());
static FREE_SLOTS: Mutex<Vec<usize>> = Mutex::new(Vec::new());

thread_local! {
    /// Raw pointer to this thread's slot. Const-initialized (no destructor,
    /// so it stays readable during thread teardown — the allocator reads
    /// it). The pointee is kept alive forever by [`SLOTS`].
    static CURRENT: Cell<*const ThreadSlot> = const { Cell::new(std::ptr::null()) };
    /// Returns the slot index to the free list when the thread exits.
    static LEASE: SlotLease = const { SlotLease(Cell::new(usize::MAX)) };
}

struct SlotLease(Cell<usize>);

impl Drop for SlotLease {
    fn drop(&mut self) {
        let index = self.0.get();
        if index != usize::MAX {
            if let Ok(mut free) = FREE_SLOTS.lock() {
                free.push(index);
            }
        }
    }
}

/// The calling thread's slot, creating (or recycling) one on first use.
fn current_slot() -> &'static ThreadSlot {
    let ptr = CURRENT.with(Cell::get);
    if !ptr.is_null() {
        // SAFETY: slot Arcs live in SLOTS for the life of the process.
        return unsafe { &*ptr };
    }
    acquire_slot()
}

#[cold]
fn acquire_slot() -> &'static ThreadSlot {
    let recycled = FREE_SLOTS.lock().expect("profile free list").pop();
    let mut slots = SLOTS.lock().expect("profile slot registry");
    let index = match recycled {
        Some(index) => index,
        None => {
            slots.push(Arc::new(ThreadSlot::new()));
            slots.len() - 1
        }
    };
    let slot = &slots[index];
    // A recycled slot starts a fresh stack; its alloc tally keeps running
    // (the sampler tracks deltas, so at most one tick of bytes can be
    // misattributed across the handover).
    slot.depth.store(0, Ordering::Relaxed);
    slot.version.fetch_add(2, Ordering::Release);
    let ptr = Arc::as_ptr(slot);
    drop(slots);
    CURRENT.with(|c| c.set(ptr));
    LEASE.with(|l| l.0.set(index));
    // SAFETY: as above — the Arc in SLOTS is never dropped.
    unsafe { &*ptr }
}

// ---------------------------------------------------------------------------
// The enable gate and the push/pop hot path.
// ---------------------------------------------------------------------------

/// Count of live [`ProfileSession`]s. Nonzero means spans publish frames.
static ACTIVE_SESSIONS: AtomicU32 = AtomicU32::new(0);

/// Whether a profiling session is live. One relaxed atomic load — the
/// entire cost span creation pays when nobody is profiling.
#[inline]
pub fn profile_enabled() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) != 0
}

/// Publishes a frame onto the calling thread's stack. Callers must pair
/// with [`pop_frame`] (the span guards do this via their captured
/// `profiled` flag, so an enable/disable mid-span never unbalances).
pub(crate) fn push_frame(target: &'static str, name: &'static str) {
    let slot = current_slot();
    let id = intern(target, name);
    let depth = slot.depth.load(Ordering::Relaxed) as usize;
    let v = slot.version.load(Ordering::Relaxed);
    slot.version.store(v.wrapping_add(1), Ordering::Relaxed);
    if depth < MAX_DEPTH {
        slot.frames[depth].store(id, Ordering::Relaxed);
    } else {
        slot.truncated.fetch_add(1, Ordering::Relaxed);
    }
    slot.depth.store(depth as u32 + 1, Ordering::Relaxed);
    slot.version.store(v.wrapping_add(2), Ordering::Release);
}

/// Removes the innermost frame. Tolerates an empty stack (a span moved to
/// another thread) rather than corrupting a sibling's frames.
pub(crate) fn pop_frame() {
    let slot = current_slot();
    let depth = slot.depth.load(Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    let v = slot.version.load(Ordering::Relaxed);
    slot.version.store(v.wrapping_add(1), Ordering::Relaxed);
    slot.depth.store(depth - 1, Ordering::Relaxed);
    slot.version.store(v.wrapping_add(2), Ordering::Release);
}

/// Credits `bytes` of allocation to the calling thread's slot. Called from
/// the counting allocator, so it must not allocate or lock: it only reads
/// the const-initialized TLS cell and bumps an atomic. Threads that never
/// opened a profiled span have no slot; their bytes stay in the process
/// totals but are unattributed in the profile.
pub(crate) fn note_alloc(bytes: u64) {
    if !profile_enabled() {
        return;
    }
    let _ = CURRENT.try_with(|c| {
        let ptr = c.get();
        if !ptr.is_null() {
            // SAFETY: slot Arcs in SLOTS are never dropped.
            unsafe { (*ptr).alloc_bytes.fetch_add(bytes, Ordering::Relaxed) };
        }
    });
}

/// A profiler-only scope guard for hot paths: publishes a stack frame
/// while a session is live and does *nothing else* — no event, no trace
/// record, no `Instant::now`. Disabled cost is one relaxed atomic load.
#[derive(Debug)]
pub struct ProfileGuard {
    live: bool,
}

/// Opens a [`ProfileGuard`]. Use this (instead of [`crate::span`]) inside
/// recursive or per-record hot loops where an event per iteration would be
/// noise but profiler visibility is the point.
#[inline]
pub fn profile_span(target: &'static str, name: &'static str) -> ProfileGuard {
    let live = profile_enabled();
    if live {
        push_frame(target, name);
    }
    ProfileGuard { live }
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        if self.live {
            pop_frame();
        }
    }
}

// ---------------------------------------------------------------------------
// The sampler.
// ---------------------------------------------------------------------------

/// Copies one slot's stack if a consistent view is available within a few
/// retries. Frame ids are plain integers, so even a racy copy is memory
/// safe; the version check exists to keep samples *coherent*.
fn snapshot_stack(slot: &ThreadSlot) -> Option<Vec<u32>> {
    for _ in 0..4 {
        let v1 = slot.version.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            std::hint::spin_loop();
            continue;
        }
        let depth = (slot.depth.load(Ordering::Relaxed) as usize).min(MAX_DEPTH);
        let mut frames = Vec::with_capacity(depth);
        for cell in &slot.frames[..depth] {
            frames.push(cell.load(Ordering::Relaxed));
        }
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.version.load(Ordering::Relaxed) == v1 {
            return Some(frames);
        }
    }
    None
}

#[derive(Debug, Default, Clone, Copy)]
struct StackStat {
    samples: u64,
    bytes: u64,
}

#[derive(Debug, Default)]
struct SessionData {
    /// Root-first frame-id paths. The empty path holds allocation bytes
    /// observed while a thread had no open span.
    stacks: BTreeMap<Vec<u32>, StackStat>,
    ticks: u64,
    samples: u64,
    skipped: u64,
}

#[derive(Debug)]
struct SessionShared {
    stop: AtomicBool,
    hz: u32,
    data: Mutex<SessionData>,
}

fn sampler_loop(shared: Arc<SessionShared>) {
    let period = Duration::from_nanos(1_000_000_000 / shared.hz as u64);
    // Previous alloc_bytes reading per slot (keyed by slot address), for
    // per-tick byte deltas. A slot first seen mid-session contributes no
    // retroactive bytes.
    let mut prev_bytes: HashMap<usize, u64> = HashMap::new();
    loop {
        let slots: Vec<Arc<ThreadSlot>> = SLOTS.lock().expect("profile slot registry").clone();
        let mut tick = Vec::with_capacity(slots.len());
        for slot in &slots {
            let key = Arc::as_ptr(slot) as usize;
            let bytes_now = slot.alloc_bytes.load(Ordering::Relaxed);
            let prev = prev_bytes.insert(key, bytes_now).unwrap_or(bytes_now);
            let delta = bytes_now.saturating_sub(prev);
            tick.push((snapshot_stack(slot), delta));
        }
        {
            let mut data = shared.data.lock().expect("profile session data");
            data.ticks += 1;
            for (stack, bytes) in tick {
                match stack {
                    Some(frames) => {
                        if frames.is_empty() && bytes == 0 {
                            continue; // idle thread, nothing to record
                        }
                        let counted = !frames.is_empty();
                        let stat = data.stacks.entry(frames).or_default();
                        if counted {
                            stat.samples += 1;
                        }
                        stat.bytes += bytes;
                        if counted {
                            data.samples += 1;
                        }
                    }
                    None => {
                        data.skipped += 1;
                        if bytes > 0 {
                            data.stacks.entry(Vec::new()).or_default().bytes += bytes;
                        }
                    }
                }
            }
        }
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(period);
    }
}

// ---------------------------------------------------------------------------
// Sessions and reports.
// ---------------------------------------------------------------------------

/// A live sampling session. Spans publish stack frames while at least one
/// session exists; each session accumulates its own sample counts, so a
/// `/profile` request can overlap a `--profile-out` run. Stop (or drop) to
/// collect the [`ProfileReport`].
#[derive(Debug)]
pub struct ProfileSession {
    shared: Arc<SessionShared>,
    started: Instant,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProfileSession {
    /// Starts sampling at `hz` (clamped to 1..=1000). The first snapshot
    /// is taken immediately, so even sessions shorter than one period see
    /// whatever stacks are live.
    pub fn start(hz: u32) -> ProfileSession {
        let hz = hz.clamp(1, 1000);
        let shared = Arc::new(SessionShared {
            stop: AtomicBool::new(false),
            hz,
            data: Mutex::new(SessionData::default()),
        });
        // Enable *before* the sampler starts so its first snapshot can
        // already see freshly-pushed frames.
        ACTIVE_SESSIONS.fetch_add(1, Ordering::SeqCst);
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("hdoutlier-profiler".to_string())
            .spawn(move || sampler_loop(worker))
            .expect("spawn profiler sampler");
        ProfileSession {
            shared,
            started: Instant::now(),
            handle: Some(handle),
        }
    }

    /// The sampling rate the session runs at.
    pub fn hz(&self) -> u32 {
        self.shared.hz
    }

    /// Stops the sampler, joins it, and returns the accumulated report.
    pub fn stop(mut self) -> ProfileReport {
        self.finish().expect("session stopped twice")
    }

    fn finish(&mut self) -> Option<ProfileReport> {
        let handle = self.handle.take()?;
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::SeqCst);
        self.shared.stop.store(true, Ordering::Release);
        let _ = handle.join();
        let duration = self.started.elapsed();
        let data = std::mem::take(&mut *self.shared.data.lock().expect("profile session data"));
        let truncated: u64 = {
            let slots = SLOTS.lock().expect("profile slot registry");
            slots
                .iter()
                .map(|s| s.truncated.load(Ordering::Relaxed))
                .sum()
        };
        let entries: Vec<StackEntry> = data
            .stacks
            .iter()
            .map(|(frames, stat)| StackEntry {
                frames: frames.iter().map(|&id| render_frame(id)).collect(),
                samples: stat.samples,
                bytes: stat.bytes,
            })
            .collect();
        let report = ProfileReport {
            hz: self.shared.hz,
            duration,
            ticks: data.ticks,
            samples: data.samples,
            skipped: data.skipped,
            truncated,
            entries,
        };
        let r = crate::metrics::registry();
        r.counter("hdoutlier.profile.sessions").inc();
        r.counter("hdoutlier.profile.samples").add(report.samples);
        r.counter("hdoutlier.profile.ticks").add(report.ticks);
        r.counter("hdoutlier.profile.skipped").add(report.skipped);
        Some(report)
    }
}

impl Drop for ProfileSession {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Runs a session for `duration` at `hz` and returns its report — the
/// blocking helper behind `GET /profile?seconds=N`.
pub fn profile_for(duration: Duration, hz: u32) -> ProfileReport {
    let session = ProfileSession::start(hz);
    std::thread::sleep(duration);
    session.stop()
}

/// One frame of the stack rendered as `target.name`; unresolvable ids (the
/// intern-table overflow sentinel or a torn read) collapse into a
/// placeholder instead of being dropped.
fn render_frame(id: u32) -> String {
    match resolve(id) {
        Some((target, name)) => format!("{target}.{name}"),
        None => "hdoutlier.profile.overflow".to_string(),
    }
}

/// One distinct sampled stack with its weights.
#[derive(Debug, Clone)]
pub struct StackEntry {
    /// Frames root-first, each `target.name`. Empty for allocation bytes
    /// observed outside any span.
    pub frames: Vec<String>,
    /// Ticks on which a thread was observed inside exactly this stack.
    pub samples: u64,
    /// Allocation bytes attributed to this stack (zero unless the counting
    /// allocator is installed).
    pub bytes: u64,
}

/// The result of a sampling session.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Sampling rate the session ran at.
    pub hz: u32,
    /// Wall-clock session length.
    pub duration: Duration,
    /// Sampler wakeups.
    pub ticks: u64,
    /// Total stack samples across all threads (a tick samples every live
    /// thread, so this can exceed `ticks`).
    pub samples: u64,
    /// Snapshots abandoned because a thread kept its seqlock busy.
    pub skipped: u64,
    /// Cumulative frame pushes beyond [`MAX_DEPTH`] (process lifetime).
    pub truncated: u64,
    entries: Vec<StackEntry>,
}

/// Escapes the XML-special characters for SVG text/attribute content.
fn escape_xml(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

impl ProfileReport {
    /// Builds a report from pre-rendered entries (tests, custom sources).
    pub fn from_entries(hz: u32, duration: Duration, entries: Vec<StackEntry>) -> ProfileReport {
        let samples = entries.iter().map(|e| e.samples).sum();
        ProfileReport {
            hz,
            duration,
            ticks: 0,
            samples,
            skipped: 0,
            truncated: 0,
            entries,
        }
    }

    /// The distinct sampled stacks, deterministic order.
    pub fn entries(&self) -> &[StackEntry] {
        &self.entries
    }

    /// Whether any allocation bytes were attributed (i.e. the counting
    /// allocator is installed and something allocated during the session).
    pub fn has_bytes(&self) -> bool {
        self.entries.iter().any(|e| e.bytes > 0)
    }

    fn folded_with(&self, weight: impl Fn(&StackEntry) -> u64) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .filter(|e| weight(e) > 0)
            .map(|e| {
                let stack = if e.frames.is_empty() {
                    "(outside spans)".to_string()
                } else {
                    e.frames.join(";")
                };
                format!("{stack} {}\n", weight(e))
            })
            .collect();
        lines.sort();
        lines.concat()
    }

    /// Collapsed-stack text weighted by sample counts: one
    /// `frame;frame;… count` line per distinct stack, sorted, trailing
    /// newline. Feed to `inferno-flamegraph`, `flamegraph.pl`, or
    /// speedscope as-is.
    pub fn to_folded(&self) -> String {
        self.folded_with(|e| e.samples)
    }

    /// The bytes-weighted twin of [`ProfileReport::to_folded`]: counts are
    /// allocated bytes attributed at sample time. Empty unless the
    /// counting allocator is installed.
    pub fn to_folded_bytes(&self) -> String {
        self.folded_with(|e| e.bytes)
    }

    /// The report as a JSON document: session header plus one object per
    /// distinct stack (`{"stack":[…],"samples":n,"bytes":m}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 96 + 128);
        out.push_str("{\"hz\":");
        out.push_str(&self.hz.to_string());
        out.push_str(",\"duration_us\":");
        out.push_str(&(self.duration.as_micros() as u64).to_string());
        out.push_str(",\"ticks\":");
        out.push_str(&self.ticks.to_string());
        out.push_str(",\"samples\":");
        out.push_str(&self.samples.to_string());
        out.push_str(",\"skipped\":");
        out.push_str(&self.skipped.to_string());
        out.push_str(",\"truncated\":");
        out.push_str(&self.truncated.to_string());
        out.push_str(",\"stacks\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"stack\":[");
            for (j, frame) in e.frames.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                crate::sink::escape_json_into(&mut out, frame);
                out.push('"');
            }
            out.push_str("],\"samples\":");
            out.push_str(&e.samples.to_string());
            out.push_str(",\"bytes\":");
            out.push_str(&e.bytes.to_string());
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders a self-contained SVG flamegraph (sample-weighted). Widths
    /// are proportional to inclusive sample counts; every rect carries a
    /// `<title>` tooltip with the frame, count, and share. Rendered
    /// in-tree so a profile is viewable without any external tooling.
    pub fn to_svg(&self) -> String {
        #[derive(Default)]
        struct Node {
            children: BTreeMap<String, Node>,
            total: u64,
        }
        let mut root = Node::default();
        for e in &self.entries {
            if e.samples == 0 || e.frames.is_empty() {
                continue;
            }
            root.total += e.samples;
            let mut node = &mut root;
            for frame in &e.frames {
                node = node.children.entry(frame.clone()).or_default();
                node.total += e.samples;
            }
        }

        const WIDTH: f64 = 1200.0;
        const ROW: f64 = 17.0;
        const PAD: f64 = 1.0;

        fn depth_of(node: &Node) -> usize {
            1 + node
                .children
                .values()
                .map(depth_of)
                .max()
                .unwrap_or_default()
        }
        let rows = depth_of(&root);
        let height = rows as f64 * ROW + 40.0;

        let mut body = String::new();
        // Deterministic warm palette: hash the frame text into a hue.
        fn fill_for(name: &str) -> String {
            let mut h: u32 = 2166136261;
            for b in name.bytes() {
                h = (h ^ b as u32).wrapping_mul(16777619);
            }
            let hue = h % 55; // reds through yellows
            format!("hsl({hue},72%,58%)")
        }
        #[allow(clippy::too_many_arguments)]
        fn render(
            node: &Node,
            name: &str,
            x: f64,
            y: f64,
            width: f64,
            grand_total: u64,
            out: &mut String,
        ) {
            if width >= 0.3 {
                let share = 100.0 * node.total as f64 / grand_total.max(1) as f64;
                let label = escape_xml(name);
                out.push_str(&format!(
                    "<g><title>{label} ({} samples, {share:.1}%)</title>\
                     <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                     fill=\"{}\" rx=\"1\"/>",
                    node.total,
                    (width - PAD).max(0.3),
                    ROW - PAD,
                    fill_for(name),
                ));
                // ~7 px per glyph at font-size 12; elide what cannot fit.
                let fit = (width / 7.0) as usize;
                if fit >= 3 {
                    let text = if name.chars().count() > fit {
                        let cut: String = name.chars().take(fit.saturating_sub(2)).collect();
                        escape_xml(&format!("{cut}.."))
                    } else {
                        label
                    };
                    out.push_str(&format!(
                        "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"12\" \
                         font-family=\"monospace\">{text}</text>",
                        x + 3.0,
                        y + ROW - 5.0,
                    ));
                }
                out.push_str("</g>\n");
            }
            let mut cx = x;
            for (child_name, child) in &node.children {
                let w = width * child.total as f64 / node.total.max(1) as f64;
                render(child, child_name, cx, y - ROW, w, grand_total, out);
                cx += w;
            }
        }
        let base_y = height - 20.0 - ROW;
        render(
            &root,
            &format!("all ({} samples)", root.total),
            0.0,
            base_y,
            WIDTH,
            root.total,
            &mut body,
        );

        format!(
            "<?xml version=\"1.0\" standalone=\"no\"?>\n\
             <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
             viewBox=\"0 0 {WIDTH} {height}\">\n\
             <rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height}\" fill=\"#fdf6ec\"/>\n\
             <text x=\"{:.0}\" y=\"16\" font-size=\"14\" font-family=\"monospace\" \
             text-anchor=\"middle\">hdoutlier span-stack profile \
             ({} samples at {} Hz over {:.2}s)</text>\n{body}</svg>\n",
            WIDTH / 2.0,
            self.samples,
            self.hz,
            self.duration.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(frames: &[&str], samples: u64, bytes: u64) -> StackEntry {
        StackEntry {
            frames: frames.iter().map(|s| s.to_string()).collect(),
            samples,
            bytes,
        }
    }

    #[test]
    fn intern_is_stable_and_distinguishes_frames() {
        let a = intern("hdoutlier.test", "alpha");
        let b = intern("hdoutlier.test", "beta");
        assert_eq!(a, intern("hdoutlier.test", "alpha"));
        assert_ne!(a, b);
        assert_eq!(resolve(a), Some(("hdoutlier.test", "alpha")));
        assert_eq!(resolve(OVERFLOW_ID), None);
    }

    #[test]
    fn folded_output_sorts_and_weights() {
        let report = ProfileReport::from_entries(
            99,
            Duration::from_secs(1),
            vec![
                entry(
                    &["hdoutlier.core.search", "hdoutlier.core.intersect"],
                    412,
                    64,
                ),
                entry(&["hdoutlier.core.search"], 88, 0),
                entry(&[], 0, 1024),
                entry(&["hdoutlier.cli.detect"], 0, 0),
            ],
        );
        assert_eq!(
            report.to_folded(),
            "hdoutlier.core.search 88\n\
             hdoutlier.core.search;hdoutlier.core.intersect 412\n"
        );
        assert_eq!(
            report.to_folded_bytes(),
            "(outside spans) 1024\n\
             hdoutlier.core.search;hdoutlier.core.intersect 64\n"
        );
        assert_eq!(report.samples, 500);
        assert!(report.has_bytes());
    }

    #[test]
    fn json_report_carries_stacks_and_header() {
        let report = ProfileReport::from_entries(
            97,
            Duration::from_millis(500),
            vec![entry(&["a.b", "c.d"], 3, 7)],
        );
        let json = report.to_json();
        assert!(json.contains("\"hz\":97"), "{json}");
        assert!(json.contains("\"duration_us\":500000"), "{json}");
        assert!(
            json.contains("{\"stack\":[\"a.b\",\"c.d\"],\"samples\":3,\"bytes\":7}"),
            "{json}"
        );
    }

    #[test]
    fn svg_is_well_formed_and_names_frames() {
        let report = ProfileReport::from_entries(
            99,
            Duration::from_secs(2),
            vec![
                entry(
                    &["hdoutlier.core.search", "hdoutlier.core.intersect"],
                    30,
                    0,
                ),
                entry(&["hdoutlier.core.search"], 10, 0),
            ],
        );
        let svg = report.to_svg();
        assert!(svg.starts_with("<?xml"), "{svg}");
        assert!(
            svg.contains("<svg xmlns=\"http://www.w3.org/2000/svg\""),
            "{svg}"
        );
        assert!(svg.trim_end().ends_with("</svg>"), "{svg}");
        assert!(svg.contains("hdoutlier.core.intersect"), "{svg}");
        assert!(svg.contains("40 samples"), "{svg}");
        // Every <g> and <rect> closes.
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }

    #[test]
    fn sessions_capture_live_span_stacks() {
        let session = ProfileSession::start(1000);
        assert!(profile_enabled());
        let stop = Arc::new(AtomicBool::new(false));
        let worker_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let _outer = profile_span("hdoutlier.proftest", "outer");
            while !worker_stop.load(Ordering::Relaxed) {
                let _inner = profile_span("hdoutlier.proftest", "inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        std::thread::sleep(Duration::from_millis(120));
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        let report = session.stop();
        // Other tests in this process may also be inside sessions/spans, so
        // assert containment, not exact equality.
        let folded = report.to_folded();
        assert!(
            folded.contains("hdoutlier.proftest.outer"),
            "no outer frame in:\n{folded}"
        );
        assert!(report.samples > 0, "no samples in {report:?}");
        assert!(report.ticks > 0);
    }

    #[test]
    fn disabled_gate_and_guard_are_inert() {
        // May race with another test's session in this process; only assert
        // the guard doesn't panic or unbalance.
        let g = profile_span("hdoutlier.proftest", "maybe");
        drop(g);
        let depth_before = current_slot().depth.load(Ordering::Relaxed);
        {
            let _g = profile_span("hdoutlier.proftest", "balanced");
        }
        assert_eq!(current_slot().depth.load(Ordering::Relaxed), depth_before);
    }

    #[test]
    fn push_beyond_max_depth_truncates_and_recovers() {
        let _session = ProfileSession::start(1000);
        let slot = current_slot();
        let depth0 = slot.depth.load(Ordering::Relaxed);
        let before = slot.truncated.load(Ordering::Relaxed);
        let guards: Vec<ProfileGuard> = (0..MAX_DEPTH + 4)
            .map(|_| profile_span("hdoutlier.proftest", "deep"))
            .collect();
        assert!(slot.truncated.load(Ordering::Relaxed) >= before + 4);
        assert_eq!(
            slot.depth.load(Ordering::Relaxed),
            depth0 + (MAX_DEPTH + 4) as u32
        );
        drop(guards);
        assert_eq!(slot.depth.load(Ordering::Relaxed), depth0);
        let snap = snapshot_stack(slot).expect("uncontended snapshot");
        assert!(snap.len() <= MAX_DEPTH);
    }

    #[test]
    fn profile_for_returns_after_duration() {
        let start = Instant::now();
        let report = profile_for(Duration::from_millis(30), 500);
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert!(report.hz == 500);
    }
}
