#![warn(missing_docs)]

//! In-tree tracing and metrics for the hdoutlier workspace.
//!
//! The workspace is hermetic — no crates.io — so this crate is a miniature
//! of the `tracing` + `metrics` ecosystem, scoped to what the detector,
//! evolutionary engine, streaming scorer, and CLI actually need:
//!
//! - **Events and spans** ([`event`], [`span`]) with [`Level`]s, dotted
//!   targets (`hdoutlier.core`, `hdoutlier.evolve`, …), and monotonic
//!   microsecond timestamps measured from dispatcher start. When no sink is
//!   installed the entire emit path is one relaxed atomic load and no
//!   allocation: fields are borrowed slices of [`Value`]s on the caller's
//!   stack.
//! - **Metrics** ([`registry`]): named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s (p50/p90/p99 summaries), all lock-free on
//!   the hot path (atomics only; the registry mutex is touched only when a
//!   handle is first resolved). Wall-clock timing of per-record hot paths
//!   is additionally gated behind [`timing_enabled`] so a disabled stream
//!   pipeline never calls `Instant::now`.
//! - **Sinks** ([`Sink`]): human-readable stderr ([`StderrSink`]), NDJSON
//!   over any writer ([`NdjsonSink`]), and an in-memory [`CaptureSink`]
//!   for tests — selected at runtime via [`install`].
//! - **Live serving & profiling**: [`MetricsServer`] answers `/metrics`
//!   (Prometheus text exposition, [`render_prometheus`]), `/healthz`, and
//!   `/snapshot` (NDJSON) on a background thread; a [`TraceBuffer`]
//!   installed via [`set_trace_buffer`] collects every closed [`Span`] as
//!   Chrome trace-event JSON loadable in Perfetto.
//! - **Continuous profiling**: a [`ProfileSession`] samples every thread's
//!   live span stack at a configurable rate and renders folded-stack text,
//!   an in-tree SVG flamegraph, or JSON ([`ProfileReport`]); the optional
//!   [`CountingAllocator`] attributes allocation bytes to the sampled
//!   stacks and feeds the `hdoutlier.alloc.*` gauges. Served live at
//!   `GET /profile?seconds=N&format=folded|svg|json`.
//!
//! Naming scheme: every event target and metric is
//! `hdoutlier.<crate>.<name>` (see `docs/metrics.md` in the repo root for
//! the full inventory).
//!
//! ```
//! use hdoutlier_obs as obs;
//!
//! let hits = obs::registry().counter("hdoutlier.doc.hits");
//! hits.inc();
//! let latency = obs::registry().histogram("hdoutlier.doc.latency_us");
//! latency.record(42.0);
//! obs::event(
//!     obs::Level::Info,
//!     "hdoutlier.doc",
//!     "served",
//!     &[("hits", obs::Value::U64(hits.get()))],
//! );
//! assert!(latency.snapshot().count == 1);
//! ```

mod alloc;
mod ctx;
mod dispatch;
mod event;
mod expo;
mod http;
mod level;
mod metrics;
mod profile;
mod sink;
mod slo;
mod trace;

pub use alloc::{alloc_stats, AllocStats, CountingAllocator};
pub use ctx::{current_request_ctx, set_request_ctx, RequestCtx, RequestCtxGuard};
pub use dispatch::{
    enabled, event, install, max_level, set_max_level, set_timing, set_trace_buffer, span,
    timing_enabled, trace_enabled, ts_us, uninstall, Span,
};
pub use event::{EventRecord, Field, Value};
pub use expo::{escape_label_value, render_prometheus, sanitize_metric_name};
pub use http::{telemetry_config, telemetry_response, MetricsServer};
pub use level::{Level, ParseLevelError};
pub use metrics::{
    refresh_process_metrics, registry, Counter, CounterVec, Gauge, GaugeVec, Histogram,
    HistogramSnapshot, HistogramVec, MetricSnapshot, Registry, SnapshotValue, DURATION_US_BOUNDS,
};
pub use profile::{
    profile_enabled, profile_for, profile_span, ProfileGuard, ProfileReport, ProfileSession,
    StackEntry, MAX_DEPTH as PROFILE_MAX_DEPTH,
};
pub use sink::{render_human, render_ndjson, CaptureSink, NdjsonSink, Sink, StderrSink};
pub use slo::{SloEngine, SloKeyReport, SloReport, SloSample, SloThresholds, SloVerdict};
pub use trace::TraceBuffer;
