//! Event payloads: borrowed, allocation-free field values.

use crate::level::Level;
use std::fmt;

/// One structured field value. Borrowed (`Str`) or `Copy`, so building a
/// field slice on the stack allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `null` in NDJSON).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed string.
    Str(&'a str),
}

impl fmt::Display for Value<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

/// A named field: `("elapsed_us", Value::U64(42))`.
pub type Field<'a> = (&'a str, Value<'a>);

/// One event as handed to a [`crate::Sink`]. Everything is borrowed; sinks
/// that need to keep events must copy what they want.
#[derive(Debug, Clone, Copy)]
pub struct EventRecord<'a> {
    /// Microseconds since the dispatcher's monotonic epoch (first install
    /// or first emit, whichever came first).
    pub ts_us: u64,
    /// Severity.
    pub level: Level,
    /// Dotted origin, `hdoutlier.<crate>`.
    pub target: &'a str,
    /// Event name within the target.
    pub name: &'a str,
    /// Structured payload.
    pub fields: &'a [Field<'a>],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_cover_common_types() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(3u64), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(1.5f64), Value::F64(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x"));
    }

    #[test]
    fn display_is_plain() {
        assert_eq!(Value::U64(7).to_string(), "7");
        assert_eq!(Value::I64(-7).to_string(), "-7");
        assert_eq!(Value::F64(0.5).to_string(), "0.5");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Str("hi").to_string(), "hi");
    }
}
