//! Request-scoped identity, threaded through the serving stack.
//!
//! A [`RequestCtx`] names the request (and optionally the session) the
//! current thread is working for. While one is installed via
//! [`set_request_ctx`], every emitted event automatically gains
//! `request_id` / `session_id` fields and every closed [`crate::Span`]
//! carries the same identifiers into its Chrome-trace `args`, so one
//! request's activity can be pulled out of a shared log or trace without
//! touching any call signature.
//!
//! The context is thread-local: the guard returned by [`set_request_ctx`]
//! restores the previous context when dropped (contexts nest), and is
//! deliberately `!Send` so it cannot leak onto another thread. Identifiers
//! are `Arc<str>`, so cloning a context for the trace buffer is two
//! refcount bumps, not string copies.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

/// The identity of the request the current thread is serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestCtx {
    request_id: Arc<str>,
    session_id: Option<Arc<str>>,
}

impl RequestCtx {
    /// A context for `request_id`, not yet bound to a session.
    pub fn new(request_id: &str) -> Self {
        RequestCtx {
            request_id: Arc::from(request_id),
            session_id: None,
        }
    }

    /// A context bound to both a request and a session.
    pub fn with_session(request_id: &str, session_id: &str) -> Self {
        RequestCtx {
            request_id: Arc::from(request_id),
            session_id: Some(Arc::from(session_id)),
        }
    }

    /// The request identifier (the `X-Request-Id` value).
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// The session identifier, when the request addresses one.
    pub fn session_id(&self) -> Option<&str> {
        self.session_id.as_deref()
    }
}

thread_local! {
    static CTX: RefCell<Option<RequestCtx>> = const { RefCell::new(None) };
}

/// Restores the previously installed context when dropped.
#[derive(Debug)]
pub struct RequestCtxGuard {
    prev: Option<RequestCtx>,
    /// Pins the guard to its thread: restoring a thread-local elsewhere
    /// would corrupt both threads' contexts.
    _not_send: PhantomData<*const ()>,
}

impl Drop for RequestCtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `ctx` as the current thread's request context until the
/// returned guard drops (contexts nest; the guard restores what it
/// replaced). Hold the guard for the lifetime of the request — typically
/// declared before the request span so identity outlives the span's drop.
#[must_use = "the context is uninstalled when the guard drops"]
pub fn set_request_ctx(ctx: RequestCtx) -> RequestCtxGuard {
    let prev = CTX.with(|c| c.borrow_mut().replace(ctx));
    RequestCtxGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// The current thread's request context, if one is installed.
pub fn current_request_ctx() -> Option<RequestCtx> {
    CTX.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_installs_nests_and_restores() {
        assert_eq!(current_request_ctx(), None);
        {
            let _outer = set_request_ctx(RequestCtx::new("r1"));
            assert_eq!(current_request_ctx().unwrap().request_id(), "r1");
            assert_eq!(current_request_ctx().unwrap().session_id(), None);
            {
                let _inner = set_request_ctx(RequestCtx::with_session("r2", "s1"));
                let ctx = current_request_ctx().unwrap();
                assert_eq!(ctx.request_id(), "r2");
                assert_eq!(ctx.session_id(), Some("s1"));
            }
            assert_eq!(current_request_ctx().unwrap().request_id(), "r1");
        }
        assert_eq!(current_request_ctx(), None);
    }

    #[test]
    fn context_is_thread_local() {
        let _guard = set_request_ctx(RequestCtx::new("main-thread"));
        let other = std::thread::spawn(current_request_ctx).join().unwrap();
        assert_eq!(other, None);
    }
}
