//! Rolling-window SLO evaluation over labeled counters and histograms.
//!
//! An [`SloEngine`] holds a small ring of cumulative samples per key (a
//! route, a session, …). Whoever owns the metrics feeds it via
//! [`SloEngine::observe`] — typically on every `/status` or `/healthz`
//! scrape — and [`SloEngine::evaluate`] turns the deltas across the
//! configured window into per-key error rate, p99 latency, and
//! throughput, judged against [`SloThresholds`]:
//!
//! - breach factor ≤ 1 → [`SloVerdict::Healthy`]
//! - breach factor ≤ 2 → [`SloVerdict::Degraded`] (over budget, within 2×)
//! - otherwise → [`SloVerdict::Unhealthy`]
//!
//! where the factor is the worst of `error_rate / max_error_rate` and
//! `p99_us / max_p99_us`. Verdict transitions emit `slo_breach` (Warn) /
//! `slo_recovered` (Info) events on target `hdoutlier.slo`, so threshold
//! crossings land in the same log stream as everything else.
//!
//! The window slides on sample timestamps: evaluation compares the newest
//! sample against the oldest one still useful as a baseline (one sample
//! older than the window is kept so the delta always spans at least the
//! window once enough history exists). With a single sample the delta is
//! taken against a zero origin — process start. Rates therefore reflect
//! scrape cadence: two scrapes more than a window apart see each other.

use crate::event::Value;
use crate::level::Level;
use crate::sink::escape_json_into;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

/// The health budgets a key is judged against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloThresholds {
    /// Tolerated error fraction in `[0, 1]`, e.g. `0.05` for 5%.
    pub max_error_rate: f64,
    /// Tolerated p99 latency in microseconds.
    pub max_p99_us: f64,
}

/// One key's health classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloVerdict {
    /// Within budget.
    Healthy,
    /// Over budget, by at most 2×.
    Degraded,
    /// More than 2× over budget.
    Unhealthy,
}

impl SloVerdict {
    /// The lowercase wire name (`healthy` / `degraded` / `unhealthy`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SloVerdict::Healthy => "healthy",
            SloVerdict::Degraded => "degraded",
            SloVerdict::Unhealthy => "unhealthy",
        }
    }
}

/// A cumulative reading for one key, taken from the metrics registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloSample {
    /// Cumulative unit count (requests, records, …).
    pub total: u64,
    /// Cumulative error count out of `total`.
    pub errors: u64,
    /// Cumulative `(upper_bound, count)` latency buckets (per-bucket
    /// counts as [`crate::HistogramSnapshot::buckets`] reports them).
    /// Empty when the key has no latency dimension — p99 is then skipped.
    pub buckets: Vec<(f64, u64)>,
}

#[derive(Debug, Clone)]
struct TimedSample {
    ts_us: u64,
    sample: SloSample,
}

#[derive(Debug)]
struct KeyState {
    samples: VecDeque<TimedSample>,
    last_verdict: SloVerdict,
}

/// One key's evaluated health.
#[derive(Debug, Clone, PartialEq)]
pub struct SloKeyReport {
    /// The key, e.g. `route:/sessions/{id}/score` or `session:abc`.
    pub key: String,
    /// The verdict for this key alone.
    pub verdict: SloVerdict,
    /// Window error fraction in `[0, 1]`; zero when nothing happened.
    pub error_rate: f64,
    /// Window p99 latency estimate in microseconds. `None` when the key
    /// has no latency buckets; `f64::INFINITY` when the p99 fell in the
    /// overflow bucket.
    pub p99_us: Option<f64>,
    /// Window throughput in units per second.
    pub per_sec: f64,
    /// Units observed inside the window.
    pub total: u64,
    /// Errors observed inside the window.
    pub errors: u64,
}

/// The engine's full judgment: every key plus the overall worst-of.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Worst verdict across keys (healthy when no key has samples).
    pub overall: SloVerdict,
    /// Per-key reports, sorted by key.
    pub keys: Vec<SloKeyReport>,
    /// The thresholds the verdicts were judged against.
    pub thresholds: SloThresholds,
    /// The rolling window the deltas span.
    pub window: Duration,
}

/// Rolling-window SLO evaluator. Thread-safe; one per server.
#[derive(Debug)]
pub struct SloEngine {
    thresholds: SloThresholds,
    window_us: u64,
    state: Mutex<BTreeMap<String, KeyState>>,
}

/// Per-key sample-ring cap. At one sample per scrape this outlives any
/// sane scrape cadence × window combination; beyond it the oldest samples
/// fall off early, shortening the effective window rather than growing
/// without bound.
const MAX_SAMPLES_PER_KEY: usize = 256;

impl SloEngine {
    /// An engine judging `window`-wide deltas against `thresholds`.
    pub fn new(thresholds: SloThresholds, window: Duration) -> Self {
        SloEngine {
            thresholds,
            window_us: window.as_micros() as u64,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> SloThresholds {
        self.thresholds
    }

    /// Records a cumulative reading for `key`, stamped with the
    /// dispatcher clock, and prunes samples that fell out of the window
    /// (keeping one older sample as the delta baseline).
    pub fn observe(&self, key: &str, sample: SloSample) {
        self.observe_at(key, sample, crate::ts_us());
    }

    /// [`SloEngine::observe`] with an explicit timestamp (tests).
    pub fn observe_at(&self, key: &str, sample: SloSample, ts_us: u64) {
        let mut state = self.state.lock().expect("slo lock");
        let entry = state.entry(key.to_string()).or_insert_with(|| KeyState {
            samples: VecDeque::new(),
            last_verdict: SloVerdict::Healthy,
        });
        entry.samples.push_back(TimedSample { ts_us, sample });
        let horizon = ts_us.saturating_sub(self.window_us);
        while entry.samples.len() > 1 && entry.samples[1].ts_us <= horizon {
            entry.samples.pop_front();
        }
        while entry.samples.len() > MAX_SAMPLES_PER_KEY {
            entry.samples.pop_front();
        }
    }

    /// Evaluates every key's window and returns the report. Verdict
    /// transitions emit `slo_breach` / `slo_recovered` events.
    pub fn evaluate(&self) -> SloReport {
        let mut state = self.state.lock().expect("slo lock");
        let mut keys = Vec::with_capacity(state.len());
        let mut overall = SloVerdict::Healthy;
        for (key, entry) in state.iter_mut() {
            let Some(report) = self.evaluate_key(key, &entry.samples) else {
                continue;
            };
            if report.verdict > entry.last_verdict {
                crate::event(
                    Level::Warn,
                    "hdoutlier.slo",
                    "slo_breach",
                    &[
                        ("key", Value::Str(key)),
                        ("status", Value::Str(report.verdict.as_str())),
                        ("error_rate", Value::F64(report.error_rate)),
                        ("p99_us", Value::F64(report.p99_us.unwrap_or(0.0))),
                    ],
                );
            } else if report.verdict < entry.last_verdict && report.verdict == SloVerdict::Healthy {
                crate::event(
                    Level::Info,
                    "hdoutlier.slo",
                    "slo_recovered",
                    &[("key", Value::Str(key))],
                );
            }
            entry.last_verdict = report.verdict;
            overall = overall.max(report.verdict);
            keys.push(report);
        }
        SloReport {
            overall,
            keys,
            thresholds: self.thresholds,
            window: Duration::from_micros(self.window_us),
        }
    }

    fn evaluate_key(&self, key: &str, samples: &VecDeque<TimedSample>) -> Option<SloKeyReport> {
        let newest = samples.back()?;
        let zero = TimedSample {
            ts_us: 0,
            sample: SloSample::default(),
        };
        // Delta against the front of the ring; with one sample that is a
        // zero origin at process start.
        let base = if samples.len() > 1 {
            samples.front().unwrap()
        } else {
            &zero
        };
        let total = newest.sample.total.saturating_sub(base.sample.total);
        let errors = newest.sample.errors.saturating_sub(base.sample.errors);
        let error_rate = if total == 0 {
            0.0
        } else {
            errors as f64 / total as f64
        };
        let p99_us = window_p99(&base.sample.buckets, &newest.sample.buckets);
        let dt_s = (newest.ts_us.saturating_sub(base.ts_us)) as f64 / 1e6;
        let per_sec = if dt_s > 0.0 { total as f64 / dt_s } else { 0.0 };
        let factor = |value: f64, budget: f64| -> f64 {
            if value <= 0.0 {
                0.0
            } else if budget <= 0.0 {
                f64::INFINITY
            } else {
                value / budget
            }
        };
        let breach = factor(error_rate, self.thresholds.max_error_rate)
            .max(factor(p99_us.unwrap_or(0.0), self.thresholds.max_p99_us));
        let verdict = if breach <= 1.0 {
            SloVerdict::Healthy
        } else if breach <= 2.0 {
            SloVerdict::Degraded
        } else {
            SloVerdict::Unhealthy
        };
        Some(SloKeyReport {
            key: key.to_string(),
            verdict,
            error_rate,
            p99_us,
            per_sec,
            total,
            errors,
        })
    }
}

/// The p99 latency estimate from the bucket-count delta between two
/// cumulative readings. `None` when there are no buckets or no
/// observations in the window; `f64::INFINITY` when the 99th percentile
/// landed in the overflow bucket.
fn window_p99(base: &[(f64, u64)], newest: &[(f64, u64)]) -> Option<f64> {
    if newest.is_empty() {
        return None;
    }
    let deltas: Vec<(f64, u64)> = newest
        .iter()
        .enumerate()
        .map(|(i, &(bound, count))| {
            let before = base.get(i).map_or(0, |&(_, c)| c);
            (bound, count.saturating_sub(before))
        })
        .collect();
    let total: u64 = deltas.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    let target = ((0.99 * total as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for &(bound, count) in &deltas {
        cum += count;
        if cum >= target {
            return Some(bound);
        }
    }
    Some(f64::INFINITY)
}

/// Renders a finite float plainly, infinities as `null` (JSON has no
/// `Infinity` literal).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.6}"));
    } else {
        out.push_str("null");
    }
}

impl SloReport {
    /// The report as a JSON document:
    /// `{"status":…,"window_s":…,"thresholds":{…},"keys":[…]}`.
    /// Latencies are reported in milliseconds (the flag unit); an overflow
    /// p99 renders as `null` with the verdict already reflecting it.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.keys.len() * 160);
        out.push_str("{\"status\":\"");
        out.push_str(self.overall.as_str());
        out.push_str("\",\"window_s\":");
        out.push_str(&format!("{:.3}", self.window.as_secs_f64()));
        out.push_str(",\"thresholds\":{\"max_error_rate\":");
        push_json_f64(&mut out, self.thresholds.max_error_rate);
        out.push_str(",\"max_p99_ms\":");
        push_json_f64(&mut out, self.thresholds.max_p99_us / 1e3);
        out.push_str("},\"keys\":[");
        for (i, k) in self.keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"key\":\"");
            escape_json_into(&mut out, &k.key);
            out.push_str("\",\"status\":\"");
            out.push_str(k.verdict.as_str());
            out.push_str("\",\"error_rate\":");
            push_json_f64(&mut out, k.error_rate);
            out.push_str(",\"p99_ms\":");
            match k.p99_us {
                Some(v) if v.is_finite() => push_json_f64(&mut out, v / 1e3),
                _ => out.push_str("null"),
            }
            out.push_str(",\"per_sec\":");
            push_json_f64(&mut out, k.per_sec);
            out.push_str(",\"total\":");
            out.push_str(&k.total.to_string());
            out.push_str(",\"errors\":");
            out.push_str(&k.errors.to_string());
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// The report as human-readable text, one line per key.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "status: {}\nwindow: {:.0}s  thresholds: error_rate<={:.4} p99<={:.1}ms\n",
            self.overall.as_str(),
            self.window.as_secs_f64(),
            self.thresholds.max_error_rate,
            self.thresholds.max_p99_us / 1e3,
        );
        for k in &self.keys {
            let p99 = match k.p99_us {
                Some(v) if v.is_finite() => format!("{:.1}ms", v / 1e3),
                Some(_) => ">ladder".to_string(),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<11} {}  err={:.4} p99={} rate={:.1}/s total={} errors={}\n",
                k.verdict.as_str(),
                k.key,
                k.error_rate,
                p99,
                k.per_sec,
                k.total,
                k.errors,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(max_error_rate: f64, max_p99_us: f64) -> SloEngine {
        SloEngine::new(
            SloThresholds {
                max_error_rate,
                max_p99_us,
            },
            Duration::from_secs(60),
        )
    }

    fn sample(total: u64, errors: u64, buckets: &[(f64, u64)]) -> SloSample {
        SloSample {
            total,
            errors,
            buckets: buckets.to_vec(),
        }
    }

    #[test]
    fn empty_engine_is_healthy() {
        let e = engine(0.05, 250_000.0);
        let report = e.evaluate();
        assert_eq!(report.overall, SloVerdict::Healthy);
        assert!(report.keys.is_empty());
    }

    #[test]
    fn single_sample_judges_against_zero_origin() {
        let e = engine(0.05, 250_000.0);
        e.observe_at(
            "route:/score",
            sample(100, 1, &[(1000.0, 99), (f64::INFINITY, 1)]),
            2_000_000,
        );
        let report = e.evaluate();
        assert_eq!(report.overall, SloVerdict::Healthy);
        let k = &report.keys[0];
        assert_eq!((k.total, k.errors), (100, 1));
        assert!((k.error_rate - 0.01).abs() < 1e-12);
        assert_eq!(k.p99_us, Some(1000.0));
        assert!((k.per_sec - 50.0).abs() < 1e-9, "{}", k.per_sec);
    }

    #[test]
    fn error_rate_breach_degrades_then_unhealthy() {
        let e = engine(0.05, 250_000.0);
        // 8% errors: factor 1.6 → degraded.
        e.observe_at("k", sample(100, 8, &[]), 1_000_000);
        assert_eq!(e.evaluate().overall, SloVerdict::Degraded);
        // 20% errors in the window: factor 4 → unhealthy.
        e.observe_at("k", sample(200, 28, &[]), 2_000_000);
        assert_eq!(e.evaluate().overall, SloVerdict::Unhealthy);
    }

    #[test]
    fn p99_breach_is_judged_on_window_deltas() {
        let e = engine(0.05, 500.0);
        // First reading: everything fast.
        e.observe_at(
            "k",
            sample(100, 0, &[(100.0, 100), (1000.0, 0), (f64::INFINITY, 0)]),
            1_000_000,
        );
        assert_eq!(e.evaluate().overall, SloVerdict::Healthy);
        // Second reading: the new traffic all landed in the 1000 µs bucket
        // — the cumulative histogram still looks half fast, but the window
        // delta is pure slow.
        e.observe_at(
            "k",
            sample(200, 0, &[(100.0, 100), (1000.0, 100), (f64::INFINITY, 0)]),
            2_000_000,
        );
        let report = e.evaluate();
        assert_eq!(report.keys[0].p99_us, Some(1000.0));
        assert_eq!(report.overall, SloVerdict::Degraded);
    }

    #[test]
    fn overflow_bucket_p99_is_infinite_and_unhealthy() {
        let e = engine(0.05, 500.0);
        e.observe_at(
            "k",
            sample(10, 0, &[(100.0, 0), (f64::INFINITY, 10)]),
            1_000_000,
        );
        let report = e.evaluate();
        assert_eq!(report.keys[0].p99_us, Some(f64::INFINITY));
        assert_eq!(report.overall, SloVerdict::Unhealthy);
        // JSON renders the overflow p99 as null, never as Infinity.
        assert!(
            report.to_json().contains("\"p99_ms\":null"),
            "{}",
            report.to_json()
        );
    }

    #[test]
    fn window_prunes_but_keeps_one_baseline() {
        let e = engine(0.5, 1e12);
        let w = 60_000_000u64;
        e.observe_at("k", sample(100, 100, &[]), 1);
        e.observe_at("k", sample(200, 100, &[]), 2);
        // Two window-widths later: the old error burst must be gone.
        e.observe_at("k", sample(300, 100, &[]), 2 * w);
        e.observe_at("k", sample(400, 100, &[]), 2 * w + 1);
        let report = e.evaluate();
        let k = &report.keys[0];
        // The ts=1 sample was pruned (ts=2 also predates the horizon and
        // serves as the kept baseline), so the delta spans ts=2..=2w+1:
        // 200 units, none of the original error burst.
        assert_eq!((k.total, k.errors), (200, 0));
        assert_eq!(report.overall, SloVerdict::Healthy);
    }

    /// The dispatcher is process-global, so the tests that install a
    /// capture sink serialize against each other here.
    static SINK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn empty_window_reports_zero_rates_and_stays_healthy() {
        let e = engine(0.05, 250_000.0);
        // A key that has registered but never moved: zero totals at both
        // ends of the window must not divide by zero or breach anything.
        e.observe_at("idle", sample(0, 0, &[]), 1_000_000);
        e.observe_at("idle", sample(0, 0, &[]), 2_000_000);
        let report = e.evaluate();
        assert_eq!(report.overall, SloVerdict::Healthy);
        let k = &report.keys[0];
        assert_eq!((k.total, k.errors), (0, 0));
        assert_eq!(k.error_rate, 0.0);
        assert_eq!(k.per_sec, 0.0);
        assert_eq!(k.p99_us, None, "no observations means no p99 estimate");
    }

    #[test]
    fn total_failure_window_is_judged_against_the_error_budget() {
        // Every unit in the window failed: rate exactly 1.0, far past a 5%
        // budget → unhealthy.
        let e = engine(0.05, 250_000.0);
        e.observe_at("down", sample(0, 0, &[]), 1_000_000);
        e.observe_at("down", sample(40, 40, &[]), 31_000_000);
        let report = e.evaluate();
        let k = &report.keys[0];
        assert_eq!(k.error_rate, 1.0);
        assert_eq!(k.verdict, SloVerdict::Unhealthy);
        assert_eq!(report.overall, SloVerdict::Unhealthy);

        // A zero error budget treats any error at all as an infinite
        // breach factor rather than a division blowup.
        let strict = engine(0.0, 250_000.0);
        strict.observe_at("one", sample(1000, 1, &[]), 1_000_000);
        assert_eq!(strict.evaluate().overall, SloVerdict::Unhealthy);

        // ...while a 100%-error window under a budget of 1.0 sits exactly
        // on the boundary, and the boundary is healthy by contract.
        let tolerant = engine(1.0, 250_000.0);
        tolerant.observe_at("all", sample(40, 40, &[]), 1_000_000);
        assert_eq!(tolerant.evaluate().overall, SloVerdict::Healthy);
    }

    #[test]
    fn hysteresis_orders_breach_before_recovery_and_skips_half_steps() {
        use crate::sink::CaptureSink;
        use std::sync::Arc;
        let _guard = SINK_LOCK.lock().unwrap();
        let capture = Arc::new(CaptureSink::default());
        crate::install(capture.clone(), Level::Info);
        let e = engine(0.05, 1e12);
        // Healthy → unhealthy: one breach event.
        e.observe_at("hyst", sample(100, 50, &[]), 1_000_000);
        e.evaluate();
        // Unhealthy → degraded: an improvement, but not a recovery —
        // the engine stays silent until the key is actually healthy.
        e.observe_at("hyst", sample(2_000, 190, &[]), 2_000_000);
        e.evaluate();
        // Degraded → healthy: one recovery event, after the breach.
        e.observe_at("hyst", sample(100_000, 200, &[]), 3_000_000);
        e.evaluate();
        crate::uninstall();
        let lines: Vec<String> = capture
            .lines()
            .iter()
            .filter(|l| l.contains("\"key\":\"hyst\""))
            .cloned()
            .collect();
        let breach = lines.iter().position(|l| l.contains("slo_breach"));
        let recovery = lines.iter().position(|l| l.contains("slo_recovered"));
        assert_eq!(
            lines.len(),
            2,
            "exactly one breach + one recovery: {lines:?}"
        );
        assert!(breach.unwrap() < recovery.unwrap(), "{lines:?}");
        assert!(lines[breach.unwrap()].contains("unhealthy"));
    }

    #[test]
    fn transitions_emit_breach_and_recovery_events() {
        use crate::sink::CaptureSink;
        use std::sync::Arc;
        let _guard = SINK_LOCK.lock().unwrap();
        let capture = Arc::new(CaptureSink::default());
        crate::install(capture.clone(), Level::Info);
        let e = engine(0.05, 1e12);
        e.observe_at("k", sample(100, 50, &[]), 1_000_000);
        e.evaluate();
        e.evaluate(); // steady state: no second breach event
        e.observe_at("k", sample(10_000, 50, &[]), 2_000_000);
        e.evaluate();
        crate::uninstall();
        let lines = capture.lines();
        let breaches: Vec<&String> = lines.iter().filter(|l| l.contains("slo_breach")).collect();
        let recoveries: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("slo_recovered"))
            .collect();
        assert_eq!(breaches.len(), 1, "{lines:?}");
        assert!(breaches[0].contains("\"key\":\"k\""), "{}", breaches[0]);
        assert!(breaches[0].contains("unhealthy"), "{}", breaches[0]);
        assert_eq!(recoveries.len(), 1, "{lines:?}");
    }

    #[test]
    fn report_renders_json_and_text() {
        let e = engine(0.05, 250_000.0);
        e.observe_at("route:/score", sample(100, 2, &[(1000.0, 100)]), 5_000_000);
        let report = e.evaluate();
        let json = report.to_json();
        assert!(json.starts_with("{\"status\":\"healthy\""), "{json}");
        assert!(json.contains("\"key\":\"route:/score\""), "{json}");
        assert!(json.contains("\"max_p99_ms\":250.000000"), "{json}");
        assert!(json.ends_with("]}\n"), "{json}");
        let text = report.to_text();
        assert!(text.starts_with("status: healthy\n"), "{text}");
        assert!(text.contains("route:/score"), "{text}");
    }
}
