//! Severity levels, ordered `Error < Warn < Info < Debug < Trace`.

use std::fmt;
use std::str::FromStr;

/// Event severity. The numeric representation is the verbosity rank used by
/// the dispatcher's level filter: a filter at [`Level::Info`] admits
/// `Error`, `Warn`, and `Info`.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Suspicious but survivable conditions (drift alerts, stale grids).
    Warn = 2,
    /// Pipeline milestones (per-phase spans of a detect run).
    Info = 3,
    /// Per-generation / per-batch telemetry.
    Debug = 4,
    /// Per-record firehose.
    Trace = 5,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Lower-case name (`"info"`), as rendered by the NDJSON sink.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Upper-case fixed-width name (`"INFO "`), for column-aligned human
    /// output.
    pub fn padded(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Level> {
        Level::ALL.into_iter().find(|&l| l as u8 == v)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Failure parsing a [`Level`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown level {:?} (expected error|warn|info|debug|trace)",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(ParseLevelError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        for w in Level::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn parse_round_trips() {
        for l in Level::ALL {
            assert_eq!(l.as_str().parse::<Level>().unwrap(), l);
            assert_eq!(Level::from_u8(l as u8), Some(l));
        }
        assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
        let err = "loud".parse::<Level>().unwrap_err();
        assert!(err.to_string().contains("loud"));
        assert_eq!(Level::from_u8(0), None);
        assert_eq!(Level::from_u8(6), None);
    }

    #[test]
    fn padded_names_are_fixed_width() {
        for l in Level::ALL {
            assert_eq!(l.padded().len(), 5);
        }
    }
}
