//! Span profiling as Chrome trace-event JSON, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! A [`TraceBuffer`] installed via [`crate::set_trace_buffer`] receives a
//! `ph:"B"` / `ph:"E"` pair for every [`crate::Span`] that closes while
//! tracing is on, stamped with the dispatcher's microsecond epoch, the
//! process id, and a stable per-thread lane id. [`TraceBuffer::to_chrome_json`]
//! renders the JSON-object flavor of the format
//! (`{"traceEvents":[…],"displayTimeUnit":"ms"}`).
//!
//! Span names and targets are `&'static str` throughout the workspace, so
//! collecting a trace allocates nothing per event beyond the buffer slot.
//! The buffer is bounded ([`TraceBuffer::MAX_EVENTS`]); events beyond the
//! cap are counted in [`TraceBuffer::dropped`] rather than grown without
//! limit inside a long-running serve loop.

use crate::ctx::RequestCtx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One begin or end record.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TraceEvent {
    name: &'static str,
    target: &'static str,
    /// `'B'` or `'E'`.
    ph: char,
    ts_us: u64,
    tid: u64,
    /// The request context at span close, rendered as Chrome-trace `args`
    /// on the `B` record (cloning is refcount bumps — the ids are
    /// `Arc<str>`).
    ctx: Option<RequestCtx>,
}

/// Monotonic lane ids: Chrome traces key rows on `(pid, tid)`, and
/// `std::thread::ThreadId` has no stable integer form, so threads take a
/// small id on their first traced span.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LANE: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The lane id of the current thread (assigned on first use).
pub(crate) fn current_tid() -> u64 {
    LANE.with(|l| *l)
}

/// A bounded, thread-safe collector of span begin/end events.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceBuffer {
    /// Hard cap on stored events (begin + end records). A span costs two
    /// slots, so this holds ~500k spans — far beyond what a profile viewer
    /// stays responsive at, and a bound on memory in serve loops.
    pub const MAX_EVENTS: usize = 1 << 20;

    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one closed span as a `B`/`E` pair. Called from
    /// [`crate::Span`]'s drop; the pair is appended atomically so readers
    /// never see an unmatched begin.
    pub(crate) fn push_span(
        &self,
        target: &'static str,
        name: &'static str,
        begin_us: u64,
        end_us: u64,
        tid: u64,
        ctx: Option<RequestCtx>,
    ) {
        let mut events = self.events.lock().expect("trace buffer lock");
        if events.len() + 2 > Self::MAX_EVENTS {
            self.dropped.fetch_add(2, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            name,
            target,
            ph: 'B',
            ts_us: begin_us,
            tid,
            ctx,
        });
        events.push(TraceEvent {
            name,
            target,
            ph: 'E',
            ts_us: end_us,
            tid,
            ctx: None,
        });
    }

    /// Number of stored begin/end records (two per span).
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records discarded because the buffer hit [`Self::MAX_EVENTS`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Renders the buffer as Chrome trace-event JSON. Events are sorted by
    /// timestamp (the viewer requires `E` records to close in order per
    /// lane; concurrent lanes interleave freely). Timestamps are
    /// microseconds since the dispatcher epoch, which is what the `ts`
    /// field expects.
    pub fn to_chrome_json(&self) -> String {
        let mut events = self.events.lock().expect("trace buffer lock").clone();
        // Stable sort: equal timestamps keep push order, so a zero-length
        // span's B still precedes its E.
        events.sort_by_key(|e| e.ts_us);
        let pid = std::process::id();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Names and targets are 'static identifiers from the
            // workspace's instrumentation — no JSON-special characters —
            // but escape anyway so a future caller can't corrupt the file.
            out.push_str("\n{\"name\":\"");
            crate::sink::escape_json_into(&mut out, e.name);
            out.push_str("\",\"cat\":\"");
            crate::sink::escape_json_into(&mut out, e.target);
            out.push_str("\",\"ph\":\"");
            out.push(e.ph);
            out.push_str("\",\"ts\":");
            out.push_str(&e.ts_us.to_string());
            out.push_str(",\"pid\":");
            out.push_str(&pid.to_string());
            out.push_str(",\"tid\":");
            out.push_str(&e.tid.to_string());
            if let Some(ctx) = e.ctx.as_ref() {
                out.push_str(",\"args\":{\"request_id\":\"");
                crate::sink::escape_json_into(&mut out, ctx.request_id());
                out.push('"');
                if let Some(session) = ctx.session_id() {
                    out.push_str(",\"session_id\":\"");
                    crate::sink::escape_json_into(&mut out, session);
                    out.push('"');
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_paired_begin_end() {
        let buf = TraceBuffer::new();
        buf.push_span("hdoutlier.test", "work", 10, 25, 1, None);
        assert_eq!(buf.len(), 2);
        assert!(!buf.is_empty());
        let json = buf.to_chrome_json();
        assert!(json.contains("\"ph\":\"B\",\"ts\":10"), "{json}");
        assert!(json.contains("\"ph\":\"E\",\"ts\":25"), "{json}");
        assert!(json.contains("\"cat\":\"hdoutlier.test\""), "{json}");
        assert!(json.contains("\"name\":\"work\""), "{json}");
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    }

    #[test]
    fn events_sort_by_timestamp_with_stable_pairs() {
        let buf = TraceBuffer::new();
        buf.push_span("t", "later", 50, 60, 1, None);
        buf.push_span("t", "earlier", 10, 20, 1, None);
        buf.push_span("t", "instant", 30, 30, 1, None);
        let json = buf.to_chrome_json();
        let order: Vec<usize> = ["earlier", "instant", "later"]
            .iter()
            .map(|n| json.find(&format!("\"name\":\"{n}\"")).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{json}");
        // The zero-length span's B precedes its E.
        let b = json.find("\"ph\":\"B\",\"ts\":30").unwrap();
        let e = json.find("\"ph\":\"E\",\"ts\":30").unwrap();
        assert!(b < e, "{json}");
    }

    #[test]
    fn begin_records_render_request_args() {
        let buf = TraceBuffer::new();
        buf.push_span(
            "t",
            "request",
            5,
            9,
            1,
            Some(RequestCtx::with_session("req-1", "sess \"a\"")),
        );
        let json = buf.to_chrome_json();
        assert!(
            json.contains("\"ph\":\"B\",\"ts\":5,\"pid\":")
                && json.contains(
                    "\"args\":{\"request_id\":\"req-1\",\"session_id\":\"sess \\\"a\\\"\"}"
                ),
            "{json}"
        );
        // The E record carries no args.
        let end = json.split("\"ph\":\"E\"").nth(1).unwrap();
        assert!(!end.contains("\"args\""), "{json}");
    }

    #[test]
    fn buffer_is_bounded() {
        let buf = TraceBuffer::new();
        let spans = TraceBuffer::MAX_EVENTS / 2;
        for i in 0..spans + 3 {
            buf.push_span("t", "s", i as u64, i as u64 + 1, 1, None);
        }
        assert_eq!(buf.len(), TraceBuffer::MAX_EVENTS);
        assert_eq!(buf.dropped(), 6);
    }

    #[test]
    fn lane_ids_are_stable_within_a_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other);
    }
}
