//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are `Arc`-backed and cheap to clone; updates are plain atomic
//! operations so the streaming hot path can record without locking. The
//! registry's mutex is touched only when a handle is first resolved by
//! name — resolve once, store the handle, update forever.

use crate::sink::escape_json_into;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default histogram bounds for microsecond durations: a 1–2–5 ladder from
/// 1 µs to 10 s (values above the last bound land in the overflow bucket).
pub const DURATION_US_BOUNDS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5,
    5e5, 1e6, 2e6, 5e6, 1e7,
];

/// An `f64` cell updated with compare-and-swap loops over its bit pattern.
#[derive(Debug)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    const fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn update(&self, f: impl Fn(f64) -> f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A monotonically increasing count.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (window occupancy, population size, …).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds, ascending. `counts` has one extra slot for
    /// values above the last bound.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

/// A fixed-bucket histogram. Recording is two atomic adds plus bounded CAS
/// loops for sum/min/max; quantiles are estimated from bucket upper bounds
/// at snapshot time.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation. Non-finite values are dropped.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let inner = &self.0;
        // First bucket whose upper bound admits v; the trailing slot
        // catches everything above the last bound.
        let idx = inner.bounds.partition_point(|&b| v > b);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.update(|s| s + v);
        inner.min.update(|m| m.min(v));
        inner.max.update(|m| m.max(v));
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64() * 1e6);
    }

    /// `(upper_bound, count)` per bucket; the overflow bucket's bound is
    /// `f64::INFINITY`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.0
            .bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Point-in-time summary. Concurrent recorders may make `count` and the
    /// per-bucket totals momentarily inconsistent; each field is itself
    /// coherent. The returned `buckets` pair each upper bound with its
    /// (non-cumulative) count, so `count` always equals the bucket total.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let counts: Vec<u64> = inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let buckets: Vec<(f64, u64)> = inner
            .bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(counts.iter().copied())
            .collect();
        if count == 0 {
            return HistogramSnapshot {
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                buckets,
            };
        }
        let min = inner.min.load();
        let max = inner.max.load();
        let quantile = |q: f64| -> f64 {
            // Rank of the q-th observation (1-based), then the upper bound
            // of the bucket holding it, clamped to the observed range so a
            // single sample reports itself rather than its bucket ceiling.
            let target = ((q * count as f64).ceil() as u64).max(1);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    let bound = inner.bounds.get(i).copied().unwrap_or(max);
                    return bound.clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: inner.sum.load(),
            min,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets,
        }
    }
}

/// Summary of a [`Histogram`] at one point in time. All scalar fields are
/// zero when nothing has been recorded (the bucket list keeps its shape).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median estimate (bucket upper bound, clamped to `[min, max]`).
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// `(upper_bound, count)` per bucket, ascending, the overflow bucket
    /// (`f64::INFINITY` bound) last. Counts are per-bucket, not cumulative,
    /// so external consumers can rebuild the distribution exactly.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One registered metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

/// A named metric captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered name, `hdoutlier.<crate>.<name>`.
    pub name: String,
    /// Ordered `(label_name, label_value)` pairs; empty for unlabeled
    /// metrics. The order is the family's registration order, identical on
    /// every scrape.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: SnapshotValue,
}

/// Shared state of one labeled metric family: the ordered label schema and
/// the children keyed by label values. The children map is locked only
/// when a label set is first interned by [`CounterVec::with`] (and
/// siblings) and at snapshot time; the handles it returns update with
/// plain atomics, so hot paths resolve once and record lock-free.
#[derive(Debug)]
struct FamilyInner<T> {
    label_names: Vec<String>,
    children: Mutex<BTreeMap<Vec<String>, T>>,
}

impl<T: Clone> FamilyInner<T> {
    fn new(label_names: &[&str]) -> Self {
        FamilyInner {
            label_names: label_names.iter().map(|s| s.to_string()).collect(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// Interns `values` (first use registers a child via `make`) and
    /// returns the child's cheap-to-clone handle.
    fn with(&self, values: &[&str], make: impl FnOnce() -> T) -> T {
        assert_eq!(
            values.len(),
            self.label_names.len(),
            "label set {values:?} does not match schema {:?}",
            self.label_names
        );
        let mut children = self.children.lock().expect("family lock");
        children
            .entry(values.iter().map(|s| s.to_string()).collect())
            .or_insert_with(make)
            .clone()
    }

    /// Every interned label set with its child, in deterministic
    /// (lexicographic label-value) order.
    fn children(&self) -> Vec<(Vec<(String, String)>, T)> {
        self.children
            .lock()
            .expect("family lock")
            .iter()
            .map(|(values, child)| {
                let labels = self
                    .label_names
                    .iter()
                    .cloned()
                    .zip(values.iter().cloned())
                    .collect();
                (labels, child.clone())
            })
            .collect()
    }
}

/// A family of [`Counter`]s sharing one name, distinguished by an ordered
/// label set (e.g. `hdoutlier.serve.requests{route,status}`).
#[derive(Debug, Clone)]
pub struct CounterVec(Arc<FamilyInner<Counter>>);

impl CounterVec {
    /// Resolves (interning on first use) the child for `values`, one value
    /// per label name in schema order. The returned handle is lock-free;
    /// hot paths should resolve once and reuse it.
    ///
    /// # Panics
    /// If `values.len()` differs from the family's label count.
    pub fn with(&self, values: &[&str]) -> Counter {
        self.0.with(values, || Counter(Arc::new(AtomicU64::new(0))))
    }

    /// The family's ordered label names.
    pub fn label_names(&self) -> &[String] {
        &self.0.label_names
    }
}

/// A family of [`Gauge`]s sharing one name, distinguished by an ordered
/// label set.
#[derive(Debug, Clone)]
pub struct GaugeVec(Arc<FamilyInner<Gauge>>);

impl GaugeVec {
    /// Resolves (interning on first use) the child for `values`.
    ///
    /// # Panics
    /// If `values.len()` differs from the family's label count.
    pub fn with(&self, values: &[&str]) -> Gauge {
        self.0.with(values, || Gauge(Arc::new(AtomicI64::new(0))))
    }

    /// The family's ordered label names.
    pub fn label_names(&self) -> &[String] {
        &self.0.label_names
    }
}

/// A family of [`Histogram`]s sharing one name and bucket layout,
/// distinguished by an ordered label set (per-route latency, …).
#[derive(Debug, Clone)]
pub struct HistogramVec {
    inner: Arc<FamilyInner<Histogram>>,
    bounds: Arc<Vec<f64>>,
}

impl HistogramVec {
    /// Resolves (interning on first use) the child for `values`. Children
    /// share the family's bucket bounds.
    ///
    /// # Panics
    /// If `values.len()` differs from the family's label count.
    pub fn with(&self, values: &[&str]) -> Histogram {
        let bounds = Arc::clone(&self.bounds);
        self.inner.with(values, || new_histogram(&bounds))
    }

    /// The family's ordered label names.
    pub fn label_names(&self) -> &[String] {
        &self.inner.label_names
    }
}

/// Builds a histogram over validated bounds.
fn new_histogram(bounds: &[f64]) -> Histogram {
    Histogram(Arc::new(HistogramInner {
        bounds: bounds.to_vec(),
        counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
        count: AtomicU64::new(0),
        sum: AtomicF64::new(0.0),
        min: AtomicF64::new(f64::INFINITY),
        max: AtomicF64::new(f64::NEG_INFINITY),
    }))
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    CounterVec(CounterVec),
    GaugeVec(GaugeVec),
    HistogramVec(HistogramVec),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::CounterVec(_) => "labeled counter",
            Metric::GaugeVec(_) => "labeled gauge",
            Metric::HistogramVec(_) => "labeled histogram",
        }
    }
}

/// Panics when a family is re-resolved under a different label schema —
/// the labeled analogue of the kind-mismatch panic.
fn check_labels(name: &str, registered: &[String], requested: &[&str]) {
    if registered.len() != requested.len() || registered.iter().zip(requested).any(|(a, b)| a != b)
    {
        panic!("metric {name:?} is registered with labels {registered:?}, not {requested:?}");
    }
}

/// A name → metric map. The process-global instance is [`registry`]; tests
/// may build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().expect("registry lock");
        let metric = map.entry(name.to_string()).or_insert_with(make);
        metric.clone()
    }

    /// Resolves (registering on first use) the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Resolves (registering on first use) the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0))))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Resolves (registering on first use) the histogram `name` with the
    /// default [`DURATION_US_BOUNDS`].
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, DURATION_US_BOUNDS)
    }

    /// Like [`Registry::histogram`] with explicit bucket upper bounds
    /// (ascending). Bounds are fixed at first registration; later calls
    /// under the same name return the existing histogram unchanged.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly ascending, or if `name` is
    /// already registered as a different metric kind.
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name:?} needs >= 1 bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly ascending"
        );
        match self.get_or_insert(name, || Metric::Histogram(new_histogram(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Resolves (registering on first use) the counter family `name` with
    /// the ordered label schema `labels`. Children are addressed with
    /// [`CounterVec::with`]; resolve the family once, then the children
    /// once, and record through the lock-free handles.
    ///
    /// # Panics
    /// If `labels` is empty, if `name` is already registered as a
    /// different metric kind, or if it is registered with a different
    /// label schema.
    pub fn counter_vec(&self, name: &str, labels: &[&str]) -> CounterVec {
        assert!(!labels.is_empty(), "family {name:?} needs >= 1 label");
        match self.get_or_insert(name, || {
            Metric::CounterVec(CounterVec(Arc::new(FamilyInner::new(labels))))
        }) {
            Metric::CounterVec(v) => {
                check_labels(name, v.label_names(), labels);
                v
            }
            other => panic!(
                "metric {name:?} is a {}, not a labeled counter",
                other.kind()
            ),
        }
    }

    /// Resolves (registering on first use) the gauge family `name` with
    /// the ordered label schema `labels`.
    ///
    /// # Panics
    /// As [`Registry::counter_vec`].
    pub fn gauge_vec(&self, name: &str, labels: &[&str]) -> GaugeVec {
        assert!(!labels.is_empty(), "family {name:?} needs >= 1 label");
        match self.get_or_insert(name, || {
            Metric::GaugeVec(GaugeVec(Arc::new(FamilyInner::new(labels))))
        }) {
            Metric::GaugeVec(v) => {
                check_labels(name, v.label_names(), labels);
                v
            }
            other => panic!("metric {name:?} is a {}, not a labeled gauge", other.kind()),
        }
    }

    /// Resolves (registering on first use) the histogram family `name`
    /// with the ordered label schema `labels` and the default
    /// [`DURATION_US_BOUNDS`].
    ///
    /// # Panics
    /// As [`Registry::counter_vec`].
    pub fn histogram_vec(&self, name: &str, labels: &[&str]) -> HistogramVec {
        self.histogram_vec_with_bounds(name, labels, DURATION_US_BOUNDS)
    }

    /// Like [`Registry::histogram_vec`] with explicit bucket upper bounds
    /// (ascending), shared by every child. Bounds are fixed at first
    /// registration.
    ///
    /// # Panics
    /// As [`Registry::histogram_with_bounds`] plus the label-schema checks
    /// of [`Registry::counter_vec`].
    pub fn histogram_vec_with_bounds(
        &self,
        name: &str,
        labels: &[&str],
        bounds: &[f64],
    ) -> HistogramVec {
        assert!(!labels.is_empty(), "family {name:?} needs >= 1 label");
        assert!(!bounds.is_empty(), "histogram {name:?} needs >= 1 bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly ascending"
        );
        match self.get_or_insert(name, || {
            Metric::HistogramVec(HistogramVec {
                inner: Arc::new(FamilyInner::new(labels)),
                bounds: Arc::new(bounds.to_vec()),
            })
        }) {
            Metric::HistogramVec(v) => {
                check_labels(name, v.label_names(), labels);
                v
            }
            other => panic!(
                "metric {name:?} is a {}, not a labeled histogram",
                other.kind()
            ),
        }
    }

    /// All registered metrics, sorted by name; a labeled family
    /// contributes one entry per interned label set (label-value order),
    /// after any unlabeled metric of the same name prefix.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.metrics.lock().expect("registry lock");
        let mut out = Vec::with_capacity(map.len());
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => out.push(MetricSnapshot {
                    name: name.clone(),
                    labels: Vec::new(),
                    value: SnapshotValue::Counter(c.get()),
                }),
                Metric::Gauge(g) => out.push(MetricSnapshot {
                    name: name.clone(),
                    labels: Vec::new(),
                    value: SnapshotValue::Gauge(g.get()),
                }),
                Metric::Histogram(h) => out.push(MetricSnapshot {
                    name: name.clone(),
                    labels: Vec::new(),
                    value: SnapshotValue::Histogram(h.snapshot()),
                }),
                Metric::CounterVec(v) => {
                    for (labels, child) in v.0.children() {
                        out.push(MetricSnapshot {
                            name: name.clone(),
                            labels,
                            value: SnapshotValue::Counter(child.get()),
                        });
                    }
                }
                Metric::GaugeVec(v) => {
                    for (labels, child) in v.0.children() {
                        out.push(MetricSnapshot {
                            name: name.clone(),
                            labels,
                            value: SnapshotValue::Gauge(child.get()),
                        });
                    }
                }
                Metric::HistogramVec(v) => {
                    for (labels, child) in v.inner.children() {
                        out.push(MetricSnapshot {
                            name: name.clone(),
                            labels,
                            value: SnapshotValue::Histogram(child.snapshot()),
                        });
                    }
                }
            }
        }
        out
    }

    /// The snapshot as NDJSON: one object per metric (one per label set
    /// for families), sorted by name, each line
    /// `{"metric":"…","type":"counter|gauge|histogram",…}`. Labeled series
    /// add `"labels":{…}` in schema order right after the name. Histogram
    /// lines carry the full `(le, count)` bucket list (per-bucket counts,
    /// `le` of the overflow bucket rendered as `"+Inf"`) so consumers can
    /// rebuild the distribution instead of only reading baked quantiles.
    pub fn snapshot_ndjson(&self) -> String {
        let mut out = String::new();
        for m in self.snapshot() {
            out.push_str("{\"metric\":\"");
            escape_json_into(&mut out, &m.name);
            if !m.labels.is_empty() {
                out.push_str("\",\"labels\":{");
                for (i, (k, v)) in m.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json_into(&mut out, k);
                    out.push_str("\":\"");
                    escape_json_into(&mut out, v);
                    out.push('"');
                }
                out.push_str("},\"type\":\"");
            } else {
                out.push_str("\",\"type\":\"");
            }
            match &m.value {
                SnapshotValue::Counter(v) => {
                    out.push_str("counter\",\"value\":");
                    out.push_str(&v.to_string());
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str("gauge\",\"value\":");
                    out.push_str(&v.to_string());
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str("histogram\",\"count\":");
                    out.push_str(&h.count.to_string());
                    for (key, v) in [
                        ("sum", h.sum),
                        ("min", h.min),
                        ("max", h.max),
                        ("mean", h.mean()),
                        ("p50", h.p50),
                        ("p90", h.p90),
                        ("p99", h.p99),
                    ] {
                        out.push_str(",\"");
                        out.push_str(key);
                        out.push_str("\":");
                        if v.is_finite() {
                            out.push_str(&v.to_string());
                        } else {
                            out.push_str("null");
                        }
                    }
                    out.push_str(",\"buckets\":[");
                    for (i, (le, count)) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"le\":");
                        if le.is_finite() {
                            out.push_str(&le.to_string());
                        } else {
                            out.push_str("\"+Inf\"");
                        }
                        out.push_str(",\"count\":");
                        out.push_str(&count.to_string());
                        out.push('}');
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

static REGISTRY: Registry = Registry::new();

/// The process-global registry. All pipeline instrumentation registers
/// here; the CLI's `--metrics-out` snapshots it at exit.
pub fn registry() -> &'static Registry {
    &REGISTRY
}

/// Guards the one-time seeding of `hdoutlier.process.start_ts_us`.
static PROCESS_START_SEEDED: std::sync::OnceLock<()> = std::sync::OnceLock::new();

/// Registers (on first call) and refreshes the process-level metrics in the
/// global registry:
///
/// - `hdoutlier.process.uptime_seconds` — gauge, seconds since the
///   dispatcher epoch, refreshed on every call (the `/metrics` server calls
///   this per scrape, so rates can be computed without client-side state);
/// - `hdoutlier.process.start_ts_us` — counter, microseconds between the
///   Unix epoch and process start, seeded exactly once;
/// - the `hdoutlier.alloc.*` gauges (when the counting allocator is
///   installed) and the `/proc`-backed process vitals
///   (`hdoutlier.process.rss_bytes`, `cpu_user_ms`, `cpu_sys_ms` — Linux
///   only), both refreshed per call.
///
/// Called by [`crate::install`] and by the telemetry server before every
/// snapshot; safe to call from anywhere, any number of times.
pub fn refresh_process_metrics() {
    let up_us = crate::ts_us();
    registry()
        .gauge("hdoutlier.process.uptime_seconds")
        .set((up_us / 1_000_000) as i64);
    crate::alloc::refresh_alloc_metrics();
    crate::expo::refresh_process_vitals();
    PROCESS_START_SEEDED.get_or_init(|| {
        let now_unix_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        registry()
            .counter("hdoutlier.process.start_ts_us")
            .add(now_unix_us.saturating_sub(up_us));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("c").get(), 5, "same handle by name");

        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("h", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.1, 10.0, 99.0, 100.0, 101.0] {
            h.record(v);
        }
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 2)); // 0.5, 1.0
        assert_eq!(buckets[1], (10.0, 2)); // 1.1, 10.0
        assert_eq!(buckets[2], (100.0, 2)); // 99.0, 100.0
        assert_eq!(buckets[3], (f64::INFINITY, 1)); // 101.0
    }

    #[test]
    fn histogram_snapshot_quantiles() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("h", &[1.0, 2.0, 5.0, 10.0]);
        // 100 observations: 50 in (..=1], 40 in (1..=2], 10 in (2..=5].
        for _ in 0..50 {
            h.record(0.5);
        }
        for _ in 0..40 {
            h.record(1.5);
        }
        for _ in 0..10 {
            h.record(3.0);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 3.0);
        assert!((s.sum - (50.0 * 0.5 + 40.0 * 1.5 + 10.0 * 3.0)).abs() < 1e-9);
        assert_eq!(s.p50, 1.0); // rank 50 is the last of the first bucket
        assert_eq!(s.p90, 2.0); // rank 90 is the last of the second bucket
        assert_eq!(s.p99, 3.0); // rank 99 is in the third bucket, clamped to max
        assert!((s.mean() - 1.15).abs() < 1e-9);
    }

    #[test]
    fn histogram_single_sample_clamps_to_observation() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("h", &[100.0, 1000.0]);
        h.record(42.0);
        let s = h.snapshot();
        // Bucket bound is 100 but only 42 was ever seen.
        assert_eq!((s.p50, s.p90, s.p99), (42.0, 42.0, 42.0));
    }

    #[test]
    fn histogram_empty_snapshot_is_zeroed() {
        let r = Registry::new();
        let s = r.histogram("h").snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(
            (s.min, s.max, s.p50, s.p99, s.mean()),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn histogram_drops_nonfinite() {
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        Registry::new().histogram_with_bounds("h", &[2.0, 1.0]);
    }

    #[test]
    fn snapshot_ndjson_is_sorted_and_line_per_metric() {
        let r = Registry::new();
        r.counter("b.count").inc();
        r.gauge("c.gauge").set(-2);
        r.histogram("a.hist").record(3.0);
        let text = r.snapshot_ndjson();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"metric\":\"a.hist\""), "{}", lines[0]);
        assert!(lines[0].contains("\"type\":\"histogram\""), "{}", lines[0]);
        assert!(lines[0].contains("\"p99\":"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"metric\":\"b.count\"") && lines[1].contains("\"value\":1"),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"metric\":\"c.gauge\"") && lines[2].contains("\"value\":-2"),
            "{}",
            lines[2]
        );
    }

    #[test]
    fn default_duration_bounds_are_ascending() {
        assert!(DURATION_US_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn snapshot_carries_buckets_matching_raw_counts() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("h", &[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 50.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(1.0, 1), (10.0, 1), (f64::INFINITY, 2)]);
        assert_eq!(s.count, s.buckets.iter().map(|&(_, c)| c).sum::<u64>());
        // Empty histograms keep the bucket shape with zero counts.
        let empty = r.histogram_with_bounds("e", &[1.0]).snapshot();
        assert_eq!(empty.buckets, vec![(1.0, 0), (f64::INFINITY, 0)]);
    }

    #[test]
    fn snapshot_ndjson_histogram_emits_le_count_pairs() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("h", &[1.0, 10.0]);
        h.record(0.5);
        h.record(99.0);
        let text = r.snapshot_ndjson();
        let line = text.lines().next().unwrap();
        assert!(
            line.contains(
                "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":10,\"count\":0},\
                 {\"le\":\"+Inf\",\"count\":1}]"
            ),
            "{line}"
        );
    }

    #[test]
    fn counter_vec_interns_and_accumulates_per_label_set() {
        let r = Registry::new();
        let v = r.counter_vec("req", &["route", "status"]);
        v.with(&["/score", "200"]).add(3);
        v.with(&["/score", "200"]).inc();
        v.with(&["/score", "500"]).inc();
        assert_eq!(v.with(&["/score", "200"]).get(), 4);
        assert_eq!(v.with(&["/score", "500"]).get(), 1);
        // Re-resolving the family by name reaches the same children.
        assert_eq!(
            r.counter_vec("req", &["route", "status"])
                .with(&["/score", "200"])
                .get(),
            4
        );
    }

    #[test]
    fn gauge_and_histogram_vec_children_are_independent() {
        let r = Registry::new();
        let g = r.gauge_vec("sessions", &["kind"]);
        g.with(&["brute"]).set(2);
        g.with(&["ensemble"]).set(5);
        assert_eq!(g.with(&["brute"]).get(), 2);
        assert_eq!(g.with(&["ensemble"]).get(), 5);

        let h = r.histogram_vec_with_bounds("lat", &["route"], &[1.0, 10.0]);
        h.with(&["/a"]).record(0.5);
        h.with(&["/b"]).record(99.0);
        assert_eq!(h.with(&["/a"]).snapshot().count, 1);
        assert_eq!(h.with(&["/b"]).snapshot().max, 99.0);
    }

    #[test]
    fn snapshot_orders_label_sets_deterministically() {
        let r = Registry::new();
        let v = r.counter_vec("req", &["route", "status"]);
        // Intern out of order; snapshot must come back sorted by values.
        v.with(&["/z", "500"]).inc();
        v.with(&["/a", "200"]).inc();
        v.with(&["/a", "500"]).inc();
        let labels: Vec<Vec<(String, String)>> =
            r.snapshot().into_iter().map(|m| m.labels).collect();
        let expect = |route: &str, status: &str| {
            vec![
                ("route".to_string(), route.to_string()),
                ("status".to_string(), status.to_string()),
            ]
        };
        assert_eq!(
            labels,
            vec![
                expect("/a", "200"),
                expect("/a", "500"),
                expect("/z", "500")
            ]
        );
    }

    #[test]
    fn snapshot_ndjson_carries_labels_object() {
        let r = Registry::new();
        r.counter_vec("req", &["route", "status"])
            .with(&["/score", "200"])
            .add(7);
        let text = r.snapshot_ndjson();
        assert_eq!(
            text,
            "{\"metric\":\"req\",\"labels\":{\"route\":\"/score\",\"status\":\"200\"},\
             \"type\":\"counter\",\"value\":7}\n"
        );
    }

    #[test]
    #[should_panic(expected = "not a labeled counter")]
    fn vec_kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.counter_vec("x", &["route"]);
    }

    #[test]
    #[should_panic(expected = "registered with labels")]
    fn label_schema_mismatch_panics() {
        let r = Registry::new();
        r.counter_vec("x", &["route", "status"]);
        r.counter_vec("x", &["route"]);
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn wrong_arity_with_panics() {
        let r = Registry::new();
        r.counter_vec("x", &["route", "status"]).with(&["/only"]);
    }

    #[test]
    fn process_metrics_register_and_refresh() {
        refresh_process_metrics();
        let start = registry().counter("hdoutlier.process.start_ts_us").get();
        assert!(start > 0, "start_ts_us seeded");
        refresh_process_metrics();
        assert_eq!(
            registry().counter("hdoutlier.process.start_ts_us").get(),
            start,
            "seeded exactly once"
        );
        let up = registry().gauge("hdoutlier.process.uptime_seconds").get();
        assert!(up >= 0);
    }
}
