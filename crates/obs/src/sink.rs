//! Sinks: where emitted events go. Rendering is shared so every sink (and
//! the metrics snapshot writer) produces the same NDJSON dialect as the
//! CLI's in-tree JSON parser expects.

use crate::event::{EventRecord, Value};
use std::io::Write;
use std::sync::Mutex;

/// An event consumer. Implementations must be cheap enough to call from
/// the pipeline thread: the dispatcher invokes `emit` inline, under its
/// sink read-lock.
pub trait Sink: Send + Sync {
    /// Handles one event. The record borrows the caller's stack; copy
    /// anything that must outlive the call.
    fn emit(&self, record: &EventRecord<'_>);
}

/// Appends `s` to `out` as JSON string *contents* (no surrounding quotes),
/// escaping quotes, backslashes, and control characters.
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends one field value to `out` as a JSON value. Non-finite floats
/// become `null` (JSON has no NaN/Infinity).
pub(crate) fn value_json_into(out: &mut String, v: &Value<'_>) {
    match v {
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => out.push_str(&v.to_string()),
        Value::Str(s) => {
            out.push('"');
            escape_json_into(out, s);
            out.push('"');
        }
    }
}

/// Renders one event as a single NDJSON line (no trailing newline):
/// `{"ts_us":…,"level":"info","target":"…","event":"…",<fields…>}`.
/// Field names are emitted as-is after escaping; duplicate keys are the
/// caller's problem, as in the wider NDJSON ecosystem.
pub fn render_ndjson(record: &EventRecord<'_>) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"ts_us\":");
    out.push_str(&record.ts_us.to_string());
    out.push_str(",\"level\":\"");
    out.push_str(record.level.as_str());
    out.push_str("\",\"target\":\"");
    escape_json_into(&mut out, record.target);
    out.push_str("\",\"event\":\"");
    escape_json_into(&mut out, record.name);
    out.push('"');
    for (key, value) in record.fields {
        out.push_str(",\"");
        escape_json_into(&mut out, key);
        out.push_str("\":");
        value_json_into(&mut out, value);
    }
    out.push('}');
    out
}

/// Renders one event for humans (no trailing newline):
/// `[  0.012s INFO  hdoutlier.core] discretize elapsed_us=11987`.
pub fn render_human(record: &EventRecord<'_>) -> String {
    let secs = record.ts_us as f64 / 1e6;
    let mut out = format!(
        "[{secs:>9.3}s {} {}] {}",
        record.level.padded(),
        record.target,
        record.name
    );
    for (key, value) in record.fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        out.push_str(&value.to_string());
    }
    out
}

/// Human-readable lines on stderr. The default interactive sink.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, record: &EventRecord<'_>) {
        // A dead stderr is not worth panicking the pipeline over.
        let _ = writeln!(std::io::stderr().lock(), "{}", render_human(record));
    }
}

/// One NDJSON object per event, written to any `Write`. Lines are written
/// atomically under an internal mutex so concurrent emitters interleave at
/// line granularity.
#[derive(Debug)]
pub struct NdjsonSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> NdjsonSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        NdjsonSink {
            writer: Mutex::new(writer),
        }
    }
}

impl NdjsonSink<std::io::Stderr> {
    /// NDJSON to stderr — what the CLI's `--log-json` installs.
    pub fn stderr() -> Self {
        NdjsonSink::new(std::io::stderr())
    }
}

impl<W: Write + Send> Sink for NdjsonSink<W> {
    fn emit(&self, record: &EventRecord<'_>) {
        let mut writer = self.writer.lock().expect("ndjson writer lock");
        let _ = writeln!(writer, "{}", render_ndjson(record));
    }
}

/// Stores rendered NDJSON lines in memory. For tests.
#[derive(Debug, Default)]
pub struct CaptureSink {
    lines: Mutex<Vec<String>>,
}

impl CaptureSink {
    /// All lines captured so far, in emit order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("capture lock").clone()
    }
}

impl Sink for CaptureSink {
    fn emit(&self, record: &EventRecord<'_>) {
        self.lines
            .lock()
            .expect("capture lock")
            .push(render_ndjson(record));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;

    fn record<'a>(fields: &'a [(&'a str, Value<'a>)]) -> EventRecord<'a> {
        EventRecord {
            ts_us: 12_345,
            level: Level::Info,
            target: "hdoutlier.test",
            name: "thing",
            fields,
        }
    }

    #[test]
    fn ndjson_line_shape() {
        let fields = [
            ("n", Value::U64(3)),
            ("ratio", Value::F64(0.5)),
            ("ok", Value::Bool(true)),
            ("who", Value::Str("a b")),
        ];
        let line = render_ndjson(&record(&fields));
        assert_eq!(
            line,
            "{\"ts_us\":12345,\"level\":\"info\",\"target\":\"hdoutlier.test\",\
             \"event\":\"thing\",\"n\":3,\"ratio\":0.5,\"ok\":true,\"who\":\"a b\"}"
        );
    }

    #[test]
    fn ndjson_escapes_strings_and_nonfinite_floats() {
        let fields = [
            ("msg", Value::Str("a\"b\\c\nd\te\u{1}")),
            ("nan", Value::F64(f64::NAN)),
            ("inf", Value::F64(f64::INFINITY)),
        ];
        let line = render_ndjson(&record(&fields));
        assert!(
            line.contains("\"msg\":\"a\\\"b\\\\c\\nd\\te\\u0001\""),
            "{line}"
        );
        assert!(line.contains("\"nan\":null"), "{line}");
        assert!(line.contains("\"inf\":null"), "{line}");
    }

    #[test]
    fn human_line_shape() {
        let fields = [("n", Value::U64(3)), ("who", Value::Str("x"))];
        let line = render_human(&record(&fields));
        assert_eq!(line, "[    0.012s INFO  hdoutlier.test] thing n=3 who=x");
    }

    #[test]
    fn capture_sink_collects() {
        let sink = CaptureSink::default();
        sink.emit(&record(&[]));
        sink.emit(&record(&[]));
        assert_eq!(sink.lines().len(), 2);
    }

    #[test]
    fn ndjson_sink_writes_lines() {
        let sink = NdjsonSink::new(Vec::new());
        sink.emit(&record(&[("n", Value::U64(1))]));
        sink.emit(&record(&[]));
        let buf = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
