//! Prometheus text exposition (format version 0.0.4) rendered from a
//! registry snapshot.
//!
//! The workspace is hermetic, so this is a from-scratch implementation of
//! the exposition format subset the registry needs: `# HELP` / `# TYPE`
//! comment lines, counters (with the conventional `_total` suffix), gauges,
//! and histograms as cumulative `_bucket{le="…"}` series plus `_sum` and
//! `_count`. Dotted registry names (`hdoutlier.stream.records`) are
//! sanitized to the metric-name grammar (`hdoutlier_stream_records`); the
//! original dotted name is preserved as the HELP text so scrape output can
//! be mapped back to `docs/metrics.md`.

use crate::metrics::{MetricSnapshot, Registry, SnapshotValue};

// ---------------------------------------------------------------------------
// Process vitals from /proc (Linux) — RSS and CPU time, zero-dependency.
// ---------------------------------------------------------------------------

/// A point-in-time reading of the process vitals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProcVitals {
    rss_bytes: u64,
    cpu_user_ms: u64,
    cpu_sys_ms: u64,
}

/// Reads `AT_PAGESZ` (6) and `AT_CLKTCK` (17) from `/proc/self/auxv` — the
/// zero-dependency way to learn the page size and `USER_HZ` that
/// `sysconf(3)` would report. Falls back to the overwhelmingly common
/// 4096 / 100 when the vector is unreadable.
#[cfg(target_os = "linux")]
fn auxv_values() -> (u64, u64) {
    let mut page_size = 4096u64;
    let mut clk_tck = 100u64;
    if let Ok(raw) = std::fs::read("/proc/self/auxv") {
        let word = std::mem::size_of::<usize>();
        for pair in raw.chunks_exact(word * 2) {
            let mut key = [0u8; 8];
            let mut val = [0u8; 8];
            key[..word].copy_from_slice(&pair[..word]);
            val[..word].copy_from_slice(&pair[word..]);
            let (key, val) = (u64::from_le_bytes(key), u64::from_le_bytes(val));
            match key {
                6 => page_size = val.max(1),
                17 => clk_tck = val.max(1),
                0 => break, // AT_NULL terminates the vector
                _ => {}
            }
        }
    }
    (page_size, clk_tck)
}

/// Parses `/proc/self/statm` (RSS in pages, field 2) and `/proc/self/stat`
/// (utime/stime in clock ticks, fields 14/15 counted from 1 — located
/// after the last `)` so a comm containing spaces or parentheses cannot
/// shift them). Returns `None` when either file is unreadable or
/// malformed.
#[cfg(target_os = "linux")]
fn read_proc_vitals() -> Option<ProcVitals> {
    let (page_size, clk_tck) = auxv_values();
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let rss_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the comm: state is field 3, utime field 14, stime 15.
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_whitespace();
    let utime_ticks: u64 = fields.nth(11)?.parse().ok()?; // field 14
    let stime_ticks: u64 = fields.next()?.parse().ok()?; // field 15
    let ticks_to_ms = |t: u64| t.saturating_mul(1000) / clk_tck;
    Some(ProcVitals {
        rss_bytes: rss_pages.saturating_mul(page_size),
        cpu_user_ms: ticks_to_ms(utime_ticks),
        cpu_sys_ms: ticks_to_ms(stime_ticks),
    })
}

/// Non-Linux fallback: no `/proc`, no vitals — the gauges are simply never
/// registered, which is more honest than exposing zeros.
#[cfg(not(target_os = "linux"))]
fn read_proc_vitals() -> Option<ProcVitals> {
    None
}

/// Registers (on first success) and refreshes the `/proc`-backed process
/// vitals on the global registry:
///
/// - `hdoutlier.process.rss_bytes` — gauge, resident set size;
/// - `hdoutlier.process.cpu_user_ms` — gauge, user-mode CPU milliseconds
///   since process start (monotone; milliseconds because an i64 gauge of
///   whole seconds would lose every short run);
/// - `hdoutlier.process.cpu_sys_ms` — gauge, kernel-mode CPU milliseconds.
///
/// Called from [`crate::refresh_process_metrics`] on every scrape and
/// snapshot. A no-op on platforms without `/proc/self`.
pub(crate) fn refresh_process_vitals() {
    let Some(vitals) = read_proc_vitals() else {
        return;
    };
    let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    let r = crate::metrics::registry();
    r.gauge("hdoutlier.process.rss_bytes")
        .set(clamp(vitals.rss_bytes));
    r.gauge("hdoutlier.process.cpu_user_ms")
        .set(clamp(vitals.cpu_user_ms));
    r.gauge("hdoutlier.process.cpu_sys_ms")
        .set(clamp(vitals.cpu_sys_ms));
}

/// Rewrites `name` into the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes `_`, and a
/// leading digit is prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition spec: backslash, double quote,
/// and line feed.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text per the exposition spec: backslash and line feed
/// (double quotes are legal in help text).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `le` bound: finite bounds via shortest-float `Display`
/// (`"1"`, `"0.5"`, `"20000000"`), the overflow bucket as `"+Inf"`.
fn format_le(bound: f64) -> String {
    if bound.is_finite() {
        bound.to_string()
    } else {
        "+Inf".to_string()
    }
}

/// Formats a sample value. Non-finite sums (impossible today, defensive)
/// render as the exposition spec's `NaN`.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        v.to_string()
    }
}

/// Renders `k="v",…` (no surrounding braces) from snapshot label pairs,
/// names sanitized, values escaped. Empty input renders empty.
fn render_label_pairs(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize_metric_name(k));
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out
}

/// Appends `name{pairs} value\n`, omitting the braces when `pairs` is
/// empty.
fn push_sample(out: &mut String, name: &str, pairs: &str, value: &str) {
    out.push_str(name);
    if !pairs.is_empty() {
        out.push('{');
        out.push_str(pairs);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Renders a snapshot as Prometheus text exposition. Metrics keep the
/// snapshot's name ordering (sorted — the registry snapshot is a BTreeMap
/// walk), each family preceded by one `# HELP` / `# TYPE` pair — labeled
/// families emit the header once, then one series per label set in the
/// snapshot's deterministic order. Counters gain a `_total` suffix unless
/// already present; histograms emit cumulative buckets ending in `+Inf`
/// (with `le` as the last label), then `_sum` and `_count` per label set.
pub fn render_prometheus(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::with_capacity(snapshot.len() * 128);
    let mut last_header: Option<String> = None;
    let mut header = |out: &mut String, name: &str, source: &str, kind: &str| {
        if last_header.as_deref() == Some(name) {
            return;
        }
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(&escape_help(source));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        last_header = Some(name.to_string());
    };
    for m in snapshot {
        let base = sanitize_metric_name(&m.name);
        let pairs = render_label_pairs(&m.labels);
        match &m.value {
            SnapshotValue::Counter(v) => {
                let name = if base.ends_with("_total") {
                    base
                } else {
                    format!("{base}_total")
                };
                header(&mut out, &name, &m.name, "counter");
                push_sample(&mut out, &name, &pairs, &v.to_string());
            }
            SnapshotValue::Gauge(v) => {
                header(&mut out, &base, &m.name, "gauge");
                push_sample(&mut out, &base, &pairs, &v.to_string());
            }
            SnapshotValue::Histogram(h) => {
                header(&mut out, &base, &m.name, "histogram");
                let mut cumulative = 0u64;
                for (le, count) in &h.buckets {
                    cumulative += count;
                    let mut bucket_pairs = pairs.clone();
                    if !bucket_pairs.is_empty() {
                        bucket_pairs.push(',');
                    }
                    bucket_pairs.push_str("le=\"");
                    bucket_pairs.push_str(&escape_label_value(&format_le(*le)));
                    bucket_pairs.push('"');
                    push_sample(
                        &mut out,
                        &format!("{base}_bucket"),
                        &bucket_pairs,
                        &cumulative.to_string(),
                    );
                }
                push_sample(
                    &mut out,
                    &format!("{base}_sum"),
                    &pairs,
                    &format_value(h.sum),
                );
                push_sample(
                    &mut out,
                    &format!("{base}_count"),
                    &pairs,
                    &h.count.to_string(),
                );
            }
        }
    }
    out
}

impl Registry {
    /// [`render_prometheus`] over this registry's current snapshot.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitization_rewrites_dots_and_leading_digits() {
        assert_eq!(
            sanitize_metric_name("hdoutlier.stream.records"),
            "hdoutlier_stream_records"
        );
        assert_eq!(sanitize_metric_name("9lives-x:y"), "_9lives_x:y");
        assert_eq!(sanitize_metric_name("µs"), "_s");
    }

    #[test]
    fn label_escaping_covers_spec_characters() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn counter_gains_total_suffix_once() {
        let r = Registry::new();
        r.counter("a.requests").add(3);
        r.counter("b.bytes_total").add(7);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE a_requests_total counter"), "{text}");
        assert!(text.contains("\na_requests_total 3\n"), "{text}");
        assert!(text.contains("\nb_bytes_total 7\n"), "{text}");
        assert!(!text.contains("total_total"), "{text}");
    }

    #[test]
    fn gauge_renders_signed_value() {
        let r = Registry::new();
        r.gauge("x.depth").set(-4);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE x_depth gauge"), "{text}");
        assert!(text.contains("\nx_depth -4\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_ordered_and_end_in_inf() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("t.lat_us", &[1.0, 2.0, 5.0]);
        for v in [0.5, 0.7, 1.5, 10.0] {
            h.record(v);
        }
        let text = r.render_prometheus();
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("t_lat_us_bucket"))
            .collect();
        assert_eq!(
            bucket_lines,
            vec![
                "t_lat_us_bucket{le=\"1\"} 2",
                "t_lat_us_bucket{le=\"2\"} 3",
                "t_lat_us_bucket{le=\"5\"} 3",
                "t_lat_us_bucket{le=\"+Inf\"} 4",
            ]
        );
        assert!(text.contains("\nt_lat_us_sum 12.7\n"), "{text}");
        assert!(text.contains("\nt_lat_us_count 4\n"), "{text}");
        assert!(text.contains("# TYPE t_lat_us histogram"), "{text}");
    }

    #[test]
    fn help_lines_carry_the_dotted_source_name() {
        let r = Registry::new();
        r.counter("hdoutlier.stream.records").inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP hdoutlier_stream_records_total hdoutlier.stream.records\n"),
            "{text}"
        );
    }

    #[test]
    fn labeled_counter_renders_one_header_and_series_per_label_set() {
        let r = Registry::new();
        let v = r.counter_vec("serve.requests", &["route", "status"]);
        v.with(&["/sessions/{id}/score", "200"]).add(9);
        v.with(&["/sessions/{id}/score", "500"]).add(1);
        v.with(&["/metrics", "200"]).add(2);
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE serve_requests_total counter").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains(
                "serve_requests_total{route=\"/metrics\",status=\"200\"} 2\n\
                 serve_requests_total{route=\"/sessions/{id}/score\",status=\"200\"} 9\n\
                 serve_requests_total{route=\"/sessions/{id}/score\",status=\"500\"} 1\n"
            ),
            "{text}"
        );
    }

    #[test]
    fn labeled_histogram_merges_labels_with_le_last() {
        let r = Registry::new();
        let v = r.histogram_vec_with_bounds("serve.lat_us", &["route"], &[1.0, 5.0]);
        v.with(&["/score"]).record(0.5);
        v.with(&["/score"]).record(3.0);
        v.with(&["/score"]).record(9.0);
        let text = r.render_prometheus();
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(
            lines,
            vec![
                "serve_lat_us_bucket{route=\"/score\",le=\"1\"} 1",
                "serve_lat_us_bucket{route=\"/score\",le=\"5\"} 2",
                "serve_lat_us_bucket{route=\"/score\",le=\"+Inf\"} 3",
                "serve_lat_us_sum{route=\"/score\"} 12.5",
                "serve_lat_us_count{route=\"/score\"} 3",
            ]
        );
        assert_eq!(
            text.matches("# TYPE serve_lat_us histogram").count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped_in_series() {
        let r = Registry::new();
        r.counter_vec("c", &["path"]).with(&["a\\b\"c\nd"]).inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("c_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "{text}"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn proc_vitals_read_and_publish() {
        let vitals = read_proc_vitals().expect("/proc/self readable on Linux");
        assert!(vitals.rss_bytes > 0, "{vitals:?}");
        // Burn a little user CPU so the counter is visibly monotone.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(31));
        }
        assert!(acc != 1);
        let again = read_proc_vitals().unwrap();
        assert!(again.cpu_user_ms >= vitals.cpu_user_ms);

        refresh_process_vitals();
        let r = crate::metrics::registry();
        assert!(r.gauge("hdoutlier.process.rss_bytes").get() > 0);
        assert!(r.gauge("hdoutlier.process.cpu_user_ms").get() >= 0);
        assert!(r.gauge("hdoutlier.process.cpu_sys_ms").get() >= 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn auxv_reports_sane_constants() {
        let (page_size, clk_tck) = auxv_values();
        assert!(
            page_size >= 1024 && page_size.is_power_of_two(),
            "{page_size}"
        );
        assert!(clk_tck > 0 && clk_tck <= 10_000, "{clk_tck}");
    }

    #[test]
    fn empty_histogram_still_exposes_buckets() {
        let r = Registry::new();
        r.histogram_with_bounds("h", &[1.0]);
        let text = r.render_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 0"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("\nh_count 0\n"), "{text}");
    }
}
