//! The global dispatcher: one process-wide level filter, sink slot, and
//! monotonic epoch.
//!
//! Disabled cost is the design constraint: [`enabled`] is a single relaxed
//! atomic load, and every emit helper checks it before touching the sink
//! lock or building anything. Hot paths that would need `Instant::now`
//! *before* knowing whether anyone is listening (per-record latency in the
//! streaming scorer) gate on [`timing_enabled`] instead, which is flipped
//! explicitly by whoever wants the numbers (the CLI's `--metrics-out`, the
//! benches).

use crate::event::{EventRecord, Field, Value};
use crate::level::Level;
use crate::sink::Sink;
use crate::trace::TraceBuffer;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// 0 = off; otherwise the admitted `Level as u8`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Whether hot paths should spend `Instant::now` calls on per-record timing.
static TIMING: AtomicBool = AtomicBool::new(false);
/// Fast gate mirroring whether a trace buffer is installed.
static TRACE_ON: AtomicBool = AtomicBool::new(false);
/// The installed sink, if any.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
/// The installed span trace buffer, if any.
static TRACE: RwLock<Option<Arc<TraceBuffer>>> = RwLock::new(None);
/// Monotonic epoch for event timestamps.
static START: OnceLock<Instant> = OnceLock::new();

/// Whether an event at `level` would reach a sink. One relaxed atomic load.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// The current filter, `None` when logging is off.
pub fn max_level() -> Option<Level> {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Sets the filter without touching the sink (`None` = off).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Whether hot-path wall-clock timing is on. One relaxed atomic load.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Turns hot-path wall-clock timing on or off.
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether a trace buffer is collecting spans. One relaxed atomic load.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Installs (or removes, with `None`) the span trace buffer. While a buffer
/// is installed every closed [`Span`] appends a Chrome-trace begin/end
/// pair, independent of the event level filter.
pub fn set_trace_buffer(buffer: Option<Arc<TraceBuffer>>) {
    let on = buffer.is_some();
    *TRACE.write().expect("trace lock") = buffer;
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Installs a sink and admits events at `level` and below (in severity).
/// Replaces any previous sink. The monotonic epoch is pinned on first
/// install, so timestamps from successive runs in one process share an
/// origin.
pub fn install(sink: Arc<dyn Sink>, level: Level) {
    let _ = START.get_or_init(Instant::now);
    crate::metrics::refresh_process_metrics();
    *SINK.write().expect("sink lock") = Some(sink);
    set_max_level(Some(level));
}

/// Removes the sink and turns the filter off.
pub fn uninstall() {
    set_max_level(None);
    *SINK.write().expect("sink lock") = None;
}

/// Microseconds since the dispatcher epoch (pinned on first use).
pub fn ts_us() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Emits one event. A no-op (no allocation, no lock) unless [`enabled`]
/// says a sink wants it. While a [`crate::RequestCtx`] is installed on the
/// calling thread, `request_id` / `session_id` fields are appended
/// automatically (the one small allocation this path ever makes, and only
/// when both a sink and a context are live).
pub fn event(level: Level, target: &str, name: &str, fields: &[Field<'_>]) {
    if !enabled(level) {
        return;
    }
    let guard = SINK.read().expect("sink lock");
    if let Some(sink) = guard.as_ref() {
        let ctx = crate::ctx::current_request_ctx();
        let mut tagged: Vec<Field<'_>>;
        let fields = match ctx.as_ref() {
            None => fields,
            Some(ctx) => {
                tagged = Vec::with_capacity(fields.len() + 2);
                tagged.extend_from_slice(fields);
                tagged.push(("request_id", Value::Str(ctx.request_id())));
                if let Some(session) = ctx.session_id() {
                    tagged.push(("session_id", Value::Str(session)));
                }
                &tagged
            }
        };
        sink.emit(&EventRecord {
            ts_us: ts_us(),
            level,
            target,
            name,
            fields,
        });
    }
}

/// A scope timer: emits `<name>` with an `elapsed_us` field when dropped,
/// and — when a trace buffer is installed — records a Chrome-trace
/// begin/end pair. Created disabled (no `Instant::now`, nothing on drop)
/// when the level is filtered out at entry and no trace buffer is active.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    /// Microseconds since the dispatcher epoch at open; only read when
    /// `start` is live and tracing is on.
    begin_us: u64,
    level: Level,
    target: &'static str,
    name: &'static str,
    /// Whether this span pushed a frame onto the profiler's per-thread
    /// stack at open (captured so the pop always matches the push, even if
    /// a sampling session starts or stops while the span is live).
    profiled: bool,
}

impl Span {
    /// Elapsed microseconds so far; `None` when the span is disabled.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_micros() as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::pop_frame();
        }
        if let Some(start) = self.start {
            let us = start.elapsed().as_micros() as u64;
            // A span may be live for the trace buffer alone; the event
            // still honors the level filter.
            if enabled(self.level) {
                event(
                    self.level,
                    self.target,
                    self.name,
                    &[("elapsed_us", Value::U64(us))],
                );
            }
            if trace_enabled() {
                let guard = TRACE.read().expect("trace lock");
                if let Some(buffer) = guard.as_ref() {
                    buffer.push_span(
                        self.target,
                        self.name,
                        self.begin_us,
                        self.begin_us + us,
                        crate::trace::current_tid(),
                        crate::ctx::current_request_ctx(),
                    );
                }
            }
        }
    }
}

/// Opens a [`Span`]. `target` and `name` are `'static` so the guard stores
/// them without allocating. Live when the level passes the filter *or* a
/// trace buffer is collecting; independently of either, the span publishes
/// a stack frame to the sampling profiler while a session is live
/// ([`crate::profile_enabled`] — profile-only spans never touch the clock).
pub fn span(level: Level, target: &'static str, name: &'static str) -> Span {
    let live = enabled(level) || trace_enabled();
    let profiled = crate::profile::profile_enabled();
    if profiled {
        crate::profile::push_frame(target, name);
    }
    Span {
        start: live.then(Instant::now),
        begin_us: if live { ts_us() } else { 0 },
        level,
        target,
        name,
        profiled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CaptureSink;
    use std::sync::Mutex;

    /// The dispatcher is process-global; tests that touch it serialize here.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn filter_sink_and_span_lifecycle() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        uninstall();
        assert!(!enabled(Level::Error));
        assert_eq!(max_level(), None);
        // Emitting with no sink is a no-op, not a panic.
        event(Level::Error, "hdoutlier.test", "ignored", &[]);
        {
            let s = span(Level::Info, "hdoutlier.test", "dead");
            assert_eq!(s.elapsed_us(), None);
        }

        let capture = Arc::new(CaptureSink::default());
        install(capture.clone(), Level::Info);
        assert!(enabled(Level::Error) && enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert_eq!(max_level(), Some(Level::Info));

        event(Level::Debug, "hdoutlier.test", "filtered", &[]);
        event(
            Level::Info,
            "hdoutlier.test",
            "kept",
            &[("n", Value::U64(1))],
        );
        {
            let s = span(Level::Info, "hdoutlier.test", "work");
            assert!(s.elapsed_us().is_some());
        }
        let lines = capture.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"event\":\"kept\""), "{}", lines[0]);
        assert!(lines[1].contains("\"event\":\"work\""), "{}", lines[1]);
        assert!(lines[1].contains("\"elapsed_us\":"), "{}", lines[1]);

        uninstall();
        event(Level::Error, "hdoutlier.test", "after", &[]);
        assert_eq!(capture.lines().len(), 2);
    }

    #[test]
    fn timing_flag_flips() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        set_timing(false);
        assert!(!timing_enabled());
        set_timing(true);
        assert!(timing_enabled());
        set_timing(false);
    }

    #[test]
    fn spans_feed_the_trace_buffer_without_a_sink() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        uninstall();
        let buf = Arc::new(TraceBuffer::new());
        set_trace_buffer(Some(buf.clone()));
        assert!(trace_enabled());
        {
            // Debug is filtered (no sink installed), yet the span is live
            // for the trace buffer.
            let s = span(Level::Debug, "hdoutlier.test", "traced");
            assert!(s.elapsed_us().is_some());
        }
        set_trace_buffer(None);
        assert!(!trace_enabled());
        assert_eq!(buf.len(), 2);
        {
            let _dead = span(Level::Debug, "hdoutlier.test", "untraced");
        }
        assert_eq!(buf.len(), 2, "span recorded after buffer removal");
        let json = buf.to_chrome_json();
        assert!(json.contains("\"name\":\"traced\""), "{json}");
    }

    #[test]
    fn events_inherit_the_request_context() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        let capture = Arc::new(CaptureSink::default());
        install(capture.clone(), Level::Info);
        event(Level::Info, "hdoutlier.test", "plain", &[]);
        {
            let _ctx = crate::ctx::set_request_ctx(crate::ctx::RequestCtx::with_session(
                "req-7", "sess-a",
            ));
            event(
                Level::Info,
                "hdoutlier.test",
                "tagged",
                &[("n", Value::U64(1))],
            );
        }
        event(Level::Info, "hdoutlier.test", "after", &[]);
        uninstall();
        let lines = capture.lines();
        assert!(!lines[0].contains("request_id"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"n\":1")
                && lines[1].contains("\"request_id\":\"req-7\"")
                && lines[1].contains("\"session_id\":\"sess-a\""),
            "{}",
            lines[1]
        );
        assert!(!lines[2].contains("request_id"), "{}", lines[2]);
    }

    #[test]
    fn timestamps_are_monotone() {
        let a = ts_us();
        let b = ts_us();
        assert!(b >= a);
    }
}
