//! Allocation accounting: an optional counting wrapper around the system
//! allocator.
//!
//! A binary opts in with one line:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hdoutlier_obs::CountingAllocator = hdoutlier_obs::CountingAllocator;
//! ```
//!
//! The `hdoutlier` CLI does; the bench binaries deliberately do not, so the
//! `--assert-against` perf gates measure the unwrapped allocator.
//!
//! Every allocation and free updates five plain static atomics — the
//! allocator path never touches the metrics registry (whose mutex and
//! `BTreeMap` themselves allocate) or any lock. The registry sees the
//! numbers through [`refresh_alloc_metrics`], called on the same scrape
//! paths as the process metrics, as `hdoutlier.alloc.*` gauges. While a
//! profiling session is live, allocated bytes are additionally credited to
//! the calling thread's profiler slot so the sampler can attribute them to
//! the innermost live span ([`crate::ProfileReport::to_folded_bytes`]).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES_TOTAL: AtomicU64 = AtomicU64::new(0);
static BYTES_LIVE: AtomicU64 = AtomicU64::new(0);
static BYTES_PEAK: AtomicU64 = AtomicU64::new(0);

fn record_alloc(bytes: usize) {
    let bytes = bytes as u64;
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    BYTES_TOTAL.fetch_add(bytes, Ordering::Relaxed);
    let live = BYTES_LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    let mut peak = BYTES_PEAK.load(Ordering::Relaxed);
    while live > peak {
        match BYTES_PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => peak = seen,
        }
    }
    crate::profile::note_alloc(bytes);
}

fn record_free(bytes: usize) {
    FREES.fetch_add(1, Ordering::Relaxed);
    // Saturating: frees of memory allocated before the wrapper was
    // installed (impossible for a `#[global_allocator]`, defensive anyway)
    // must not wrap the live gauge.
    let bytes = bytes as u64;
    let mut live = BYTES_LIVE.load(Ordering::Relaxed);
    loop {
        let next = live.saturating_sub(bytes);
        match BYTES_LIVE.compare_exchange_weak(live, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => live = seen,
        }
    }
}

/// A [`GlobalAlloc`] that delegates to [`System`] and counts
/// allocations, frees, and bytes (current, total, peak). Install it with
/// `#[global_allocator]` in a binary to light up the `hdoutlier.alloc.*`
/// gauges and the bytes-weighted profile.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System` unchanged; the accounting
// touches only static atomics and a const-initialized TLS cell, so it
// cannot allocate, lock, or re-enter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Count a grow as an allocation of the delta (that is the new
            // memory pressure); a shrink only lowers the live gauge.
            if new_size > layout.size() {
                record_alloc(new_size - layout.size());
            } else {
                record_free(layout.size() - new_size);
                // record_free counted a free; reclassify: a shrink is not a
                // free of an allocation.
                FREES.fetch_sub(1, Ordering::Relaxed);
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// A point-in-time copy of the allocator counters. All zeros when the
/// counting allocator is not installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations observed (including the grow side of reallocs).
    pub allocations: u64,
    /// Frees observed.
    pub frees: u64,
    /// Cumulative bytes ever allocated.
    pub bytes_total: u64,
    /// Bytes currently live.
    pub bytes_live: u64,
    /// High-water mark of live bytes.
    pub bytes_peak: u64,
}

/// Reads the allocator counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes_total: BYTES_TOTAL.load(Ordering::Relaxed),
        bytes_live: BYTES_LIVE.load(Ordering::Relaxed),
        bytes_peak: BYTES_PEAK.load(Ordering::Relaxed),
    }
}

/// Copies the allocator counters into `hdoutlier.alloc.*` gauges on the
/// global registry. A no-op while the counting allocator is not installed
/// (nothing has ever been counted), so processes on the plain system
/// allocator don't expose a row of misleading zeros.
pub(crate) fn refresh_alloc_metrics() {
    let stats = alloc_stats();
    if stats.allocations == 0 {
        return;
    }
    let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    let r = crate::metrics::registry();
    r.gauge("hdoutlier.alloc.allocations")
        .set(clamp(stats.allocations));
    r.gauge("hdoutlier.alloc.frees").set(clamp(stats.frees));
    r.gauge("hdoutlier.alloc.bytes_total")
        .set(clamp(stats.bytes_total));
    r.gauge("hdoutlier.alloc.bytes_live")
        .set(clamp(stats.bytes_live));
    r.gauge("hdoutlier.alloc.bytes_peak")
        .set(clamp(stats.bytes_peak));
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs test binary does not install the wrapper globally, so these
    // tests drive the `GlobalAlloc` impl directly.

    #[test]
    fn counts_allocs_frees_and_peak() {
        let before = alloc_stats();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        unsafe {
            let a = CountingAllocator.alloc(layout);
            assert!(!a.is_null());
            let b = CountingAllocator.alloc_zeroed(layout);
            assert!(!b.is_null());
            assert!(b.add(100).read() == 0);
            CountingAllocator.dealloc(a, layout);
            CountingAllocator.dealloc(b, layout);
        }
        let after = alloc_stats();
        assert!(after.allocations >= before.allocations + 2);
        assert!(after.frees >= before.frees + 2);
        assert!(after.bytes_total >= before.bytes_total + 8192);
        assert!(after.bytes_peak >= 4096);
    }

    #[test]
    fn realloc_counts_only_the_delta() {
        let before = alloc_stats();
        let layout = Layout::from_size_align(1000, 8).unwrap();
        unsafe {
            let p = CountingAllocator.alloc(layout);
            let grown = CountingAllocator.realloc(p, layout, 3000);
            assert!(!grown.is_null());
            let grown_layout = Layout::from_size_align(3000, 8).unwrap();
            let shrunk = CountingAllocator.realloc(grown, grown_layout, 500);
            assert!(!shrunk.is_null());
            CountingAllocator.dealloc(shrunk, Layout::from_size_align(500, 8).unwrap());
        }
        let after = alloc_stats();
        // 1000 + 2000 grow (the shrink adds no bytes_total).
        assert!(after.bytes_total >= before.bytes_total + 3000);
        assert!(after.bytes_total < before.bytes_total + 3000 + 2500);
        // Everything was returned.
        assert!(after.frees > before.frees);
    }

    #[test]
    fn refresh_skips_or_publishes_consistently() {
        // By the time this runs, other tests in this binary have driven the
        // wrapper directly, so the refresh publishes.
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = CountingAllocator.alloc(layout);
            CountingAllocator.dealloc(p, layout);
        }
        refresh_alloc_metrics();
        let r = crate::metrics::registry();
        assert!(r.gauge("hdoutlier.alloc.allocations").get() > 0);
        assert!(r.gauge("hdoutlier.alloc.bytes_peak").get() > 0);
    }
}
