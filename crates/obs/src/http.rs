//! Live telemetry serving: a minimal HTTP/1.1 responder over
//! `std::net::TcpListener`, good enough for a Prometheus scraper, a
//! load-balancer health probe, and `curl`.
//!
//! Endpoints:
//!
//! - `GET /metrics`  — Prometheus text exposition ([`crate::render_prometheus`])
//! - `GET /healthz`  — `200 ok`, for liveness probes
//! - `GET /snapshot` — the registry's NDJSON snapshot (same dialect as
//!   `--metrics-out`)
//!
//! One background thread accepts and answers connections serially — scrape
//! traffic is rare and tiny, and serial handling keeps the server free of
//! pools and queues. Request parsing is bounded (first line only, 8 KiB
//! cap, 2 s read timeout) so a stuck or hostile client cannot wedge the
//! thread for long. Shutdown flips an `Arc<AtomicBool>` and then connects
//! to the listener itself so the blocking `accept` wakes immediately.

use crate::metrics::{refresh_process_metrics, Registry};
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on buffered request bytes; everything after the request line is
/// ignored anyway.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running telemetry server. Dropping (or calling
/// [`MetricsServer::shutdown`]) stops the background thread and joins it.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port `0` picks an ephemeral
    /// port — read it back from [`MetricsServer::local_addr`]) and starts
    /// serving `registry` on a background thread.
    ///
    /// # Errors
    /// The bind or thread-spawn failure, untouched.
    pub fn serve(addr: &str, registry: &'static Registry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("hdoutlier-telemetry".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = handle_connection(&mut stream, registry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a connection to ourselves. When the
        // listener was bound to a wildcard address, connect via loopback.
        let wake_ip = match self.addr.ip() {
            ip if ip.is_unspecified() && ip.is_ipv4() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            ip if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            ip => ip,
        };
        let _ = TcpStream::connect_timeout(&SocketAddr::new(wake_ip, self.addr.port()), IO_TIMEOUT);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads the request head (bounded) and writes one response.
fn handle_connection(stream: &mut TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf = [0u8; MAX_REQUEST_BYTES];
    let mut filled = 0usize;
    // Read until the request line is complete (or the head ends, or the
    // bound is hit): everything past the first CRLF is ignored.
    while filled < buf.len() && !buf[..filled].contains(&b'\n') {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(stream, 400, "Bad Request", "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(
            stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    // Drop any query string; scrapers sometimes append one.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            refresh_process_metrics();
            let body = registry.render_prometheus();
            respond(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(stream, 200, "OK", "text/plain", "ok\n"),
        "/snapshot" => {
            refresh_process_metrics();
            let body = registry.snapshot_ndjson();
            respond(stream, 200, "OK", "application/x-ndjson", &body)
        }
        _ => respond(
            stream,
            404,
            "Not Found",
            "text/plain",
            "try /metrics, /healthz, or /snapshot\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A private registry with `'static` lifetime for the serving thread.
    static TEST_REGISTRY: Registry = Registry::new();

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response");
        out
    }

    #[test]
    fn serves_metrics_healthz_snapshot_and_errors() {
        TEST_REGISTRY.counter("http.test.hits").add(5);
        TEST_REGISTRY.histogram_with_bounds("http.test.lat", &[1.0]);
        let server = MetricsServer::serve("127.0.0.1:0", &TEST_REGISTRY).expect("bind");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("http_test_hits_total 5"), "{metrics}");
        assert!(
            metrics.contains("http_test_lat_bucket{le=\"+Inf\"} 0"),
            "{metrics}"
        );

        let health = get(addr, "/healthz");
        assert!(health.ends_with("ok\n"), "{health}");

        let snapshot = get(addr, "/snapshot");
        assert!(snapshot.contains("application/x-ndjson"), "{snapshot}");
        assert!(
            snapshot.contains("{\"metric\":\"http.test.hits\",\"type\":\"counter\",\"value\":5}"),
            "{snapshot}"
        );

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let query = get(addr, "/healthz?probe=1");
        assert!(query.starts_with("HTTP/1.1 200"), "{query}");

        // Non-GET is rejected without wedging the server.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");

        server.shutdown();
        // The port is released: a fresh bind to the same address works.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok());
    }

    #[test]
    fn drop_joins_the_serving_thread() {
        let server = MetricsServer::serve("127.0.0.1:0", &TEST_REGISTRY).expect("bind");
        let addr = server.local_addr();
        drop(server);
        // After drop the listener is gone; connects are refused (or time
        // out) rather than being accepted.
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        assert!(refused.is_err(), "listener still accepting after drop");
    }
}
