//! Live telemetry serving, riding on the shared [`hdoutlier_net`] HTTP
//! server.
//!
//! Endpoints:
//!
//! - `GET /metrics`  — Prometheus text exposition ([`crate::render_prometheus`])
//! - `GET /healthz`  — `200 ok`, for liveness probes; `503 unhealthy` when
//!   an [`SloEngine`] reports [`crate::SloVerdict::Unhealthy`]
//! - `GET /snapshot` — the registry's NDJSON snapshot (same dialect as
//!   `--metrics-out`)
//! - `GET /status`   — the SLO report ([`crate::SloReport::to_json`];
//!   `?format=text` for the human rendering)
//! - `GET /profile`  — runs a span-stack sampling session
//!   ([`crate::profile_for`]) and returns it; `?seconds=N` (default 2,
//!   capped at 30), `?hz=N` (default 99, capped at 1000), and
//!   `?format=folded|svg|json` select the window, rate, and rendering
//!
//! `/profile` blocks its worker for the whole sampling window by design —
//! the pool has a second worker, so scrapes keep being answered beside a
//! running profile.
//!
//! The HTTP mechanics (bounded request parsing, connection budget, worker
//! threads, graceful drain) live in `hdoutlier-net`; this module is only
//! the telemetry *routes*. [`telemetry_response`] is public so other
//! servers — the `hdoutlier serve` scoring API — can mount the same
//! endpoints on their own listener and get `/metrics` for free. Callers
//! without an SLO engine pass `None` and get an always-healthy `/status`.
//!
//! Connections are handled on a small worker pool with a bounded budget,
//! so one slow or stuck client occupies one worker instead of wedging the
//! accept loop: scrapes keep being answered beside it. Each response
//! closes its connection (`max_requests_per_connection = 1`) — scrape
//! clients open fresh connections per poll, and close-after-response keeps
//! plain `read_to_string` consumers working.

use crate::metrics::{refresh_process_metrics, Registry};
use crate::slo::{SloEngine, SloVerdict};
use hdoutlier_net::{Request, Response, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Routes one request against the telemetry endpoints. Returns `None` for
/// paths this module does not own, so composing servers can try their own
/// routes first and fall back here (or vice versa). `slo` powers `/status`
/// and the `/healthz` verdict; pass `None` to serve both without SLO
/// evaluation (always healthy).
pub fn telemetry_response(
    request: &Request,
    registry: &Registry,
    slo: Option<&SloEngine>,
) -> Option<Response> {
    if !matches!(
        request.path.as_str(),
        "/metrics" | "/healthz" | "/snapshot" | "/status" | "/profile"
    ) {
        return None;
    }
    if request.method != "GET" {
        return Some(Response::text(405, "only GET is supported\n"));
    }
    Some(match request.path.as_str() {
        "/profile" => return Some(profile_response(request.query.as_deref())),
        "/metrics" => {
            refresh_process_metrics();
            Response::text(200, registry.render_prometheus())
                .with_content_type("text/plain; version=0.0.4; charset=utf-8")
        }
        "/healthz" => match slo.map(|engine| engine.evaluate().overall) {
            Some(SloVerdict::Unhealthy) => Response::text(503, "unhealthy\n"),
            _ => Response::text(200, "ok\n"),
        },
        "/status" => {
            let text = request.query.as_deref() == Some("format=text");
            match slo {
                Some(engine) => {
                    let report = engine.evaluate();
                    if text {
                        Response::text(200, report.to_text())
                    } else {
                        Response::json(200, report.to_json())
                    }
                }
                // No engine: a fixed healthy document, so probes work the
                // same against servers that never configured SLOs.
                None if text => Response::text(200, "status: healthy\n"),
                None => Response::json(200, "{\"status\":\"healthy\",\"keys\":[]}\n"),
            }
        }
        _ => {
            refresh_process_metrics();
            Response::ndjson(200, registry.snapshot_ndjson())
        }
    })
}

/// Handles `GET /profile`: parses the query, runs a blocking sampling
/// session, and renders it. Unknown query keys are ignored (probe
/// forgiveness); malformed values and unknown formats are a 400 so a typo
/// doesn't silently profile with defaults.
fn profile_response(query: Option<&str>) -> Response {
    let mut seconds = 2.0f64;
    let mut hz = 99u32;
    let mut format = "folded";
    for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "seconds" => match value.parse::<f64>() {
                Ok(s) if s > 0.0 && s.is_finite() => seconds = s.min(30.0),
                _ => return Response::text(400, "seconds must be a positive number (max 30)\n"),
            },
            "hz" => match value.parse::<u32>() {
                Ok(h) if h > 0 => hz = h.min(1000),
                _ => return Response::text(400, "hz must be a positive integer (max 1000)\n"),
            },
            "format" => match value {
                "folded" | "svg" | "json" => format = value,
                _ => return Response::text(400, "format must be folded, svg, or json\n"),
            },
            _ => {}
        }
    }
    let report = crate::profile::profile_for(Duration::from_secs_f64(seconds), hz);
    match format {
        "svg" => Response::text(200, report.to_svg()).with_content_type("image/svg+xml"),
        "json" => Response::json(200, report.to_json()),
        _ => Response::text(200, report.to_folded()),
    }
}

/// The [`ServerConfig`] the telemetry endpoint uses: a couple of workers,
/// a small connection budget, tight limits (scrape requests are tiny), and
/// no keep-alive.
pub fn telemetry_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 16,
        max_head_bytes: 8 * 1024,
        max_body_bytes: 8 * 1024,
        io_timeout: Duration::from_secs(2),
        max_requests_per_connection: 1,
        head_deadline: Duration::from_secs(5),
        body_deadline: Duration::from_secs(5),
        connection_lifetime: Duration::from_secs(30),
        retry_after: Duration::from_secs(1),
    }
}

/// A running telemetry server. Dropping (or calling
/// [`MetricsServer::shutdown`]) stops the worker threads and joins them.
#[derive(Debug)]
pub struct MetricsServer {
    server: Option<Server>,
    addr: SocketAddr,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port `0` picks an ephemeral
    /// port — read it back from [`MetricsServer::local_addr`]) and starts
    /// serving `registry` on background threads.
    ///
    /// # Errors
    /// The bind or thread-spawn failure, untouched.
    pub fn serve(addr: &str, registry: &'static Registry) -> std::io::Result<Self> {
        let handler = Arc::new(move |request: &Request| {
            telemetry_response(request, registry, None).unwrap_or_else(|| {
                Response::text(404, "try /metrics, /healthz, /snapshot, or /status\n")
            })
        });
        let server = Server::bind(addr, telemetry_config(), handler)?;
        let addr = server.local_addr();
        Ok(MetricsServer {
            server: Some(server),
            addr,
        })
    }

    /// The bound address (the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight scrapes, and joins the threads.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    /// A private registry with `'static` lifetime for the serving thread.
    static TEST_REGISTRY: Registry = Registry::new();

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response");
        out
    }

    #[test]
    fn serves_metrics_healthz_snapshot_and_errors() {
        TEST_REGISTRY.counter("http.test.hits").add(5);
        TEST_REGISTRY.histogram_with_bounds("http.test.lat", &[1.0]);
        let server = MetricsServer::serve("127.0.0.1:0", &TEST_REGISTRY).expect("bind");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("http_test_hits_total 5"), "{metrics}");
        assert!(
            metrics.contains("http_test_lat_bucket{le=\"+Inf\"} 0"),
            "{metrics}"
        );

        let health = get(addr, "/healthz");
        assert!(health.ends_with("ok\n"), "{health}");

        let snapshot = get(addr, "/snapshot");
        assert!(snapshot.contains("application/x-ndjson"), "{snapshot}");
        assert!(
            snapshot.contains("{\"metric\":\"http.test.hits\",\"type\":\"counter\",\"value\":5}"),
            "{snapshot}"
        );

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let query = get(addr, "/healthz?probe=1");
        assert!(query.starts_with("HTTP/1.1 200"), "{query}");

        // Non-GET is rejected without wedging the server.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");

        server.shutdown();
        // The port is released: a fresh bind to the same address works.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok());
    }

    #[test]
    fn drop_joins_the_serving_thread() {
        let server = MetricsServer::serve("127.0.0.1:0", &TEST_REGISTRY).expect("bind");
        let addr = server.local_addr();
        drop(server);
        // After drop the listener is gone; connects are refused (or time
        // out) rather than being accepted.
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        assert!(refused.is_err(), "listener still accepting after drop");
    }

    #[test]
    fn a_stalled_connection_does_not_block_scrapes() {
        // Open a connection and send nothing: under the old serial-accept
        // server this wedged every scrape behind the 2 s read timeout.
        // With pooled workers the concurrent scrape answers immediately.
        let server = MetricsServer::serve("127.0.0.1:0", &TEST_REGISTRY).expect("bind");
        let addr = server.local_addr();
        let _stalled = TcpStream::connect(addr).expect("stalled connect");
        let start = std::time::Instant::now();
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "scrape waited {:?} behind a stalled connection",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn telemetry_response_composes_for_foreign_paths() {
        let request = Request {
            method: "GET".to_string(),
            path: "/sessions".to_string(),
            query: None,
            headers: vec![],
            body: vec![],
            http1_0: false,
            request_id: "test".to_string(),
        };
        assert!(telemetry_response(&request, &TEST_REGISTRY, None).is_none());
        let request = Request {
            path: "/healthz".to_string(),
            ..request
        };
        let response = telemetry_response(&request, &TEST_REGISTRY, None).expect("owned path");
        assert_eq!(response.status, 200);
    }

    #[test]
    fn profile_endpoint_samples_and_renders_each_format() {
        let request = |query: Option<&str>| Request {
            method: "GET".to_string(),
            path: "/profile".to_string(),
            query: query.map(|q| q.to_string()),
            headers: vec![],
            body: vec![],
            http1_0: false,
            request_id: "test".to_string(),
        };
        // Keep a span alive on a worker so the sample window sees a stack.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let worker_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            while !worker_stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _g = crate::profile_span("hdoutlier.httptest", "busy");
                std::thread::sleep(Duration::from_millis(1));
            }
        });

        let folded =
            telemetry_response(&request(Some("seconds=0.15&hz=500")), &TEST_REGISTRY, None)
                .unwrap();
        assert_eq!(folded.status, 200);
        let folded_body = String::from_utf8(folded.body).unwrap();
        assert!(
            folded_body.contains("hdoutlier.httptest.busy"),
            "{folded_body}"
        );

        let svg = telemetry_response(
            &request(Some("seconds=0.15&hz=500&format=svg")),
            &TEST_REGISTRY,
            None,
        )
        .unwrap();
        assert_eq!(svg.content_type, "image/svg+xml");
        let svg_body = String::from_utf8(svg.body).unwrap();
        assert!(svg_body.starts_with("<?xml"), "{svg_body}");
        assert!(svg_body.trim_end().ends_with("</svg>"), "{svg_body}");

        let json = telemetry_response(
            &request(Some("format=json&seconds=0.1&hz=500")),
            &TEST_REGISTRY,
            None,
        )
        .unwrap();
        assert_eq!(json.content_type, "application/json");
        assert!(String::from_utf8(json.body).unwrap().contains("\"hz\":500"));

        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        worker.join().unwrap();

        for bad in ["format=gif", "seconds=-1", "seconds=forever", "hz=0"] {
            let response = telemetry_response(&request(Some(bad)), &TEST_REGISTRY, None).unwrap();
            assert_eq!(response.status, 400, "query {bad:?}");
        }
    }

    #[test]
    fn status_and_healthz_follow_the_slo_engine() {
        use crate::slo::{SloSample, SloThresholds};
        let request = |path: &str, query: Option<&str>| Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query.map(|q| q.to_string()),
            headers: vec![],
            body: vec![],
            http1_0: false,
            request_id: "test".to_string(),
        };
        // Engine-less servers stay healthy with a fixed document.
        let none = telemetry_response(&request("/status", None), &TEST_REGISTRY, None).unwrap();
        assert_eq!(none.status, 200);
        assert_eq!(
            String::from_utf8(none.body).unwrap(),
            "{\"status\":\"healthy\",\"keys\":[]}\n"
        );

        let engine = SloEngine::new(
            SloThresholds {
                max_error_rate: 0.05,
                max_p99_us: 1e12,
            },
            Duration::from_secs(60),
        );
        engine.observe_at(
            "route:/score",
            SloSample {
                total: 100,
                errors: 50,
                buckets: vec![],
            },
            1_000_000,
        );
        let status =
            telemetry_response(&request("/status", None), &TEST_REGISTRY, Some(&engine)).unwrap();
        assert_eq!(status.status, 200);
        let body = String::from_utf8(status.body).unwrap();
        assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
        assert!(body.contains("\"key\":\"route:/score\""), "{body}");

        let health =
            telemetry_response(&request("/healthz", None), &TEST_REGISTRY, Some(&engine)).unwrap();
        assert_eq!(health.status, 503);

        let text = telemetry_response(
            &request("/status", Some("format=text")),
            &TEST_REGISTRY,
            Some(&engine),
        )
        .unwrap();
        assert!(String::from_utf8(text.body)
            .unwrap()
            .starts_with("status: unhealthy\n"));
    }
}
