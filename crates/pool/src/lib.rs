//! A scoped worker pool for deterministic data parallelism.
//!
//! The workspace is hermetic (`--offline`, every dependency an in-tree path
//! crate), so rayon is off the table; this crate is the std-only substitute
//! the search and scoring paths fan out on. The design is deliberately
//! narrow — one primitive, [`map`], with three properties the callers lean
//! on:
//!
//! 1. **Ordered reduction.** `map(threads, items, f)` returns
//!    `f(i, &items[i])` for every `i`, *in input order*, no matter which
//!    worker computed which item. Callers that need byte-identical output at
//!    any thread count only have to make `f` a pure function of `(i, item)`.
//! 2. **Chunked work queue.** Workers pull fixed-size chunks off a shared
//!    atomic cursor, so an uneven workload rebalances dynamically instead of
//!    idling behind a static partition. Chunks a worker takes beyond its
//!    first count as "steals" in the `hdoutlier.pool.steals` metric.
//! 3. **Panic propagation.** A panic inside `f` aborts the pool and is
//!    re-raised on the caller thread by [`map`], or surfaced as
//!    `Err(`[`WorkerPanic`]`)` by [`try_map`] — never a deadlock, never a
//!    silently missing result.
//!
//! Worker threads are named `pool-worker-<n>` and run under a
//! `hdoutlier.pool / worker` span, so Chrome-trace captures (`--trace-out`)
//! show one lane per worker for free.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use hdoutlier_obs as obs;

/// Event/metric target for the pool.
const TARGET: &str = "hdoutlier.pool";

/// A worker panicked while running the mapped closure.
///
/// Carries the original panic payload so [`map`] can re-raise it intact;
/// [`message`](WorkerPanic::message) extracts the human-readable text when
/// the payload is a string (the overwhelmingly common case).
pub struct WorkerPanic {
    payload: Box<dyn std::any::Any + Send + 'static>,
}

impl WorkerPanic {
    /// The panic message, when the payload is a `&str` or `String`.
    pub fn message(&self) -> Option<&str> {
        if let Some(s) = self.payload.downcast_ref::<&'static str>() {
            Some(s)
        } else {
            self.payload.downcast_ref::<String>().map(|s| s.as_str())
        }
    }

    /// Consumes the error, returning the raw panic payload.
    pub fn into_payload(self) -> Box<dyn std::any::Any + Send + 'static> {
        self.payload
    }
}

impl std::fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPanic")
            .field("message", &self.message().unwrap_or("<non-string payload>"))
            .finish()
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked: {}",
            self.message().unwrap_or("<non-string payload>")
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// The number of threads worth spawning on this machine: available
/// parallelism, or 1 when the OS will not say.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` workers and returns the
/// results in input order. Panics in `f` are re-raised on the caller.
///
/// `threads` is an upper bound: no more workers than items are spawned, and
/// with one worker (or one item) the closure runs inline on the caller
/// thread. Must be >= 1.
///
/// ```
/// let squares = hdoutlier_pool::map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_map(threads, items, f) {
        Ok(results) => results,
        Err(panic) => resume_unwind(panic.into_payload()),
    }
}

/// Like [`map`], but a panic in `f` is returned as `Err(WorkerPanic)`
/// instead of unwinding the caller. Remaining workers stop at their next
/// chunk boundary; partial results are discarded.
pub fn try_map<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(threads >= 1, "thread count must be >= 1");
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let workers = threads.min(items.len());
    let metrics = PoolMetrics::resolve();
    metrics.workers.set(workers as i64);

    if workers == 1 {
        // Inline fast path: no spawn, no queue — but the same contract.
        let result = catch_unwind(AssertUnwindSafe(|| {
            items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect()
        }));
        metrics.tasks.add(items.len() as u64);
        return result.map_err(|payload| WorkerPanic { payload });
    }

    // Aim for several chunks per worker so a slow chunk rebalances, without
    // hammering the shared cursor on tiny items.
    let chunk = items.len().div_ceil(workers * 8).max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>> = Mutex::new(None);

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_mutex = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let cursor = &cursor;
            let abort = &abort;
            let panic_slot = &panic_slot;
            let slots_mutex = &slots_mutex;
            let metrics = &metrics;
            let f = &f;
            std::thread::Builder::new()
                .name(format!("pool-worker-{w}"))
                .spawn_scoped(scope, move || {
                    let _lane = obs::span(obs::Level::Debug, TARGET, "worker");
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut chunks_taken = 0usize;
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        chunks_taken += 1;
                        let start = c * chunk;
                        let end = (start + chunk).min(items.len());
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            for (i, item) in items[start..end].iter().enumerate() {
                                local.push((start + i, f(start + i, item)));
                            }
                        }));
                        match run {
                            Ok(()) => metrics.tasks.add((end - start) as u64),
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                let mut slot = panic_slot.lock().expect("panic slot poisoned");
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                break;
                            }
                        }
                    }
                    if chunks_taken > 1 {
                        metrics.steals.add((chunks_taken - 1) as u64);
                    }
                    // Ordered reduction: place results by input index.
                    let mut slots = slots_mutex.lock().expect("result slots poisoned");
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                })
                .expect("spawning a scoped worker thread cannot fail");
        }
    });

    if let Some(payload) = panic_slot.into_inner().expect("panic slot poisoned") {
        return Err(WorkerPanic { payload });
    }
    Ok(slots
        .into_iter()
        .map(|r| r.expect("every index was assigned to exactly one chunk"))
        .collect())
}

/// Metric handles resolved once per `map` call (three registry lookups,
/// lock-free thereafter).
struct PoolMetrics {
    tasks: obs::Counter,
    steals: obs::Counter,
    workers: obs::Gauge,
}

impl PoolMetrics {
    fn resolve() -> Self {
        let r = obs::registry();
        PoolMetrics {
            tasks: r.counter("hdoutlier.pool.tasks"),
            steals: r.counter("hdoutlier.pool.steals"),
            workers: r.gauge("hdoutlier.pool.workers"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = map(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out.len(), items.len());
            for (i, &r) in out.iter().enumerate() {
                assert_eq!(r, i as u64 * 3 + 1, "threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u64> = map(8, &[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = map(64, &[10u64, 20, 30], |_, &x| x + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = std::thread::current().id();
        let out = map(8, &[7u64], |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x
        });
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn panic_in_worker_propagates_as_err_not_a_hang() {
        let items: Vec<u64> = (0..100).collect();
        let err = try_map(4, &items, |_, &x| {
            if x == 37 {
                panic!("boom at {x}");
            }
            x
        })
        .expect_err("a worker panicked");
        assert_eq!(err.message(), Some("boom at 37"));
        assert!(err.to_string().contains("boom at 37"));
    }

    #[test]
    fn panic_with_one_worker_is_also_an_err() {
        let err = try_map(1, &[1u64], |_, _| -> u64 { panic!("inline boom") })
            .expect_err("inline path panicked");
        assert_eq!(err.message(), Some("inline boom"));
    }

    #[test]
    fn map_reraises_the_panic() {
        let caught = std::panic::catch_unwind(|| {
            map(4, &(0..50).collect::<Vec<u64>>(), |_, &x| {
                if x == 13 {
                    panic!("reraise me");
                }
                x
            })
        });
        let payload = caught.expect_err("map should re-raise");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("reraise me"));
    }

    #[test]
    fn zero_threads_panics() {
        let caught = std::panic::catch_unwind(|| map(0, &[1u64], |_, &x| x));
        assert!(caught.is_err());
    }

    #[test]
    fn stress_interleaved_submits() {
        // Loom-free stress: several OS threads hammer the pool concurrently
        // with differently-sized submissions while the pool itself fans out.
        // Exercises the shared metrics handles and scope teardown under
        // interleaving; every submission must still reduce in order.
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for round in 0..50usize {
                        let n = (t * 53 + round * 17) % 97;
                        let items: Vec<usize> = (0..n).collect();
                        let out = map(1 + (round % 5), &items, |i, &x| {
                            assert_eq!(i, x);
                            x.wrapping_mul(2654435761)
                        });
                        assert_eq!(out.len(), n);
                        for (i, &r) in out.iter().enumerate() {
                            assert_eq!(r, i.wrapping_mul(2654435761));
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn pool_metrics_accumulate() {
        let tasks_before = obs::registry().counter("hdoutlier.pool.tasks").get();
        let items: Vec<u64> = (0..256).collect();
        let _ = map(4, &items, |_, &x| x);
        let tasks_after = obs::registry().counter("hdoutlier.pool.tasks").get();
        assert!(
            tasks_after >= tasks_before + 256,
            "tasks counter should grow by at least the submission size"
        );
        assert!(obs::registry().gauge("hdoutlier.pool.workers").get() >= 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
