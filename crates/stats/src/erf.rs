//! Error function and its relatives.
//!
//! Built on the regularized incomplete gamma functions in [`crate::gamma`]
//! via `erf(x) = P(1/2, x^2)` and `erfc(x) = Q(1/2, x^2)` for `x >= 0`.
//! That route gives ~1e-13 relative accuracy everywhere, including the deep
//! right tail where the detector converts very negative sparsity coefficients
//! into significance levels.

use crate::gamma::{gamma_p, gamma_q};
use crate::normal::standard_quantile;

/// The error function `erf(x) = 2/sqrt(pi) * ∫_0^x exp(-t^2) dt`.
///
/// Odd, increasing, with `erf(0) = 0`, `erf(+inf) = 1`.
///
/// ```
/// use hdoutlier_stats::erf::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    // erf saturates to ±1 well before x² can overflow.
    if x.abs() > 40.0 {
        return x.signum();
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed directly (not as `1 - erf`) so the right tail keeps full relative
/// precision: `erfc(10)` is about `2.1e-45` and would round to zero through
/// the naive subtraction.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    // erfc(40) < 1e-695 underflows f64; saturate before x² can overflow.
    if x.abs() > 40.0 {
        return if x > 0.0 { 0.0 } else { 2.0 };
    }
    if x > 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Inverse error function: `erf(erf_inv(p)) == p` for `p` in `(-1, 1)`.
///
/// Derived from the standard normal quantile via
/// `erf_inv(p) = Φ⁻¹((p + 1) / 2) / sqrt(2)`, which is refined to full
/// precision in [`crate::normal`].
pub fn erf_inv(p: f64) -> f64 {
    if p.is_nan() || !(-1.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if p == -1.0 {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return 0.0;
    }
    standard_quantile((p + 1.0) / 2.0) / std::f64::consts::SQRT_2
}

/// Inverse complementary error function: `erfc(erfc_inv(q)) == q` for `q` in `(0, 2)`.
pub fn erfc_inv(q: f64) -> f64 {
    if q.is_nan() || !(0.0..=2.0).contains(&q) {
        return f64::NAN;
    }
    if q == 0.0 {
        return f64::INFINITY;
    }
    if q == 2.0 {
        return f64::NEG_INFINITY;
    }
    // erfc_inv(q) = -Φ⁻¹(q/2) / sqrt(2).
    -standard_quantile(q / 2.0) / std::f64::consts::SQRT_2
}

#[cfg(test)]
#[allow(clippy::excessive_precision)] // reference values quoted at full published precision
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.1, 0.1124629160182848922033),
        (0.25, 0.2763263901682369017206),
        (0.5, 0.5204998778130465376827),
        (1.0, 0.8427007929497148693412),
        (1.5, 0.9661051464753107270669),
        (2.0, 0.9953222650189527341621),
        (3.0, 0.9999779095030014145586),
        (4.0, 0.9999999845827420997200),
        (5.0, 0.9999999999984625402056),
    ];

    const ERFC_TABLE: &[(f64, f64)] = &[
        (0.5, 0.4795001221869534623173),
        (1.0, 0.1572992070502851306588),
        (2.0, 0.004677734981063094173),
        (3.0, 2.209049699858544137280e-5),
        (4.0, 1.541725790028001885216e-8),
        (5.0, 1.537459794428034850188e-12),
        (6.0, 2.151973671249891311659e-17),
        (8.0, 1.122429717298292707997e-29),
        (10.0, 2.088487583762544757001e-45),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() <= 1e-13, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() <= 1e-13, "oddness at {x}");
        }
    }

    #[test]
    fn erfc_matches_reference_with_relative_precision() {
        for &(x, want) in ERFC_TABLE {
            let got = erfc(x);
            let rel = ((got - want) / want).abs();
            assert!(rel <= 1e-11, "erfc({x}) = {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn erfc_negative_arguments() {
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-13);
        assert!((erfc(-5.0) - 2.0).abs() < 1e-11);
    }

    #[test]
    fn erf_extremes() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert!(erf(f64::NAN).is_nan());
        assert_eq!(erfc(f64::INFINITY), 0.0);
        assert!((erfc(f64::NEG_INFINITY) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn erf_inv_round_trips() {
        for &p in &[
            -0.999_999, -0.9, -0.5, -0.1, -1e-10, 1e-10, 0.1, 0.5, 0.9, 0.999_999,
        ] {
            let x = erf_inv(p);
            assert!(
                (erf(x) - p).abs() <= 1e-12,
                "erf(erf_inv({p})) = {} != {p}",
                erf(x)
            );
        }
    }

    #[test]
    fn erf_inv_edges() {
        assert_eq!(erf_inv(0.0), 0.0);
        assert_eq!(erf_inv(1.0), f64::INFINITY);
        assert_eq!(erf_inv(-1.0), f64::NEG_INFINITY);
        assert!(erf_inv(1.5).is_nan());
        assert!(erf_inv(f64::NAN).is_nan());
    }

    #[test]
    fn erfc_inv_round_trips() {
        for &q in &[1e-12, 1e-6, 0.01, 0.5, 1.0, 1.5, 1.999] {
            let x = erfc_inv(q);
            let back = erfc(x);
            assert!(
                ((back - q) / q).abs() <= 1e-9,
                "erfc(erfc_inv({q})) = {back}"
            );
        }
    }

    #[test]
    fn erf_is_monotone_on_grid() {
        let mut prev = erf(-6.0);
        let mut x = -6.0;
        while x <= 6.0 {
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        let mut x = -5.0;
        while x <= 5.0 {
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-12, "erf+erfc at {x} = {s}");
            x += 0.037;
        }
    }
}
