//! Log-gamma and regularized incomplete gamma functions.
//!
//! These are the numeric workhorses of the crate: `erf`/`erfc` are thin
//! wrappers over `P(1/2, x^2)` / `Q(1/2, x^2)`, and the exact binomial
//! occupancy tails use `ln_gamma` through `ln_choose`.

/// Natural log of the absolute value of the gamma function, `ln|Γ(x)|`.
///
/// Lanczos approximation (g = 7, 9 terms), with the reflection formula for
/// `x < 0.5`. Accurate to about 1e-13 relative over the positive axis.
///
/// ```
/// use hdoutlier_stats::gamma::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients are quoted at full published precision.
    #[allow(clippy::excessive_precision)]
    const G: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.5 {
        if x <= 0.0 && x == x.floor() {
            return f64::INFINITY; // poles at non-positive integers
        }
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n choose k)` computed through log-gamma, stable for large arguments.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-16;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`, monotone increasing in `x`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// Computed directly in the right tail so tiny values keep relative precision.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, efficient for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut term = 1.0 / a;
    let mut sum = term;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction (modified Lentz) representation of `Q(a, x)`,
/// efficient for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    let log_prefactor = -x + a * x.ln() - ln_gamma(a);
    if log_prefactor < -745.0 {
        return 0.0; // underflow: the tail really is below f64::MIN_POSITIVE
    }
    log_prefactor.exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            let got = ln_gamma(n as f64);
            let want = fact.ln();
            assert!(
                (got - want).abs() <= 1e-10 * want.abs().max(1.0),
                "ln_gamma({n}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        // Γ(1/2) = sqrt(π), Γ(3/2) = sqrt(π)/2, Γ(5/2) = 3 sqrt(π)/4.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-12);
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < 1e-12);
        assert!((ln_gamma(2.5) - (3.0 * sqrt_pi / 4.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(-0.5) = -2 sqrt(π); ln|Γ| = ln(2 sqrt(π)).
        let want = (2.0 * std::f64::consts::PI.sqrt()).ln();
        assert!((ln_gamma(-0.5) - want).abs() < 1e-11);
    }

    #[test]
    fn ln_gamma_poles() {
        assert_eq!(ln_gamma(0.0), f64::INFINITY);
        assert_eq!(ln_gamma(-1.0), f64::INFINITY);
        assert_eq!(ln_gamma(-2.0), f64::INFINITY);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-12);
        assert!((ln_choose(4, 0)).abs() < 1e-12);
        assert!((ln_choose(4, 4)).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_choose_large_is_finite_and_symmetric() {
        let a = ln_choose(1_000_000, 1234);
        let b = ln_choose(1_000_000, 1_000_000 - 1234);
        assert!(a.is_finite());
        assert!((a - b).abs() < 1e-6 * a.abs());
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 100.0] {
            for &x in &[0.01, 0.5, 1.0, 5.0, 50.0, 200.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "P+Q at a={a}, x={x} = {s}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x).
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0] {
            let want = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - want).abs() < 1e-13);
        }
    }

    #[test]
    fn gamma_q_chi_square_tail() {
        // Q(1/2, x) = erfc(sqrt(x)); check against a reference value:
        // erfc(2) = 0.004677734981063094173...
        let got = gamma_q(0.5, 4.0);
        let want = 0.004_677_734_981_063_094;
        assert!(((got - want) / want).abs() < 1e-11, "got {got}");
    }

    #[test]
    fn gamma_edge_cases() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert!(gamma_p(-1.0, 1.0).is_nan());
        assert!(gamma_p(1.0, -1.0).is_nan());
        assert!(gamma_p(1.0, f64::NAN).is_nan());
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        for &a in &[0.5, 3.0, 20.0] {
            let mut prev = 0.0;
            let mut x = 0.0;
            while x < 60.0 {
                let v = gamma_p(a, x);
                assert!(v + 1e-15 >= prev, "P({a}, {x}) decreased");
                prev = v;
                x += 0.25;
            }
        }
    }

    #[test]
    fn gamma_q_deep_tail_underflows_to_zero_gracefully() {
        let v = gamma_q(0.5, 800.0);
        assert!((0.0..1e-300).contains(&v));
    }
}
