//! Streaming descriptive statistics and quantiles.
//!
//! The equi-depth discretizer needs sample quantiles; the benchmark harness
//! needs means/standard deviations of timings and sparsity qualities; both
//! live here. The running accumulator uses Welford's algorithm so a single
//! pass is numerically stable regardless of the magnitude of the data.

/// Single-pass accumulator for count / mean / variance / min / max.
///
/// NaN observations are counted separately and excluded from the moments, so
/// datasets with missing values (encoded as NaN) can be summarized directly.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    count: u64,
    nan_count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            nan_count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. NaN is tallied but excluded from the moments.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_count += 1;
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of non-NaN observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of NaN observations pushed.
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// Sample mean, or `None` if no finite observation was pushed.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (n − 1 denominator); `None` for fewer than
    /// two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population variance (n denominator); `None` if empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford, Chan et al.).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            self.nan_count += other.nan_count;
            return;
        }
        if self.count == 0 {
            let nan = self.nan_count;
            *self = other.clone();
            self.nan_count += nan;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.nan_count += other.nan_count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Accumulator {
    /// Builds an accumulator from an iterator of observations.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

/// Sample quantile with linear interpolation (R type-7, the default of R,
/// NumPy and Julia): for sorted data `x[0..n]` and probability `p`,
/// `h = (n − 1)·p`, result `x[⌊h⌋] + (h − ⌊h⌋)·(x[⌊h⌋+1] − x[⌊h⌋])`.
///
/// `values` need not be sorted; NaNs are filtered out. Returns `None` when no
/// finite value remains or `p` is outside `[0, 1]`.
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&p) {
        return None;
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    Some(quantile_sorted(&v, p))
}

/// [`quantile`] on data that is already sorted and NaN-free.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Equi-depth cut points dividing sorted data into `phi` ranges of (as near
/// as possible) equal record count: returns the `phi − 1` interior
/// boundaries `q(1/φ), q(2/φ), …, q((φ−1)/φ)`.
///
/// Repeated values can make boundaries coincide; callers that need strictly
/// increasing boundaries must handle ties (the discretizer in
/// `hdoutlier-data` does, by rank-splitting).
pub fn equi_depth_cuts(values: &[f64], phi: u32) -> Option<Vec<f64>> {
    if phi < 1 {
        return None;
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    Some(
        (1..phi)
            .map(|i| quantile_sorted(&v, i as f64 / phi as f64))
            .collect(),
    )
}

/// A simple equal-width histogram over `[lo, hi]` used by generators'
/// self-checks and the benchmark harness's reporting.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    outside: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// Returns `None` for a degenerate range or zero bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if lo.is_nan() || hi.is_nan() || lo >= hi || bins == 0 {
            return None;
        }
        Some(Self {
            lo,
            hi,
            counts: vec![0; bins],
            outside: 0,
        })
    }

    /// Adds an observation; values outside `[lo, hi]` (or NaN) are tallied in
    /// `outside`.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() || x < self.lo || x > self.hi {
            self.outside += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((x - self.lo) / w) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // x == hi lands in the last bin
        }
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside the range (or were NaN).
    pub fn outside(&self) -> u64 {
        self.outside
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic_moments() {
        let acc = Accumulator::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(acc.count(), 8);
        assert!((acc.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((acc.population_variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((acc.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
    }

    #[test]
    fn accumulator_empty_and_single() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.variance(), None);
        assert_eq!(acc.min(), None);
        let acc = Accumulator::from_iter([3.5]);
        assert_eq!(acc.mean(), Some(3.5));
        assert_eq!(acc.variance(), None);
        assert_eq!(acc.population_variance(), Some(0.0));
    }

    #[test]
    fn accumulator_skips_nan() {
        let acc = Accumulator::from_iter([1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.nan_count(), 2);
        assert_eq!(acc.mean(), Some(2.0));
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut a = Accumulator::from_iter(data[..40].iter().copied());
        let b = Accumulator::from_iter(data[40..].iter().copied());
        a.merge(&b);
        let whole = Accumulator::from_iter(data.iter().copied());
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        let b = Accumulator::from_iter([1.0, 2.0]);
        a.merge(&b);
        assert_eq!(a.mean(), Some(1.5));
        let mut c = Accumulator::from_iter([5.0]);
        c.merge(&Accumulator::new());
        assert_eq!(c.mean(), Some(5.0));
    }

    #[test]
    fn quantile_type7_reference() {
        // R: quantile(c(1,2,3,4), c(0, .25, .5, .75, 1)) = 1, 1.75, 2.5, 3.25, 4.
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.25), Some(1.75));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&v, 0.75), Some(3.25));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_unsorted_and_nan() {
        let v = [9.0, f64::NAN, 1.0, 5.0];
        assert_eq!(quantile(&v, 0.5), Some(5.0));
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 2.0), None);
        assert_eq!(quantile(&[1.0], -0.5), None);
    }

    #[test]
    fn equi_depth_cuts_uniform_grid() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let cuts = equi_depth_cuts(&v, 4).unwrap();
        assert_eq!(cuts, vec![25.0, 50.0, 75.0]);
        // phi = 1 gives no interior cuts.
        assert_eq!(equi_depth_cuts(&v, 1).unwrap(), Vec::<f64>::new());
        assert_eq!(equi_depth_cuts(&[], 4), None);
        assert_eq!(equi_depth_cuts(&v, 0), None);
    }

    #[test]
    fn equi_depth_cuts_are_nondecreasing() {
        let v = [3.0, 3.0, 3.0, 1.0, 9.0, 9.0, 2.0, 2.0];
        let cuts = equi_depth_cuts(&v, 5).unwrap();
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, 10.1, f64::NAN] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]); // 10.0 lands in last bin
        assert_eq!(h.outside(), 3);
        assert_eq!(h.total(), 5);
        assert!(Histogram::new(1.0, 1.0, 5).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
    }
}
