//! The normal (Gaussian) distribution.
//!
//! The paper's Eq. 1 approximates cube occupancy — a Binomial(N, f^k)
//! variable — by a normal, and §1.3 notes that "normal distribution tables
//! can be used to quantify the probabilistic level of significance" of a
//! sparsity coefficient. This module is that table.

use crate::erf::erfc;

const SQRT_2: f64 = std::f64::consts::SQRT_2;
#[allow(clippy::excessive_precision)]
const SQRT_2PI: f64 = 2.506_628_274_631_000_5;

/// Standard normal cumulative distribution function `Φ(z)`.
///
/// ```
/// use hdoutlier_stats::normal::standard_cdf;
/// assert!((standard_cdf(0.0) - 0.5).abs() < 1e-15);
/// // The "-3 sigma is 99.9 % significant" rule of thumb from paper §2.4:
/// assert!((standard_cdf(-3.0) - 0.001349898031630095).abs() < 1e-12);
/// ```
pub fn standard_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / SQRT_2)
}

/// Standard normal survival function `1 - Φ(z)`, precise in the right tail.
pub fn standard_sf(z: f64) -> f64 {
    0.5 * erfc(z / SQRT_2)
}

/// Standard normal probability density `φ(z)`.
pub fn standard_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / SQRT_2PI
}

/// Standard normal quantile `Φ⁻¹(p)` for `p` in `(0, 1)`.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9) refined
/// with one Halley step against the exact [`standard_cdf`], which brings the
/// result to full double precision.
pub fn standard_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let mut x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail, by symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: u = (Φ(x) - p) / φ(x); x ← x - u / (1 + x·u/2).
    let e = standard_cdf(x) - p;
    let u = e / standard_pdf(x);
    x -= u / (1.0 + x * u / 2.0);
    x
}

/// A normal distribution with arbitrary mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// Returns `None` unless `sd` is finite and strictly positive and `mean`
    /// is finite.
    pub fn new(mean: f64, sd: f64) -> Option<Self> {
        if mean.is_finite() && sd.is_finite() && sd > 0.0 {
            Some(Self { mean, sd })
        } else {
            None
        }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Z-score of `x` under this distribution.
    pub fn z_score(&self, x: f64) -> f64 {
        (x - self.mean) / self.sd
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        standard_pdf(self.z_score(x)) / self.sd
    }

    /// Cumulative probability `P[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        standard_cdf(self.z_score(x))
    }

    /// Survival probability `P[X > x]`, precise in the right tail.
    pub fn sf(&self, x: f64) -> f64 {
        standard_sf(self.z_score(x))
    }

    /// Quantile (inverse CDF) at probability `p`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * standard_quantile(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        // Φ(1) and Φ(2) from standard tables (15 digits).
        assert!((standard_cdf(1.0) - 0.841344746068543).abs() < 1e-13);
        assert!((standard_cdf(2.0) - 0.977249868051821).abs() < 1e-13);
        assert!((standard_cdf(-1.96) - 0.024997895148220).abs() < 1e-12);
    }

    #[test]
    fn cdf_symmetry() {
        let mut z = 0.0;
        while z <= 6.0 {
            let s = standard_cdf(z) + standard_cdf(-z);
            assert!((s - 1.0).abs() < 1e-13, "symmetry broken at {z}");
            z += 0.1;
        }
    }

    #[test]
    fn sf_right_tail_precision() {
        // P[Z > 10] = 7.619853024160527e-24 (mpmath).
        let got = standard_sf(10.0);
        let want = 7.619_853_024_160_527e-24;
        assert!(((got - want) / want).abs() < 1e-10, "got {got}");
    }

    #[test]
    fn quantile_round_trips() {
        for &p in &[1e-15, 1e-9, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-9] {
            let z = standard_quantile(p);
            let back = standard_cdf(z);
            assert!(
                (back - p).abs() < 1e-12 * p.max(1e-3),
                "cdf(quantile({p})) = {back}"
            );
        }
    }

    #[test]
    fn quantile_known_points() {
        assert!((standard_quantile(0.5)).abs() < 1e-14);
        // Φ⁻¹(0.975) = 1.959963984540054.
        assert!((standard_quantile(0.975) - 1.959963984540054).abs() < 1e-11);
        // Φ⁻¹(0.001349898031630095) = -3 (the paper's s = -3 reference point).
        assert!((standard_quantile(0.001349898031630095) + 3.0).abs() < 1e-10);
    }

    #[test]
    fn quantile_edges() {
        assert_eq!(standard_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(standard_quantile(1.0), f64::INFINITY);
        assert!(standard_quantile(-0.1).is_nan());
        assert!(standard_quantile(1.1).is_nan());
        assert!(standard_quantile(f64::NAN).is_nan());
    }

    #[test]
    fn scaled_normal_behaves() {
        let n = Normal::new(10.0, 2.0).unwrap();
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-14);
        assert!((n.cdf(12.0) - standard_cdf(1.0)).abs() < 1e-14);
        assert!((n.quantile(0.5) - 10.0).abs() < 1e-12);
        assert!((n.sf(14.0) - standard_sf(2.0)).abs() < 1e-16);
        assert!((n.pdf(10.0) - standard_pdf(0.0) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn invalid_normals_rejected() {
        assert!(Normal::new(0.0, 0.0).is_none());
        assert!(Normal::new(0.0, -1.0).is_none());
        assert!(Normal::new(f64::NAN, 1.0).is_none());
        assert!(Normal::new(0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn pdf_integrates_to_one_by_trapezoid() {
        let n = Normal::standard();
        let mut sum = 0.0;
        let h = 0.001;
        let mut z = -8.0;
        while z < 8.0 {
            sum += h * (n.pdf(z) + n.pdf(z + h)) / 2.0;
            z += h;
        }
        assert!((sum - 1.0).abs() < 1e-6, "integral = {sum}");
    }
}
