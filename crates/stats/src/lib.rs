#![warn(missing_docs)]

//! Numeric substrate for the Aggarwal–Yu subspace outlier detector.
//!
//! This crate contains every piece of statistics the paper leans on, built
//! from scratch so the workspace has no numeric dependencies:
//!
//! - [`erf`]: error function / complementary error function and their
//!   inverses, the primitive underneath the normal distribution.
//! - [`normal`]: the normal distribution (pdf/cdf/quantile), used to convert
//!   sparsity coefficients into probabilistic levels of significance
//!   (paper §1.3).
//! - [`binomial`]: the exact Binomial(N, f^k) occupancy distribution that the
//!   normal approximation in Eq. 1 stands in for, plus log-gamma machinery.
//! - [`sparsity`]: the sparsity coefficient S(D) of Eq. 1, the empty-cube
//!   coefficient, and the k*/phi parameter-selection rule of Eq. 2 (§2.4).
//! - [`summary`]: streaming descriptive statistics (Welford) and quantiles,
//!   used by the equi-depth discretizer and by the benchmark harness.
//! - [`rank`]: ranking and top-k selection utilities used by rank-roulette
//!   selection and by result reporting.

pub mod binomial;
pub mod erf;
pub mod gamma;
pub mod normal;
pub mod rank;
pub mod sparsity;
pub mod summary;

pub use binomial::Binomial;
pub use normal::Normal;
pub use sparsity::{
    empty_cube_coefficient, expected_count, recommended_k, significance_of, sparsity_coefficient,
    SparsityParams,
};
