//! The binomial distribution.
//!
//! Under the paper's uniformity assumption (§1.3), the occupancy of a
//! k-dimensional cube is `Binomial(N, f^k)` with `f = 1/φ`. Eq. 1 replaces it
//! with a normal via the central limit theorem; this module provides the
//! *exact* distribution so the library can report honest tail probabilities
//! when `N·f^k` is small (exactly the regime §2.4 worries about), and so the
//! quality of the CLT approximation can be tested rather than assumed.

use crate::gamma::{gamma_p, gamma_q, ln_choose};
use crate::normal::Normal;

/// A binomial distribution `Binomial(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    ///
    /// Returns `None` unless `0 <= p <= 1`.
    pub fn new(n: u64, p: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&p) {
            Some(Self { n, p })
        } else {
            None
        }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Distribution mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Distribution variance `n·p·(1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Natural log of the probability mass `ln P[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln_1p_safe()
    }

    /// Probability mass `P[X = k]`.
    ///
    /// ```
    /// use hdoutlier_stats::Binomial;
    /// let b = Binomial::new(10, 0.5).unwrap();
    /// assert!((b.pmf(5) - 252.0 / 1024.0).abs() < 1e-12);
    /// ```
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Lower tail `P[X <= k]`, exact through the regularized incomplete beta
    /// function identity `P[X <= k] = I_{1-p}(n-k, k+1)`.
    ///
    /// The incomplete beta is evaluated by continued fraction through the
    /// incomplete gamma machinery when one shape parameter is an integer,
    /// which it always is here; for robustness the implementation simply sums
    /// the PMF when `n` is small and uses the identity via [`beta_cdf`]
    /// otherwise.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0;
        }
        // Sum from the smaller side for accuracy and speed.
        if k as f64 <= self.mean() {
            // Direct sum of at most k+1 terms.
            let mut acc = 0.0;
            for i in 0..=k {
                acc += self.pmf(i);
            }
            acc.min(1.0)
        } else {
            let mut acc = 0.0;
            for i in (k + 1)..=self.n {
                acc += self.pmf(i);
            }
            (1.0 - acc).clamp(0.0, 1.0)
        }
    }

    /// Upper tail `P[X > k]`.
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        if k as f64 >= self.mean() {
            let mut acc = 0.0;
            for i in (k + 1)..=self.n {
                acc += self.pmf(i);
            }
            acc.min(1.0)
        } else {
            (1.0 - self.cdf(k)).clamp(0.0, 1.0)
        }
    }

    /// The normal approximation `N(np, np(1-p))` the paper's Eq. 1 uses.
    ///
    /// Returns `None` when the variance is zero (`p` in `{0, 1}` or `n = 0`).
    pub fn normal_approximation(&self) -> Option<Normal> {
        Normal::new(self.mean(), self.sd())
    }

    /// Lower tail with continuity correction under the CLT approximation,
    /// `Φ((k + 1/2 - np) / sqrt(np(1-p)))`.
    pub fn cdf_normal_approx(&self, k: u64) -> Option<f64> {
        self.normal_approximation().map(|n| n.cdf(k as f64 + 0.5))
    }

    /// Worst absolute CDF error of the normal approximation over all `k`,
    /// i.e. the Kolmogorov distance between the exact and the CLT law.
    ///
    /// Used by the test-suite and by `repro params` to show where Eq. 1's
    /// approximation is trustworthy. Costs `O(n)`; intended for analysis, not
    /// hot paths.
    pub fn clt_kolmogorov_distance(&self) -> f64 {
        let mut worst = 0.0f64;
        match self.normal_approximation() {
            None => {
                // Degenerate: exact law is a point mass; CLT is undefined.
                f64::NAN
            }
            Some(approx) => {
                let mut exact = 0.0;
                for k in 0..=self.n {
                    exact += self.pmf(k);
                    let e = (exact.min(1.0) - approx.cdf(k as f64 + 0.5)).abs();
                    worst = worst.max(e);
                }
                worst
            }
        }
    }
}

/// Regularized incomplete beta `I_x(a, b)` for the record — exposed because
/// `Binomial::cdf` is its discrete twin (`P[X <= k] = I_{1-p}(n-k, k+1)`) and
/// downstream crates may want the continuous version.
///
/// Evaluated by the continued fraction of Numerical Recipes' `betai`.
pub fn beta_cdf(a: f64, b: f64, x: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || b.is_nan() || b <= 0.0 || x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front =
        crate::gamma::ln_gamma(a + b) - crate::gamma::ln_gamma(a) - crate::gamma::ln_gamma(b)
            + a * x.ln()
            + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Poisson lower/upper tails, the other classical approximation to sparse
/// cube occupancy (`Binomial(N, f^k) → Poisson(N·f^k)` as `f^k → 0`).
///
/// `P[X <= k] = Q(k+1, λ)` via the incomplete gamma.
pub fn poisson_cdf(lambda: f64, k: u64) -> f64 {
    if lambda.is_nan() || lambda < 0.0 {
        return f64::NAN;
    }
    if lambda == 0.0 {
        return 1.0;
    }
    gamma_q(k as f64 + 1.0, lambda)
}

/// Poisson upper tail `P[X > k] = P(k+1, λ)`.
pub fn poisson_sf(lambda: f64, k: u64) -> f64 {
    if lambda.is_nan() || lambda < 0.0 {
        return f64::NAN;
    }
    if lambda == 0.0 {
        return 0.0;
    }
    gamma_p(k as f64 + 1.0, lambda)
}

/// Small extension trait so `ln(1-p)` is written once, correctly, for `p`
/// close to zero.
trait Ln1pSafe {
    fn ln_1p_safe(self) -> f64;
}

impl Ln1pSafe for f64 {
    /// `self` is already `1 - p`; take its log but route tiny `p` through
    /// `ln_1p` for precision. `self = 1 - p  ⇒  ln(self) = ln_1p(-p)`.
    fn ln_1p_safe(self) -> f64 {
        let p = 1.0 - self;
        (-p).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.5), (100, 0.01), (7, 0.99)] {
            let b = Binomial::new(n, p).unwrap();
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "sum for ({n},{p}) = {total}");
        }
    }

    #[test]
    fn pmf_known_values() {
        // Binomial(10, 0.5): P[X=5] = 252/1024.
        let b = Binomial::new(10, 0.5).unwrap();
        assert!((b.pmf(5) - 252.0 / 1024.0).abs() < 1e-13);
        // Binomial(4, 0.25): P[X=0] = (3/4)^4.
        let b = Binomial::new(4, 0.25).unwrap();
        assert!((b.pmf(0) - 0.75f64.powi(4)).abs() < 1e-14);
    }

    #[test]
    fn cdf_and_sf_are_complementary() {
        let b = Binomial::new(50, 0.2).unwrap();
        for k in 0..50 {
            let s = b.cdf(k) + b.sf(k);
            assert!((s - 1.0).abs() < 1e-11, "cdf+sf at k={k} = {s}");
        }
        assert_eq!(b.cdf(50), 1.0);
        assert_eq!(b.sf(50), 0.0);
    }

    #[test]
    fn degenerate_p() {
        let b = Binomial::new(5, 0.0).unwrap();
        assert_eq!(b.pmf(0), 1.0);
        assert_eq!(b.pmf(1), 0.0);
        assert_eq!(b.cdf(0), 1.0);
        let b = Binomial::new(5, 1.0).unwrap();
        assert_eq!(b.pmf(5), 1.0);
        assert_eq!(b.cdf(4), 0.0);
        assert_eq!(b.sf(4), 1.0);
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(Binomial::new(5, -0.1).is_none());
        assert!(Binomial::new(5, 1.1).is_none());
        assert!(Binomial::new(5, f64::NAN).is_none());
    }

    #[test]
    fn moments() {
        let b = Binomial::new(40, 0.25).unwrap();
        assert_eq!(b.mean(), 10.0);
        assert_eq!(b.variance(), 7.5);
    }

    #[test]
    fn matches_incomplete_beta_identity() {
        // P[X <= k] = I_{1-p}(n-k, k+1).
        for &(n, p, k) in &[(20u64, 0.3, 4u64), (12, 0.5, 6), (100, 0.05, 2)] {
            let b = Binomial::new(n, p).unwrap();
            let via_beta = beta_cdf((n - k) as f64, k as f64 + 1.0, 1.0 - p);
            assert!(
                (b.cdf(k) - via_beta).abs() < 1e-10,
                "({n},{p},{k}): cdf {} vs beta {via_beta}",
                b.cdf(k)
            );
        }
    }

    #[test]
    fn clt_quality_improves_with_n() {
        // The CLT error should shrink roughly like 1/sqrt(n·p·(1-p)).
        let small = Binomial::new(10, 0.5).unwrap().clt_kolmogorov_distance();
        let large = Binomial::new(1000, 0.5).unwrap().clt_kolmogorov_distance();
        assert!(large < small / 5.0, "small {small}, large {large}");
    }

    #[test]
    fn clt_is_bad_in_the_sparse_regime() {
        // The very phenomenon paper §2.4 warns about: with N·f^k ≈ 0.1 the
        // CLT's *tail* probabilities are off by orders of magnitude even
        // though the continuity-corrected Kolmogorov distance looks small.
        // Exact P[X >= 3] ≈ 1.5e-4; the normal approximation says Φ̄(7.6) ≈ 1e-14.
        let b = Binomial::new(1000, 0.0001).unwrap();
        let exact_tail = b.sf(2);
        let approx_tail = b.normal_approximation().unwrap().sf(2.5);
        assert!(exact_tail > 1e-4);
        assert!(
            approx_tail < exact_tail / 1e6,
            "approx {approx_tail} vs exact {exact_tail}"
        );
    }

    #[test]
    fn poisson_limit_of_binomial() {
        // Binomial(n, λ/n) → Poisson(λ).
        let lambda = 2.5;
        let n = 100_000u64;
        let b = Binomial::new(n, lambda / n as f64).unwrap();
        for k in 0..10 {
            let exact = b.cdf(k);
            let pois = poisson_cdf(lambda, k);
            assert!(
                (exact - pois).abs() < 1e-4,
                "k={k}: binomial {exact}, poisson {pois}"
            );
        }
    }

    #[test]
    fn poisson_edge_cases() {
        assert_eq!(poisson_cdf(0.0, 3), 1.0);
        assert_eq!(poisson_sf(0.0, 3), 0.0);
        assert!(poisson_cdf(-1.0, 3).is_nan());
        for k in 0..20 {
            let s = poisson_cdf(3.7, k) + poisson_sf(3.7, k);
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_cdf_edges_and_symmetry() {
        assert_eq!(beta_cdf(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_cdf(2.0, 3.0, 1.0), 1.0);
        assert!(beta_cdf(-1.0, 3.0, 0.5).is_nan());
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = beta_cdf(a, b, x);
            let rhs = 1.0 - beta_cdf(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "({a},{b},{x})");
        }
        // I_x(1/2, 1/2) = 2/π·asin(sqrt(x)) (arcsine law).
        let x: f64 = 0.42;
        let want = 2.0 / std::f64::consts::PI * x.sqrt().asin();
        assert!((beta_cdf(0.5, 0.5, x) - want).abs() < 1e-12);
    }
}
