//! Ranking and selection utilities.
//!
//! Rank-roulette selection (paper Fig. 4) weights a solution by `p − r(i)`
//! where `r(i)` is its rank with the most negative sparsity coefficient
//! first; reporting needs "the m most negative" repeatedly. Both primitives
//! live here so the GA and the reporting layer agree on tie handling.

use std::cmp::Ordering;

/// Indices of `values` sorted ascending (NaNs last, in stable order).
pub fn argsort(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| cmp_nan_last(values[a], values[b]));
    idx
}

/// Ascending ranks (0 = smallest). Ties broken by original position, so the
/// result is a permutation — exactly what roulette-wheel weighting needs.
pub fn ranks(values: &[f64]) -> Vec<usize> {
    let order = argsort(values);
    let mut r = vec![0usize; values.len()];
    for (rank, &i) in order.iter().enumerate() {
        r[i] = rank;
    }
    r
}

/// Average ranks (1-based, ties share the mean of their positions), the
/// convention of statistical rank tests. Exposed for baseline evaluation.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let order = argsort(values);
    let mut r = vec![0.0f64; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len()
            && cmp_nan_last(values[order[j + 1]], values[order[i]]) == Ordering::Equal
        {
            j += 1;
        }
        // positions i..=j (0-based) share mean 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Indices of the `m` smallest values (ascending), i.e. "most negative
/// first" — the paper's ordering of sparsity coefficients.
///
/// `O(n log n)`; fine for reporting. For the streaming best-set kept during
/// search see [`BoundedBest`].
pub fn bottom_m(values: &[f64], m: usize) -> Vec<usize> {
    let mut idx = argsort(values);
    idx.truncate(m);
    idx
}

fn cmp_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("both non-NaN"),
    }
}

/// A bounded "best m" collection that keeps the items with the *smallest*
/// scores seen so far — the `BestSet` of paper Fig. 3.
///
/// Push is `O(log m)` via a max-heap of the current members; deduplication is
/// the caller's concern (the detector dedups by projection identity before
/// pushing).
#[derive(Debug, Clone)]
pub struct BoundedBest<T> {
    capacity: usize,
    // Max-heap on score: the root is the *worst* member, evicted first.
    heap: std::collections::BinaryHeap<Entry<T>>,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    score: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on (score, seq); older entries win ties (evict newer).
        cmp_nan_last(self.score, other.score).then(self.seq.cmp(&other.seq))
    }
}

impl<T> BoundedBest<T> {
    /// Creates a collection that retains at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            heap: std::collections::BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// Offers an item with the given score (smaller is better). Returns
    /// `true` if the item was retained.
    ///
    /// NaN scores are rejected outright.
    pub fn push(&mut self, score: f64, item: T) -> bool {
        if score.is_nan() || self.capacity == 0 {
            return false;
        }
        let seq = self.heap.len() as u64;
        if self.heap.len() < self.capacity {
            self.heap.push(Entry { score, seq, item });
            return true;
        }
        let worst = self.heap.peek().expect("non-empty at capacity");
        if score >= worst.score {
            return false;
        }
        self.heap.pop();
        self.heap.push(Entry { score, seq, item });
        true
    }

    /// Current number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The worst retained score, i.e. the threshold a new item must beat
    /// once the collection is full.
    pub fn worst_score(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.score)
    }

    /// Consumes the collection, returning `(score, item)` pairs sorted
    /// ascending by score (best first).
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut v: Vec<(f64, T)> = self.heap.into_iter().map(|e| (e.score, e.item)).collect();
        v.sort_by(|a, b| cmp_nan_last(a.0, b.0));
        v
    }

    /// Iterates over retained items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&f64, &T)> {
        self.heap.iter().map(|e| (&e.score, &e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_basic() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
        assert_eq!(argsort(&[]), Vec::<usize>::new());
    }

    #[test]
    fn argsort_nan_last_stable() {
        let v = [f64::NAN, 1.0, f64::NAN, 0.0];
        assert_eq!(argsort(&v), vec![3, 1, 0, 2]);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let v = [5.0, 5.0, 1.0, 9.0];
        let r = ranks(&v);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(r[2], 0); // smallest
        assert_eq!(r[3], 3); // largest
        assert!(r[0] < r[1]); // stable tie-break by position
    }

    #[test]
    fn average_ranks_share_ties() {
        let v = [10.0, 20.0, 20.0, 30.0];
        assert_eq!(average_ranks(&v), vec![1.0, 2.5, 2.5, 4.0]);
        let v = [7.0, 7.0, 7.0];
        assert_eq!(average_ranks(&v), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn bottom_m_takes_most_negative() {
        let v = [-1.0, -3.5, 0.0, -2.0];
        assert_eq!(bottom_m(&v, 2), vec![1, 3]);
        assert_eq!(bottom_m(&v, 10).len(), 4);
        assert_eq!(bottom_m(&v, 0), Vec::<usize>::new());
    }

    #[test]
    fn bounded_best_keeps_smallest() {
        let mut b = BoundedBest::new(3);
        for (i, s) in [5.0, 1.0, 4.0, 0.5, 3.0, 2.0].iter().enumerate() {
            b.push(*s, i);
        }
        let got = b.into_sorted();
        let scores: Vec<f64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(scores, vec![0.5, 1.0, 2.0]);
        let items: Vec<usize> = got.iter().map(|(_, i)| *i).collect();
        assert_eq!(items, vec![3, 1, 5]);
    }

    #[test]
    fn bounded_best_rejects_when_full_and_worse() {
        let mut b = BoundedBest::new(2);
        assert!(b.push(1.0, "a"));
        assert!(b.push(2.0, "b"));
        assert_eq!(b.worst_score(), Some(2.0));
        assert!(!b.push(2.5, "c"));
        assert!(!b.push(2.0, "d")); // ties with worst do not displace
        assert!(b.push(1.5, "e"));
        assert_eq!(b.worst_score(), Some(1.5));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn bounded_best_edge_cases() {
        let mut b: BoundedBest<&str> = BoundedBest::new(0);
        assert!(!b.push(1.0, "x"));
        assert!(b.is_empty());
        let mut b = BoundedBest::new(2);
        assert!(!b.push(f64::NAN, "nan"));
        assert!(b.is_empty());
        assert_eq!(b.worst_score(), None);
    }
}
