//! The sparsity coefficient (paper Eq. 1) and the projection-parameter
//! selection rule (paper Eq. 2, §2.4).
//!
//! For a k-dimensional cube `D` in a grid with `φ` equi-depth ranges per
//! dimension, each range holds a fraction `f = 1/φ` of the `N` records. Under
//! attribute independence the occupancy `n(D)` is `Binomial(N, f^k)`, and the
//! sparsity coefficient standardizes it:
//!
//! ```text
//! S(D) = (n(D) − N·f^k) / sqrt(N·f^k·(1 − f^k))          (Eq. 1)
//! ```
//!
//! Strongly negative `S(D)` identifies cubes whose emptiness randomness
//! cannot justify; points inside such cubes are the paper's outliers.

use crate::binomial::Binomial;
use crate::normal::standard_cdf;

/// The (N, φ, k) triple every sparsity computation needs, validated once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparsityParams {
    /// Total number of records in the database.
    pub n_records: u64,
    /// Number of equi-depth grid ranges per dimension (`φ`).
    pub phi: u32,
    /// Dimensionality of the projections being scored (`k`).
    pub k: u32,
}

impl SparsityParams {
    /// Creates validated parameters.
    ///
    /// Returns `None` when any of the three is zero, or when `φ^k` overflows
    /// the range where `f^k` is representable (`φ^k` cannot exceed ~1e300).
    pub fn new(n_records: u64, phi: u32, k: u32) -> Option<Self> {
        if n_records == 0 || phi == 0 || k == 0 {
            return None;
        }
        // f^k = φ^{-k}; guard against underflow to exactly 0.
        let ln_fk = -(k as f64) * (phi as f64).ln();
        if ln_fk < -700.0 {
            return None;
        }
        Some(Self { n_records, phi, k })
    }

    /// The per-cube inclusion probability `f^k = φ^{-k}`.
    pub fn cell_probability(&self) -> f64 {
        (phi_f(self.phi)).powi(self.k as i32)
    }

    /// Expected cube occupancy `N·f^k`.
    pub fn expected_count(&self) -> f64 {
        self.n_records as f64 * self.cell_probability()
    }

    /// Standard deviation of cube occupancy, `sqrt(N·f^k·(1 − f^k))`.
    pub fn count_sd(&self) -> f64 {
        let fk = self.cell_probability();
        (self.n_records as f64 * fk * (1.0 - fk)).sqrt()
    }

    /// The sparsity coefficient `S(D)` of a cube containing `count` points.
    pub fn sparsity(&self, count: u64) -> f64 {
        (count as f64 - self.expected_count()) / self.count_sd()
    }

    /// The sparsity coefficient of an empty cube,
    /// `−sqrt(N·f^k / (1 − f^k)) = −sqrt(N / (φ^k − 1))` (paper §2.4).
    pub fn empty_cube_sparsity(&self) -> f64 {
        let phik = (self.phi as f64).powi(self.k as i32);
        -((self.n_records as f64) / (phik - 1.0)).sqrt()
    }

    /// The exact occupancy law `Binomial(N, f^k)` that Eq. 1 approximates.
    pub fn occupancy_law(&self) -> Binomial {
        Binomial::new(self.n_records, self.cell_probability())
            .expect("cell probability is always in [0, 1]")
    }

    /// Exact level of significance of a cube occupancy under the
    /// independence null: `P[Binomial(N, f^k) <= count]`.
    ///
    /// The paper's §1.3 reads significance off normal tables via Eq. 1;
    /// that reading is unreliable in the deep tail and in the starved
    /// `N·f^k ≲ 1` regime (see `repro params`). This is the honest number.
    pub fn exact_significance(&self, count: u64) -> f64 {
        self.occupancy_law().cdf(count)
    }

    /// Number of distinct k-dimensional cubes, `C(d, k)·φ^k`, for a
    /// d-dimensional dataset — the size of the brute-force search space
    /// (paper §3: d=20, k=4, φ=10 gives ≈ 7·10⁷).
    ///
    /// Returns `f64::INFINITY` when the count exceeds `f64::MAX`.
    pub fn search_space_size(&self, d: u32) -> f64 {
        if self.k > d {
            return 0.0;
        }
        let ln = crate::gamma::ln_choose(d as u64, self.k as u64)
            + self.k as f64 * (self.phi as f64).ln();
        if ln > 709.0 {
            f64::INFINITY
        } else {
            ln.exp()
        }
    }
}

fn phi_f(phi: u32) -> f64 {
    1.0 / phi as f64
}

/// Free-function form of Eq. 1 for callers that do not want to build a
/// [`SparsityParams`]:
/// `S = (count − N·f^k) / sqrt(N·f^k·(1 − f^k))` with `f = 1/φ`.
///
/// ```
/// use hdoutlier_stats::sparsity_coefficient;
/// // 10,000 points, φ = 10, k = 2: expected 100 per cube, sd ≈ 9.9499.
/// let s = sparsity_coefficient(70, 10_000, 10, 2);
/// assert!((s - (70.0 - 100.0) / (100.0f64 * (1.0 - 0.01)).sqrt()).abs() < 1e-12);
/// assert!(s < -3.0);
/// ```
pub fn sparsity_coefficient(count: u64, n_records: u64, phi: u32, k: u32) -> f64 {
    match SparsityParams::new(n_records, phi, k) {
        Some(p) => p.sparsity(count),
        None => f64::NAN,
    }
}

/// Expected occupancy `N·f^k` of a k-dimensional cube.
pub fn expected_count(n_records: u64, phi: u32, k: u32) -> f64 {
    match SparsityParams::new(n_records, phi, k) {
        Some(p) => p.expected_count(),
        None => f64::NAN,
    }
}

/// The sparsity coefficient of an empty cube, `−sqrt(N / (φ^k − 1))`.
pub fn empty_cube_coefficient(n_records: u64, phi: u32, k: u32) -> f64 {
    match SparsityParams::new(n_records, phi, k) {
        Some(p) => p.empty_cube_sparsity(),
        None => f64::NAN,
    }
}

/// Probabilistic level of significance of a sparsity coefficient under the
/// paper's normal-approximation reading: the probability that a cube drawn
/// from uniform data would be at least this sparse, `Φ(s)`.
///
/// A sparsity coefficient of −3 maps to ≈ 0.00135, i.e. the "99.9 % level of
/// significance" quoted in §2.4.
pub fn significance_of(sparsity: f64) -> f64 {
    standard_cdf(sparsity)
}

/// Eq. 2 / §2.4: the recommended projection dimensionality
/// `k* = ⌊log_φ(N/s² + 1)⌋` for a target empty-cube sparsity `s` (e.g. −3).
///
/// This is the largest `k` at which even an *empty* cube is still `|s|`
/// standard deviations below expectation; beyond it, high dimensionality
/// makes every cube sparse by default and the coefficient loses its meaning.
///
/// Returns `None` if the inputs are degenerate (`φ < 2`, `s == 0`, `N == 0`)
/// or the formula yields `k* < 1` (the dataset is too small for any
/// significant projection at this `φ` — the situation §2.4 illustrates with
/// `N < 10,000`, `φ = 10`, `k = 4`).
pub fn recommended_k(n_records: u64, phi: u32, target_sparsity: f64) -> Option<u32> {
    if n_records == 0 || phi < 2 {
        return None;
    }
    let s2 = target_sparsity * target_sparsity;
    if s2.is_nan() || s2 <= 0.0 {
        return None;
    }
    let arg = n_records as f64 / s2 + 1.0;
    let k = arg.ln() / (phi as f64).ln();
    let k = k.floor();
    if k < 1.0 {
        None
    } else {
        Some(k as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_count_and_sd() {
        let p = SparsityParams::new(10_000, 10, 2).unwrap();
        assert!((p.expected_count() - 100.0).abs() < 1e-12);
        let want_sd = (10_000.0f64 * 0.01 * 0.99).sqrt();
        assert!((p.count_sd() - want_sd).abs() < 1e-12);
    }

    #[test]
    fn sparsity_sign_convention() {
        let p = SparsityParams::new(10_000, 10, 2).unwrap();
        assert!(p.sparsity(0) < 0.0);
        assert!(p.sparsity(100).abs() < 1e-9); // exactly expected
        assert!(p.sparsity(200) > 0.0);
        // More points ⇒ larger (less negative) coefficient.
        assert!(p.sparsity(10) > p.sparsity(5));
    }

    #[test]
    fn empty_cube_formula_matches_eq1_at_zero() {
        for &(n, phi, k) in &[(10_000u64, 10u32, 3u32), (452, 5, 2), (1_000_000, 8, 4)] {
            let p = SparsityParams::new(n, phi, k).unwrap();
            let direct = p.sparsity(0);
            let formula = p.empty_cube_sparsity();
            assert!(
                (direct - formula).abs() < 1e-9,
                "({n},{phi},{k}): {direct} vs {formula}"
            );
        }
    }

    #[test]
    fn significance_reference_point() {
        // §2.4: s = −3 ⇒ 99.9 % significance (i.e. lower-tail mass ≈ 0.00135).
        let sig = significance_of(-3.0);
        assert!((sig - 0.001349898031630095).abs() < 1e-12);
        assert!((significance_of(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn recommended_k_matches_closed_form() {
        // k* = floor(log_φ(N/s² + 1)).
        // N = 10^6, φ = 10, s = −3: log10(111112.1) ≈ 5.045 ⇒ k* = 5.
        assert_eq!(recommended_k(1_000_000, 10, -3.0), Some(5));
        // N = 10,000, φ = 10, s = −3: log10(1112.1) ≈ 3.046 ⇒ k* = 3.
        assert_eq!(recommended_k(10_000, 10, -3.0), Some(3));
        // N = 452 (arrhythmia), φ = 5, s = −3: log5(51.2) ≈ 2.446 ⇒ k* = 2.
        assert_eq!(recommended_k(452, 5, -3.0), Some(2));
    }

    #[test]
    fn recommended_k_degenerate_inputs() {
        assert_eq!(recommended_k(0, 10, -3.0), None);
        assert_eq!(recommended_k(100, 1, -3.0), None);
        assert_eq!(recommended_k(100, 10, 0.0), None);
        // Tiny N at large φ: no k ≥ 1 is significant.
        assert_eq!(recommended_k(5, 100, -3.0), None);
    }

    #[test]
    fn recommended_k_is_the_largest_significant_k() {
        // At k = k*, an empty cube is at least |s| sds below expectation;
        // at k* + 1 it is not.
        for &(n, phi) in &[(10_000u64, 10u32), (452, 5), (250_000, 7)] {
            let s = -3.0;
            let k = recommended_k(n, phi, s).unwrap();
            let at_k = empty_cube_coefficient(n, phi, k);
            let past_k = empty_cube_coefficient(n, phi, k + 1);
            assert!(at_k <= s, "({n},{phi}): empty at k*={k} gives {at_k}");
            assert!(past_k > s, "({n},{phi}): empty at k*+1 gives {past_k}");
        }
    }

    #[test]
    fn search_space_size_matches_paper_example() {
        // §3: d = 20, k = 4, φ = 10 ⇒ C(20,4)·10⁴ = 4845·10⁴ ≈ 4.8·10⁷
        // (the paper rounds to "7·10⁷" counting implementation constants; we
        // check the exact combinatorial count).
        let p = SparsityParams::new(10_000, 10, 4).unwrap();
        let size = p.search_space_size(20);
        assert!((size - 4845.0e4).abs() / 4845.0e4 < 1e-9, "size = {size}");
        // k > d ⇒ zero.
        assert_eq!(p.search_space_size(3), 0.0);
    }

    #[test]
    fn search_space_explodes_with_dimensionality() {
        let p = SparsityParams::new(10_000, 10, 4).unwrap();
        assert!(p.search_space_size(160) > 1e10); // the musk regime
                                                  // C(160,4)/C(20,4) ≈ 5.4e3: three extra orders of magnitude from d alone.
        assert!(p.search_space_size(160) > p.search_space_size(20) * 1e3);
    }

    #[test]
    fn params_validation() {
        assert!(SparsityParams::new(0, 10, 2).is_none());
        assert!(SparsityParams::new(10, 0, 2).is_none());
        assert!(SparsityParams::new(10, 10, 0).is_none());
        // φ^k overflow guard.
        assert!(SparsityParams::new(10, 10, 1000).is_none());
    }

    #[test]
    fn occupancy_law_agrees_with_eq1_moments() {
        let p = SparsityParams::new(5_000, 8, 3).unwrap();
        let law = p.occupancy_law();
        assert!((law.mean() - p.expected_count()).abs() < 1e-9);
        assert!((law.sd() - p.count_sd()).abs() < 1e-9);
    }

    #[test]
    fn free_functions_match_params() {
        let p = SparsityParams::new(2_000, 6, 2).unwrap();
        assert_eq!(sparsity_coefficient(7, 2_000, 6, 2), p.sparsity(7));
        assert_eq!(expected_count(2_000, 6, 2), p.expected_count());
        assert_eq!(empty_cube_coefficient(2_000, 6, 2), p.empty_cube_sparsity());
        assert!(sparsity_coefficient(7, 0, 6, 2).is_nan());
    }
}
