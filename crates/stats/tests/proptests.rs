//! Property-based tests for the numeric substrate.

use hdoutlier_stats::binomial::Binomial;
use hdoutlier_stats::erf::{erf, erfc};
use hdoutlier_stats::gamma::{gamma_p, gamma_q};
use hdoutlier_stats::normal::{standard_cdf, standard_quantile};
use hdoutlier_stats::rank::{argsort, average_ranks, bottom_m, ranks, BoundedBest};
use hdoutlier_stats::summary::{quantile, Accumulator};
use hdoutlier_stats::SparsityParams;
use proptest::prelude::*;

proptest! {
    #[test]
    fn erf_is_odd(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
    }

    #[test]
    fn erf_erfc_complement(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erf_bounded(x in proptest::num::f64::NORMAL) {
        let v = erf(x);
        prop_assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn gamma_p_q_partition_unity(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-11);
    }

    #[test]
    fn normal_quantile_round_trip(p in 1e-6f64..0.999_999) {
        let z = standard_quantile(p);
        prop_assert!((standard_cdf(z) - p).abs() < 1e-11);
    }

    #[test]
    fn normal_cdf_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(standard_cdf(lo) <= standard_cdf(hi) + 1e-15);
    }

    #[test]
    fn binomial_pmf_nonnegative_and_cdf_monotone(n in 1u64..200, p in 0.0f64..1.0) {
        let b = Binomial::new(n, p).unwrap();
        let mut prev = 0.0;
        for k in 0..=n {
            prop_assert!(b.pmf(k) >= 0.0);
            let c = b.cdf(k);
            prop_assert!(c + 1e-12 >= prev, "cdf decreased at k={k}");
            prev = c;
        }
        prop_assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparsity_monotone_in_count(
        n in 10u64..1_000_000,
        phi in 2u32..20,
        k in 1u32..5,
        c1 in 0u64..1000,
        c2 in 0u64..1000,
    ) {
        let p = SparsityParams::new(n, phi, k).unwrap();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(p.sparsity(lo) <= p.sparsity(hi));
    }

    #[test]
    fn sparsity_zero_at_expected_count(n in 100u64..1_000_000, phi in 2u32..12, k in 1u32..4) {
        let p = SparsityParams::new(n, phi, k).unwrap();
        // Coefficient straddles zero around the expected count.
        let e = p.expected_count();
        prop_assert!(p.sparsity(e.floor() as u64) <= 1e-9 + p.sparsity(e.ceil() as u64));
        prop_assert!(p.sparsity(e.floor() as u64) <= 0.0 + 1e-9);
        prop_assert!(p.sparsity(e.ceil() as u64) >= 0.0 - 1e-9);
    }

    #[test]
    fn empty_cube_matches_sparsity_at_zero(n in 10u64..100_000, phi in 2u32..12, k in 1u32..5) {
        let p = SparsityParams::new(n, phi, k).unwrap();
        prop_assert!((p.sparsity(0) - p.empty_cube_sparsity()).abs() < 1e-8);
    }

    #[test]
    fn argsort_sorts(values in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
        let order = argsort(&values);
        for w in order.windows(2) {
            prop_assert!(values[w[0]] <= values[w[1]]);
        }
        let mut seen = order.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..values.len()).collect::<Vec<_>>());
    }

    #[test]
    fn ranks_inverse_of_argsort(values in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let r = ranks(&values);
        let order = argsort(&values);
        for (rank, &i) in order.iter().enumerate() {
            prop_assert_eq!(r[i], rank);
        }
    }

    #[test]
    fn average_ranks_sum_invariant(values in proptest::collection::vec(-50f64..50.0, 1..60)) {
        let r = average_ranks(&values);
        let n = values.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_best_equals_naive_topm(
        scores in proptest::collection::vec(-1e3f64..1e3, 0..80),
        m in 0usize..20,
    ) {
        let mut best = BoundedBest::new(m);
        for (i, &s) in scores.iter().enumerate() {
            best.push(s, i);
        }
        let got: Vec<f64> = best.into_sorted().into_iter().map(|(s, _)| s).collect();
        let mut want = scores.clone();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(m);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g, w);
        }
    }

    #[test]
    fn bottom_m_agrees_with_sort(values in proptest::collection::vec(-1e3f64..1e3, 0..60), m in 0usize..10) {
        let idx = bottom_m(&values, m);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (j, &i) in idx.iter().enumerate() {
            prop_assert_eq!(values[i], sorted[j]);
        }
    }

    #[test]
    fn accumulator_matches_two_pass(values in proptest::collection::vec(-1e4f64..1e4, 2..200)) {
        let acc = Accumulator::from_iter(values.iter().copied());
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((acc.mean().unwrap() - mean).abs() < 1e-7 * mean.abs().max(1.0));
        prop_assert!((acc.variance().unwrap() - var).abs() < 1e-6 * var.max(1.0));
    }

    #[test]
    fn quantile_within_range(values in proptest::collection::vec(-1e3f64..1e3, 1..100), p in 0.0f64..=1.0) {
        let q = quantile(&values, p).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12);
    }

    #[test]
    fn quantile_monotone_in_p(values in proptest::collection::vec(-1e3f64..1e3, 1..60), p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&values, lo).unwrap() <= quantile(&values, hi).unwrap() + 1e-12);
    }
}
