#![warn(missing_docs)]

//! Data substrate for the Aggarwal–Yu subspace outlier detector.
//!
//! Provides everything between raw records and the grid cells the detector
//! searches over:
//!
//! - [`dataset`]: the in-memory [`Dataset`] type — row-major `f64` values
//!   with NaN-encoded missing entries, column names and optional class
//!   labels. The paper stresses (§1.2) that projections can be mined from
//!   records with missing attributes; missingness is first-class here.
//! - [`csv`]: a dependency-free CSV reader/writer with missing-value markers
//!   and label-column extraction, mirroring the paper's "cleaned UCI data"
//!   pipeline (§3).
//! - [`clean`]: categorical encoding, constant-column dropping and
//!   standardization.
//! - [`discretize`]: the φ-range grid of §1.3 — equi-depth by default
//!   (each range holds a fraction `f = 1/φ` of the records), equi-width kept
//!   for the ablation that shows why the paper chose equi-depth.
//! - [`grid_spec`]: fitted grid boundaries detached from their data, for
//!   assigning cells to *new* records (the train/apply split).
//! - [`split`]: seeded shuffling, train/test and k-fold splitting.
//! - [`generators`]: seeded synthetic workloads, including the UCI-shaped
//!   simulacra used by the reproduction (see DESIGN.md §4 for the
//!   substitution rationale) and planted-subspace-outlier benchmarks with
//!   ground truth.

pub mod clean;
pub mod csv;
pub mod dataset;
pub mod discretize;
pub mod generators;
pub mod grid_spec;
pub mod split;

pub use dataset::{DataError, Dataset, DatasetBuilder};
pub use discretize::{DiscretizeStrategy, Discretized, GridRange};
pub use grid_spec::GridSpec;
