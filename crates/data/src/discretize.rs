//! Grid discretization (paper §1.3).
//!
//! Each attribute is divided into `φ` ranges. The paper uses **equi-depth**
//! ranges — each holds a fraction `f = 1/φ` of the records — "because
//! different localities of the data have different densities". Equi-width is
//! provided as well, solely so the ablation benches can demonstrate the
//! degradation the paper's choice avoids.
//!
//! Missing values never land in a range: a record covers a k-dimensional
//! cube only if all k attributes are present and inside the cube's ranges
//! (this is what lets the method mine datasets with missing attributes,
//! §1.2).

use crate::dataset::{DataError, Dataset};

/// Sentinel cell for a missing attribute value.
pub const MISSING_CELL: u16 = u16::MAX;

/// How attribute values are mapped to the φ grid ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscretizeStrategy {
    /// Rank-based equi-depth: the `n` present values of a dimension are
    /// sorted and split into φ consecutive runs of (near-)equal length, so
    /// every range holds as close to `n/φ` records as integer arithmetic
    /// allows — even in the presence of massive ties. This matches the
    /// `N·f^k` expectation in Eq. 1 as exactly as possible and is the
    /// library default.
    ///
    /// Ties that straddle a boundary are split deterministically by row
    /// order (stable sort), trading a little interpretability for exact
    /// depth balance.
    EquiDepth,
    /// Equi-width: the observed `[min, max]` of each dimension is split into
    /// φ equal-length intervals. Kept for the ablation; ranges in dense
    /// localities hold far more than `n/φ` records, which corrupts the
    /// sparsity coefficient's baseline.
    EquiWidth,
}

/// The value interval a grid range occupies, for interpretable reports
/// ("crime rate in [1.2, 8.9]" rather than "range 4").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridRange {
    /// Smallest attribute value assigned to this range (`-inf` if empty).
    pub lo: f64,
    /// Largest attribute value assigned to this range (`+inf` if empty).
    pub hi: f64,
    /// Number of records assigned to this range.
    pub count: usize,
}

/// A discretized dataset: one grid cell per `(row, dim)` plus the metadata
/// to interpret cells back as value intervals.
#[derive(Debug, Clone)]
pub struct Discretized {
    cells: Vec<u16>,
    n_rows: usize,
    n_dims: usize,
    phi: u32,
    strategy: DiscretizeStrategy,
    /// `ranges[dim][range]` — value interval + occupancy of each range.
    ranges: Vec<Vec<GridRange>>,
    names: Vec<String>,
}

impl Discretized {
    /// Discretizes a dataset into `phi` ranges per dimension.
    ///
    /// Errors on an empty dataset, `phi` of 0, or `phi > u16::MAX - 1`
    /// (cell ids must fit `u16` with one sentinel reserved).
    pub fn new(
        dataset: &Dataset,
        phi: u32,
        strategy: DiscretizeStrategy,
    ) -> Result<Self, DataError> {
        if dataset.n_rows() == 0 || dataset.n_dims() == 0 {
            return Err(DataError::Empty);
        }
        if phi == 0 || phi >= u16::MAX as u32 {
            return Err(DataError::Parse(format!(
                "phi must be in 1..{}, got {phi}",
                u16::MAX
            )));
        }
        let n_rows = dataset.n_rows();
        let n_dims = dataset.n_dims();
        let mut cells = vec![MISSING_CELL; n_rows * n_dims];
        let mut ranges = Vec::with_capacity(n_dims);
        for dim in 0..n_dims {
            let column = dataset.column(dim);
            let assignment = match strategy {
                DiscretizeStrategy::EquiDepth => equi_depth_assign(&column, phi),
                DiscretizeStrategy::EquiWidth => equi_width_assign(&column, phi),
            };
            let mut dim_ranges = vec![
                GridRange {
                    lo: f64::INFINITY,
                    hi: f64::NEG_INFINITY,
                    count: 0,
                };
                phi as usize
            ];
            for (row, cell) in assignment.into_iter().enumerate() {
                cells[row * n_dims + dim] = cell;
                if cell != MISSING_CELL {
                    let r = &mut dim_ranges[cell as usize];
                    let v = column[row];
                    r.lo = r.lo.min(v);
                    r.hi = r.hi.max(v);
                    r.count += 1;
                }
            }
            ranges.push(dim_ranges);
        }
        Ok(Self {
            cells,
            n_rows,
            n_dims,
            phi,
            strategy,
            ranges,
            names: dataset.names().to_vec(),
        })
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Ranges per dimension (`φ`).
    pub fn phi(&self) -> u32 {
        self.phi
    }

    /// The strategy used to build the grid.
    pub fn strategy(&self) -> DiscretizeStrategy {
        self.strategy
    }

    /// The grid cell of `(row, dim)`: `0..phi`, or [`MISSING_CELL`].
    #[inline]
    pub fn cell(&self, row: usize, dim: usize) -> u16 {
        debug_assert!(row < self.n_rows && dim < self.n_dims);
        self.cells[row * self.n_dims + dim]
    }

    /// Whether `(row, dim)` was missing in the source data.
    #[inline]
    pub fn is_missing(&self, row: usize, dim: usize) -> bool {
        self.cell(row, dim) == MISSING_CELL
    }

    /// The cells of one record.
    pub fn row(&self, row: usize) -> &[u16] {
        &self.cells[row * self.n_dims..(row + 1) * self.n_dims]
    }

    /// Value interval and occupancy of `range` on `dim`.
    pub fn grid_range(&self, dim: usize, range: u16) -> &GridRange {
        &self.ranges[dim][range as usize]
    }

    /// Column names carried over from the source dataset.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Name of dimension `dim`.
    pub fn name(&self, dim: usize) -> &str {
        &self.names[dim]
    }

    /// Count of present (non-missing) values on `dim`.
    pub fn present_count(&self, dim: usize) -> usize {
        self.ranges[dim].iter().map(|r| r.count).sum()
    }
}

/// Rank-based equi-depth assignment of one column. NaNs get [`MISSING_CELL`].
fn equi_depth_assign(column: &[f64], phi: u32) -> Vec<u16> {
    let n = column.len();
    let mut present: Vec<usize> = (0..n).filter(|&i| !column[i].is_nan()).collect();
    // Stable sort by value; ties keep row order, making the split
    // deterministic.
    present.sort_by(|&a, &b| column[a].partial_cmp(&column[b]).expect("NaNs filtered"));
    let m = present.len();
    let mut cells = vec![MISSING_CELL; n];
    for (rank, &row) in present.iter().enumerate() {
        // Range of rank r in a φ-way split of m items: floor(r·φ/m),
        // clamped for safety at the top.
        let cell = ((rank as u64 * phi as u64) / m.max(1) as u64).min(phi as u64 - 1);
        cells[row] = cell as u16;
    }
    cells
}

/// Equal-width assignment over the observed min..max. NaNs get
/// [`MISSING_CELL`]; a constant column puts everything in range 0.
fn equi_width_assign(column: &[f64], phi: u32) -> Vec<u16> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in column {
        if !v.is_nan() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let width = (hi - lo) / phi as f64;
    column
        .iter()
        .map(|&v| {
            if v.is_nan() {
                MISSING_CELL
            } else if width <= 0.0 || !width.is_finite() {
                0
            } else {
                (((v - lo) / width) as u64).min(phi as u64 - 1) as u16
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_dataset(n: usize, d: usize) -> Dataset {
        // Deterministic pseudo-uniform data without an RNG dependency.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| (((i * 2654435761 + j * 40503) % 10007) as f64) / 10007.0)
                    .collect()
            })
            .collect();
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn equi_depth_ranges_are_balanced() {
        let ds = uniform_dataset(1000, 3);
        let disc = Discretized::new(&ds, 10, DiscretizeStrategy::EquiDepth).unwrap();
        for dim in 0..3 {
            for r in 0..10u16 {
                let c = disc.grid_range(dim, r).count;
                assert_eq!(c, 100, "dim {dim} range {r} has {c}");
            }
        }
    }

    #[test]
    fn equi_depth_balanced_even_with_heavy_ties() {
        // 90 % of the column is the same value; equi-depth must still split
        // 10-ways with equal counts.
        let mut rows: Vec<Vec<f64>> = (0..900).map(|_| vec![5.0]).collect();
        rows.extend((0..100).map(|i| vec![i as f64 / 100.0]));
        let ds = Dataset::from_rows(rows).unwrap();
        let disc = Discretized::new(&ds, 10, DiscretizeStrategy::EquiDepth).unwrap();
        for r in 0..10u16 {
            assert_eq!(disc.grid_range(0, r).count, 100);
        }
    }

    #[test]
    fn equi_depth_non_divisible_counts_differ_by_at_most_one() {
        let ds = uniform_dataset(103, 1);
        let disc = Discretized::new(&ds, 10, DiscretizeStrategy::EquiDepth).unwrap();
        let counts: Vec<usize> = (0..10u16).map(|r| disc.grid_range(0, r).count).collect();
        assert_eq!(counts.iter().sum::<usize>(), 103);
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn equi_depth_is_order_preserving() {
        let ds = uniform_dataset(500, 1);
        let disc = Discretized::new(&ds, 7, DiscretizeStrategy::EquiDepth).unwrap();
        // If value(a) < value(b) then cell(a) <= cell(b).
        for a in 0..500 {
            for b in 0..500 {
                if ds.value(a, 0) < ds.value(b, 0) {
                    assert!(disc.cell(a, 0) <= disc.cell(b, 0));
                }
            }
        }
    }

    #[test]
    fn equi_width_splits_range_evenly_by_value() {
        let rows: Vec<Vec<f64>> = (0..=100).map(|i| vec![i as f64]).collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiWidth).unwrap();
        assert_eq!(disc.cell(0, 0), 0);
        assert_eq!(disc.cell(24, 0), 0);
        assert_eq!(disc.cell(25, 0), 1);
        assert_eq!(disc.cell(100, 0), 3); // max value clamps into last range
    }

    #[test]
    fn equi_width_is_unbalanced_on_skewed_data() {
        // The motivating failure: skewed data piles into few ranges.
        let mut rows: Vec<Vec<f64>> = (0..990).map(|i| vec![i as f64 / 1000.0]).collect();
        rows.push(vec![1000.0]); // one far-out point stretches the width
        let ds = Dataset::from_rows(rows).unwrap();
        let disc = Discretized::new(&ds, 10, DiscretizeStrategy::EquiWidth).unwrap();
        assert_eq!(disc.grid_range(0, 0).count, 990);
        let depth = Discretized::new(&ds, 10, DiscretizeStrategy::EquiDepth).unwrap();
        assert!(depth.grid_range(0, 0).count <= 100);
    }

    #[test]
    fn missing_values_get_sentinel_and_do_not_skew_ranges() {
        let ds = Dataset::from_rows(vec![
            vec![1.0],
            vec![f64::NAN],
            vec![2.0],
            vec![3.0],
            vec![4.0],
        ])
        .unwrap();
        let disc = Discretized::new(&ds, 2, DiscretizeStrategy::EquiDepth).unwrap();
        assert!(disc.is_missing(1, 0));
        assert_eq!(disc.cell(1, 0), MISSING_CELL);
        assert_eq!(disc.present_count(0), 4);
        assert_eq!(disc.grid_range(0, 0).count, 2);
        assert_eq!(disc.grid_range(0, 1).count, 2);
    }

    #[test]
    fn all_missing_column_is_tolerated() {
        let ds = Dataset::from_rows(vec![vec![f64::NAN, 1.0], vec![f64::NAN, 2.0]]).unwrap();
        let disc = Discretized::new(&ds, 2, DiscretizeStrategy::EquiDepth).unwrap();
        assert_eq!(disc.present_count(0), 0);
        assert_eq!(disc.present_count(1), 2);
    }

    #[test]
    fn constant_column_equi_width() {
        let ds = Dataset::from_rows(vec![vec![7.0], vec![7.0], vec![7.0]]).unwrap();
        let disc = Discretized::new(&ds, 5, DiscretizeStrategy::EquiWidth).unwrap();
        for i in 0..3 {
            assert_eq!(disc.cell(i, 0), 0);
        }
    }

    #[test]
    fn grid_range_intervals_are_consistent() {
        let ds = uniform_dataset(300, 2);
        let disc = Discretized::new(&ds, 5, DiscretizeStrategy::EquiDepth).unwrap();
        for dim in 0..2 {
            for r in 0..5u16 {
                let g = disc.grid_range(dim, r);
                assert!(g.lo <= g.hi);
                if r > 0 {
                    // Ranges are ordered by value.
                    assert!(disc.grid_range(dim, r - 1).hi <= g.lo + 1e-12);
                }
            }
        }
    }

    #[test]
    fn parameter_validation() {
        let ds = uniform_dataset(10, 2);
        assert!(Discretized::new(&ds, 0, DiscretizeStrategy::EquiDepth).is_err());
        assert!(Discretized::new(&ds, u16::MAX as u32, DiscretizeStrategy::EquiDepth).is_err());
        assert!(Discretized::new(&ds, 65534, DiscretizeStrategy::EquiDepth).is_ok());
    }

    #[test]
    fn phi_larger_than_n() {
        // More ranges than records: some ranges stay empty, none crash.
        let ds = uniform_dataset(3, 1);
        let disc = Discretized::new(&ds, 10, DiscretizeStrategy::EquiDepth).unwrap();
        let total: usize = (0..10u16).map(|r| disc.grid_range(0, r).count).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn names_carry_over() {
        let mut ds = uniform_dataset(10, 2);
        ds.set_names(vec!["alpha", "beta"]).unwrap();
        let disc = Discretized::new(&ds, 2, DiscretizeStrategy::EquiDepth).unwrap();
        assert_eq!(disc.name(0), "alpha");
        assert_eq!(disc.names()[1], "beta");
    }

    #[test]
    fn row_accessor_matches_cells() {
        let ds = uniform_dataset(20, 4);
        let disc = Discretized::new(&ds, 4, DiscretizeStrategy::EquiDepth).unwrap();
        for i in 0..20 {
            let row = disc.row(i);
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, disc.cell(i, j));
            }
        }
    }
}
