//! Data cleaning: categorical encoding, constant-column removal,
//! standardization and missing-value imputation.
//!
//! The paper's §3 notes the UCI datasets "were cleaned in order to take care
//! of categorical and missing attributes"; this module is that step.

use crate::dataset::{DataError, Dataset};
use std::collections::HashMap;

/// Dense-encodes non-numeric fields of raw string records as categorical
/// codes (0, 1, 2, … in order of first appearance per column), leaving
/// numeric fields as-is and missing markers as NaN.
///
/// Input is the record matrix from [`crate::csv::parse_records`] *without*
/// the header row.
pub fn encode_categoricals(
    records: &[Vec<String>],
    missing_markers: &[&str],
) -> Result<(Dataset, Vec<Vec<String>>), DataError> {
    if records.is_empty() || records[0].is_empty() {
        return Err(DataError::Empty);
    }
    let width = records[0].len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(DataError::Parse(format!(
                "record {i} has {} fields, expected {width}",
                r.len()
            )));
        }
    }
    // Decide per column whether it is numeric: every non-missing field parses.
    let mut numeric = vec![true; width];
    for r in records {
        for (j, f) in r.iter().enumerate() {
            let t = f.trim();
            if missing_markers.contains(&t) {
                continue;
            }
            if t.parse::<f64>().is_err() {
                numeric[j] = false;
            }
        }
    }
    let mut code_books: Vec<HashMap<String, u32>> = vec![HashMap::new(); width];
    let mut code_names: Vec<Vec<String>> = vec![Vec::new(); width];
    let mut rows = Vec::with_capacity(records.len());
    for r in records {
        let mut row = Vec::with_capacity(width);
        for (j, f) in r.iter().enumerate() {
            let t = f.trim();
            if missing_markers.contains(&t) {
                row.push(f64::NAN);
            } else if numeric[j] {
                row.push(t.parse::<f64>().expect("checked numeric"));
            } else {
                let next = code_books[j].len() as u32;
                let code = *code_books[j].entry(t.to_string()).or_insert_with(|| {
                    code_names[j].push(t.to_string());
                    next
                });
                row.push(code as f64);
            }
        }
        rows.push(row);
    }
    Ok((Dataset::from_rows(rows)?, code_names))
}

/// Indices of columns whose non-missing values are all identical (or all
/// missing) — useless for outlier detection and dropped by [`drop_constant_columns`].
pub fn constant_columns(dataset: &Dataset) -> Vec<usize> {
    (0..dataset.n_dims())
        .filter(|&j| {
            let mut first: Option<f64> = None;
            for i in 0..dataset.n_rows() {
                let v = dataset.value(i, j);
                if v.is_nan() {
                    continue;
                }
                match first {
                    None => first = Some(v),
                    Some(f) if f != v => return false,
                    Some(_) => {}
                }
            }
            true
        })
        .collect()
}

/// Returns a dataset without its constant columns. If every column is
/// constant the original is returned unchanged (dropping all would be
/// worse than useless).
pub fn drop_constant_columns(dataset: &Dataset) -> Dataset {
    let constant = constant_columns(dataset);
    if constant.is_empty() || constant.len() == dataset.n_dims() {
        return dataset.clone();
    }
    let keep: Vec<usize> = (0..dataset.n_dims())
        .filter(|j| !constant.contains(j))
        .collect();
    dataset
        .select_columns(&keep)
        .expect("keep is non-empty and in bounds")
}

/// Z-standardizes every column in place (missing entries stay missing).
/// Columns with zero variance are left untouched.
pub fn standardize(dataset: &Dataset) -> Dataset {
    let mut rows: Vec<Vec<f64>> = dataset.rows().map(<[f64]>::to_vec).collect();
    for j in 0..dataset.n_dims() {
        let col = dataset.column(j);
        let acc = hdoutlier_stats::summary::Accumulator::from_iter(col.iter().copied());
        let (Some(mean), Some(sd)) = (acc.mean(), acc.sd()) else {
            continue;
        };
        if sd == 0.0 {
            continue;
        }
        for row in rows.iter_mut() {
            if !row[j].is_nan() {
                row[j] = (row[j] - mean) / sd;
            }
        }
    }
    let mut out = Dataset::from_rows(rows).expect("same shape as input");
    out.set_names(dataset.names().to_vec()).expect("same dims");
    if let Some(labels) = dataset.labels() {
        out.set_labels(labels.to_vec()).expect("same rows");
    }
    out
}

/// Replaces missing entries of each column with that column's mean.
///
/// The detector itself does **not** need this — missing entries simply never
/// cover any cube — but the distance-based baselines (Knorr–Ng, kNN, LOF)
/// require complete vectors, so their evaluation path imputes first.
pub fn impute_mean(dataset: &Dataset) -> Dataset {
    let mut rows: Vec<Vec<f64>> = dataset.rows().map(<[f64]>::to_vec).collect();
    for j in 0..dataset.n_dims() {
        let col = dataset.column(j);
        let acc = hdoutlier_stats::summary::Accumulator::from_iter(col.iter().copied());
        let fill = acc.mean().unwrap_or(0.0);
        for row in rows.iter_mut() {
            if row[j].is_nan() {
                row[j] = fill;
            }
        }
    }
    let mut out = Dataset::from_rows(rows).expect("same shape as input");
    out.set_names(dataset.names().to_vec()).expect("same dims");
    if let Some(labels) = dataset.labels() {
        out.set_labels(labels.to_vec()).expect("same rows");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(rows: &[&[&str]]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn encode_mixed_columns() {
        let records = recs(&[
            &["1.5", "red", "10"],
            &["2.5", "blue", "?"],
            &["3.5", "red", "30"],
        ]);
        let (ds, codes) = encode_categoricals(&records, &["?"]).unwrap();
        assert_eq!(ds.value(0, 0), 1.5);
        assert_eq!(ds.value(0, 1), 0.0); // red
        assert_eq!(ds.value(1, 1), 1.0); // blue
        assert_eq!(ds.value(2, 1), 0.0); // red again
        assert!(ds.is_missing(1, 2));
        assert_eq!(codes[1], vec!["red".to_string(), "blue".to_string()]);
        assert!(codes[0].is_empty()); // numeric column has no code book
    }

    #[test]
    fn numeric_column_with_missing_stays_numeric() {
        let records = recs(&[&["1"], &["?"], &["3"]]);
        let (ds, codes) = encode_categoricals(&records, &["?"]).unwrap();
        assert_eq!(ds.value(0, 0), 1.0);
        assert!(ds.is_missing(1, 0));
        assert!(codes[0].is_empty());
    }

    #[test]
    fn one_bad_field_makes_column_categorical() {
        let records = recs(&[&["1"], &["oops"], &["3"]]);
        let (ds, codes) = encode_categoricals(&records, &[]).unwrap();
        // Column is categorical: codes by first appearance.
        assert_eq!(ds.value(0, 0), 0.0);
        assert_eq!(ds.value(1, 0), 1.0);
        assert_eq!(ds.value(2, 0), 2.0);
        assert_eq!(codes[0].len(), 3);
    }

    #[test]
    fn encode_rejects_bad_shapes() {
        assert!(encode_categoricals(&[], &[]).is_err());
        let ragged = recs(&[&["1", "2"], &["3"]]);
        assert!(encode_categoricals(&ragged, &[]).is_err());
    }

    #[test]
    fn constant_column_detection() {
        let ds = Dataset::from_rows(vec![
            vec![1.0, 5.0, f64::NAN, 2.0],
            vec![1.0, 5.0, f64::NAN, 3.0],
            vec![1.0, f64::NAN, f64::NAN, 4.0],
        ])
        .unwrap();
        // col0 constant, col1 constant-with-missing, col2 all-missing, col3 varies.
        assert_eq!(constant_columns(&ds), vec![0, 1, 2]);
        let cleaned = drop_constant_columns(&ds);
        assert_eq!(cleaned.n_dims(), 1);
        assert_eq!(cleaned.value(2, 0), 4.0);
    }

    #[test]
    fn drop_all_constant_keeps_original() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![1.0]]).unwrap();
        let cleaned = drop_constant_columns(&ds);
        assert_eq!(cleaned.n_dims(), 1);
    }

    #[test]
    fn standardize_moments() {
        let mut ds = Dataset::from_rows(vec![
            vec![1.0, 100.0],
            vec![2.0, 100.0],
            vec![3.0, 100.0],
            vec![4.0, 100.0],
        ])
        .unwrap();
        ds.set_labels(vec![0, 0, 1, 1]).unwrap();
        let z = standardize(&ds);
        let col = z.column(0);
        let acc = hdoutlier_stats::summary::Accumulator::from_iter(col.iter().copied());
        assert!(acc.mean().unwrap().abs() < 1e-12);
        assert!((acc.sd().unwrap() - 1.0).abs() < 1e-12);
        // Zero-variance column untouched.
        assert_eq!(z.value(0, 1), 100.0);
        // Labels preserved.
        assert_eq!(z.labels(), Some(&[0, 0, 1, 1][..]));
    }

    #[test]
    fn standardize_preserves_missing() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![f64::NAN], vec![3.0]]).unwrap();
        let z = standardize(&ds);
        assert!(z.is_missing(1, 0));
    }

    #[test]
    fn impute_mean_fills_missing() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![f64::NAN], vec![3.0]]).unwrap();
        let filled = impute_mean(&ds);
        assert_eq!(filled.value(1, 0), 2.0);
        assert_eq!(filled.missing_count(), 0);
        // All-missing column imputes to 0.
        let ds = Dataset::from_rows(vec![vec![f64::NAN], vec![f64::NAN]]).unwrap();
        let filled = impute_mean(&ds);
        assert_eq!(filled.value(0, 0), 0.0);
    }
}
